"""The Figure 3 experiment: data flow analysis vs secure typing.

The paper's central motivation: a sequential, flow-sensitive data-flow
tool concludes the sensitive value can only reach ``a``, protects
``a``, and is then defeated by a pointer mutation performed in
parallel by another thread.  Privagic's type system rejects the same
program at compile time.
"""

import pytest

from repro.baselines import (
    AbstractInterpTaint,
    AndersenTaint,
    UseDefTaint,
    apply_dataflow_placement,
)
from repro.core import analyze_module
from repro.core.colors import HARDENED
from repro.errors import SecureTypeError
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.sgx import Attacker

SECRET = 424243

#: Figure 3a — no Privagic colors; the data-flow tool is told that
#: f's parameter s is sensitive (Glamdring-style annotation).
FIG3A_SOURCE = """
    long a;
    long b;
    long* x;

    void f(long s) {
        x = &a;
        *x = s;
    }

    void g(long unused) {
        x = &b;
    }
"""


def fresh_module():
    return compile_source(FIG3A_SOURCE)


def analysis_roots():
    return {"sensitive_params": [("f", "s")]}


# -- what each analysis concludes -------------------------------------------------


def test_abstract_interpretation_protects_only_a():
    """Flow-sensitive strong updates: at `*x = s`, x points exactly to
    {a}; the tool protects a and leaves b unprotected."""
    module = fresh_module()
    analysis = AbstractInterpTaint(module, **analysis_roots())
    assert analysis.partition.protected_globals == {"a"}


def test_usedef_chains_protect_nothing():
    """Privtrans-style use-def chains do not model pointers at all
    (Table 1: 'does not support pointers'): the store through x is
    invisible."""
    module = fresh_module()
    analysis = UseDefTaint(module, **analysis_roots())
    assert analysis.partition.protected_globals == set()


def test_andersen_protects_both():
    """Flow-insensitive points-to is sound here but coarse: x may
    point to {a, b}, so both get protected."""
    module = fresh_module()
    analysis = AndersenTaint(module, **analysis_roots())
    assert analysis.partition.protected_globals == {"a", "b"}


# -- the runtime attack ------------------------------------------------------------


def leak_under_interleaving(protected_globals) -> bool:
    """Search thread interleavings of f and g for one that lands the
    secret in unsafe memory.  Returns True if some interleaving leaks.
    """
    for prefix in range(1, 40):
        module = fresh_module()
        for name in protected_globals:
            gv = module.get_global(name)
            gv.value_type = gv.value_type.with_color("dfenclave")
        machine = Machine(module)
        ctx_f = machine.spawn("f", [SECRET], mode="dfenclave",
                              name="thread-f")
        ctx_g = machine.spawn("g", [0], mode=None, name="thread-g")
        # Run f for `prefix` steps, then let g run to completion, then
        # finish f — the hidden pointer modification of Figure 3.
        for _ in range(prefix):
            if ctx_f.finished:
                break
            ctx_f.step()
        while not ctx_g.finished:
            ctx_g.step()
        while not ctx_f.finished:
            ctx_f.step()
        if Attacker(machine).scan_for(SECRET):
            return True
    return False


def test_dataflow_partitioning_leaks_under_concurrency():
    """The complete Figure 3 story: the Glamdring-style partition
    (protect a only) leaks the secret under a specific interleaving."""
    module = fresh_module()
    analysis = AbstractInterpTaint(module, **analysis_roots())
    assert leak_under_interleaving(analysis.partition.protected_globals)


def test_andersen_partitioning_survives_concurrency():
    module = fresh_module()
    analysis = AndersenTaint(module, **analysis_roots())
    assert not leak_under_interleaving(
        analysis.partition.protected_globals)


def test_sequential_execution_does_not_leak():
    """Without the interleaving, the data-flow partition is fine —
    that is exactly why sequential analysis believes it is correct."""
    module = fresh_module()
    analysis = AbstractInterpTaint(module, **analysis_roots())
    for name in analysis.partition.protected_globals:
        gv = module.get_global(name)
        gv.value_type = gv.value_type.with_color("dfenclave")
    machine = Machine(module)
    ctx_f = machine.spawn("f", [SECRET], mode="dfenclave")
    while not ctx_f.finished:
        ctx_f.step()
    ctx_g = machine.spawn("g", [0], mode=None)
    while not ctx_g.finished:
        ctx_g.step()
    assert Attacker(machine).scan_for(SECRET) == []


# -- Privagic on the same program -----------------------------------------------------


FIG3B_SOURCE = """
    long color(blue) a;
    long b;
    long color(blue)* x;

    void f(long color(blue) s) {
        x = &a;
        *x = s;
    }

    void g(long unused) {
        x = &b;   /* FAIL */
    }

    entry void run(long s) { f(s); g(0); }
"""


def test_privagic_rejects_the_same_program():
    module = compile_source(FIG3B_SOURCE)
    with pytest.raises(SecureTypeError) as excinfo:
        analyze_module(module, HARDENED)
    assert excinfo.value.rule in ("store", "cast")


def test_apply_dataflow_placement_helper():
    module = fresh_module()
    analysis = AbstractInterpTaint(module, **analysis_roots())
    names = apply_dataflow_placement(module, analysis.partition)
    assert names == ["a"]
    assert module.get_global("a").color == "dfenclave"
