"""Tests for the Glamdring-style end-to-end partitioner."""

from repro.baselines.dataflow.glamdring import glamdring_partition
from repro.frontend import compile_source

SOURCE = """
    long secret_store = 0;
    long audit = 0;

    long obfuscate(long v) { return v * 31 + 7; }

    void protect(long s) {
        secret_store = obfuscate(s);
    }

    void log_request() {
        audit = audit + 1;
    }

    entry void handle(long s) {
        protect(s);
        log_request();
    }
"""


def test_function_granularity_split():
    module = compile_source(SOURCE)
    partition = glamdring_partition(
        module, sensitive_params=[("protect", "s")])
    # Functions touching sensitive data (and their callees) go in.
    assert "protect" in partition.enclave_functions
    assert "obfuscate" in partition.enclave_functions
    # Pure bookkeeping stays out.
    assert "log_request" not in partition.enclave_functions
    assert partition.enclave_globals == {"secret_store"}


def test_tcb_is_a_fraction():
    module = compile_source(SOURCE)
    partition = glamdring_partition(
        module, sensitive_params=[("protect", "s")])
    whole = module.instruction_count()
    assert 0 < partition.tcb_instructions() < whole


def test_boundary_ecalls_identified():
    module = compile_source(SOURCE)
    partition = glamdring_partition(
        module, sensitive_params=[("protect", "s")])
    # handle (untrusted) calls protect (enclave): an ecall boundary.
    assert "protect" in partition.ecall_targets or \
        "handle" in partition.ecall_targets


def test_apply_placement_colors_globals():
    module = compile_source(SOURCE)
    partition = glamdring_partition(
        module, sensitive_params=[("protect", "s")])
    placed = partition.apply_placement()
    assert placed == ["secret_store"]
    assert module.get_global("secret_store").color == "dfenclave"
