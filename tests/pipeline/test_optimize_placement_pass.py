"""The optimize-placement pass: scheduling, context wiring, stats."""

import pytest

from repro.errors import PlacementError
from repro.frontend import compile_source
from repro.pipeline import ANALYZE_PIPELINE, DEFAULT_PIPELINE, PassManager

FIG6 = """
    int unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        blue_g = n;
        red_g = n;
        printf("Hello\\n");
    }

    int f(int y) { g(21); return 42; }

    entry int main() {
        unsafe_g = 1;
        int x = f(blue_g);
        return x;
    }
"""


def _module():
    return compile_source(FIG6, "fig6")


def test_pass_is_scheduled_before_partition():
    assert "optimize-placement" in DEFAULT_PIPELINE
    assert DEFAULT_PIPELINE.index("optimize-placement") < \
        DEFAULT_PIPELINE.index("partition")
    assert "optimize-placement" in ANALYZE_PIPELINE


def _pass_stats(ctx, name):
    for timing in ctx.timings:
        if timing.name == name:
            return timing.stats
    raise AssertionError(f"pass {name} never ran")


def test_default_run_leaves_placement_untouched():
    ctx = PassManager().run(_module(), mode="relaxed")
    assert ctx.program is not None
    assert ctx.placement is None
    assert ctx.placement_graph is None
    assert _pass_stats(ctx, "optimize-placement")["placement_moves"] == 0


def test_kl_run_populates_the_placement_context():
    ctx = PassManager().run(_module(), mode="relaxed", optimize="kl")
    assert ctx.program is not None
    assert ctx.placement is not None and ctx.placement.moves > 0
    assert ctx.placement_graph is not None
    assert ctx.placement_report["policy"] == "kl"
    stats = _pass_stats(ctx, "optimize-placement")
    assert stats["placement_moves"] == ctx.placement.moves
    assert stats["placement_gain_cycles"] > 0
    # The shared planner: partition must reuse the planned protocol
    # the graph was built from.
    assert ctx.planner is not None


def test_unknown_policy_raises_through_the_pipeline():
    with pytest.raises(PlacementError, match="did you mean"):
        PassManager().run(_module(), mode="relaxed", optimize="kq")
