"""Differential tests: the optimization trio must change performance,
never behavior.

The baseline pipeline is the bare Figure-5 sequence with no
optimization passes; the optimized pipeline is the default one
(constfold + simplify-cfg + dce between mem2reg and the struct
rewriting).  Both are run to completion on both interpreter engines
and must agree on results, output, and message traffic — while the
optimized build of ``examples/fig7.c`` must execute strictly fewer
interpreter steps.
"""

import os

import pytest

from repro.core.compiler import compile_and_partition
from repro.runtime import PrivagicRuntime
from repro.sgx import SGXAccessPolicy

BASELINE = "mem2reg,struct-rewrite,secure-types,partition"

FIG7_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "fig7.c")


def run_fig7(passes, engine):
    with open(FIG7_PATH) as handle:
        source = handle.read()
    program = compile_and_partition(source, mode="relaxed",
                                    passes=passes)
    runtime = PrivagicRuntime(program, engine=engine)
    SGXAccessPolicy().attach(runtime.machine)
    result = runtime.run("main", [])
    return {
        "result": result,
        "steps": runtime.machine.total_steps,
        "messages": runtime.stats.as_dict(),
        "stdout": runtime.machine.stdout,
    }


@pytest.mark.parametrize("engine", ["decoded", "legacy"])
def test_fig7_optimized_is_equivalent_but_strictly_faster(engine):
    baseline = run_fig7(BASELINE, engine)
    optimized = run_fig7(None, engine)
    # Identical observable behavior ...
    assert optimized["result"] == baseline["result"] == 42
    assert optimized["stdout"] == baseline["stdout"] == "Hello\n"
    assert optimized["messages"] == baseline["messages"]
    # ... at a strictly lower dynamic cost: the constant budget
    # computation and the always-taken guard in `f` fold away.
    assert optimized["steps"] < baseline["steps"]


def test_fig7_engines_agree_per_pipeline():
    for passes in (BASELINE, None):
        decoded = run_fig7(passes, "decoded")
        legacy = run_fig7(passes, "legacy")
        assert decoded == legacy


def test_minicache_optimized_matches_unoptimized():
    """The paper's §9.2 application, compiled with and without the
    optimization trio, must produce identical results and message
    counts."""
    from repro.apps.minicache.minic_source import (
        ANNOTATED_SOURCE, DECLASSIFY_EXTERNALS)

    def run(passes):
        program = compile_and_partition(ANNOTATED_SOURCE,
                                        mode="hardened", passes=passes)
        runtime = PrivagicRuntime(program, DECLASSIFY_EXTERNALS,
                                  max_steps=30_000_000)
        SGXAccessPolicy().attach(runtime.machine)
        result = runtime.run("run_cache", [40])
        return result, runtime.stats.as_dict()

    base_result, base_stats = run(BASELINE)
    opt_result, opt_stats = run(None)
    assert opt_result == base_result
    assert opt_stats == base_stats
