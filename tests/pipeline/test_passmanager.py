"""Unit tests for the pass manager: pipeline parsing, context
threading, per-pass metrics/tracing, and the verify-each safety net."""

import io

import pytest

from repro.errors import IRError, SecureTypeError
from repro.frontend import compile_source
from repro.obs import MetricsRegistry, Tracer
from repro.obs.tracer import CAT_PIPELINE
from repro.pipeline import (
    ANALYZE_PIPELINE,
    DEFAULT_PIPELINE,
    CompilationContext,
    Pass,
    PassManager,
    parse_pipeline,
)

FIG7 = """
    int unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;
    void g(int n) { blue_g = n; red_g = n; }
    int f(int y) { g(21); return 42; }
    entry int main() { unsafe_g = 1; int x = f(blue_g); return x; }
"""


def fig7_module():
    return compile_source(FIG7, "fig7")


# -- pipeline parsing ---------------------------------------------------------


def test_parse_pipeline_accepts_comma_string():
    names = [p.name for p in parse_pipeline("mem2reg, dce")]
    assert names == ["mem2reg", "dce"]


def test_parse_pipeline_none_is_the_default_pipeline():
    names = [p.name for p in parse_pipeline(None)]
    assert names == list(DEFAULT_PIPELINE)
    assert names[-2:] == ["partition", "trace-compile"]


def test_parse_pipeline_accepts_pass_instances():
    class Custom(Pass):
        name = "custom"

        def run(self, ctx):
            return {}

    passes = parse_pipeline(["mem2reg", Custom()])
    assert [p.name for p in passes] == ["mem2reg", "custom"]


def test_unknown_pass_name_lists_the_available_passes():
    with pytest.raises(IRError, match="unknown pass 'typo'"):
        parse_pipeline("mem2reg,typo")
    with pytest.raises(IRError, match="mem2reg"):
        parse_pipeline("typo")


# -- running ------------------------------------------------------------------


def test_default_pipeline_partitions(capsys):
    ctx = PassManager().run(fig7_module(), mode="relaxed")
    assert ctx.program is not None
    assert ctx.analysis is not None
    assert sorted(ctx.program.colors) == ["S", "blue", "red"]
    executed = [t.name for t in ctx.timings]
    assert executed == list(DEFAULT_PIPELINE)


def test_analyze_pipeline_stops_before_partition():
    ctx = PassManager(ANALYZE_PIPELINE).run(fig7_module(),
                                            mode="relaxed")
    assert ctx.analysis is not None
    assert ctx.program is None


BROKEN = """
    long color(blue) secret = 1;
    long out = 0;
    entry void main() { out = secret; }
"""


def test_secure_type_errors_are_collected_not_raised():
    # Storing a blue value into an uncolored global violates the
    # typing rules.  The analysis pass must deposit the errors
    # without raising; only `partition` raises.
    ctx = PassManager(ANALYZE_PIPELINE).run(
        compile_source(BROKEN, "broken"))
    assert ctx.analysis is not None
    assert ctx.analysis.errors
    with pytest.raises(SecureTypeError):
        PassManager().run(compile_source(BROKEN, "broken"))


def test_run_accepts_an_existing_context():
    ctx = CompilationContext(fig7_module(), mode="relaxed")
    out = PassManager("mem2reg").run(ctx)
    assert out is ctx
    assert [t.name for t in ctx.timings] == ["mem2reg"]


# -- observability ------------------------------------------------------------


def test_per_pass_metrics_are_published():
    metrics = MetricsRegistry()
    PassManager().run(fig7_module(), mode="relaxed", metrics=metrics)
    for name in DEFAULT_PIPELINE:
        assert metrics[f"pipeline.pass.runs[{name}]"].get() == 1
        assert f"pipeline.pass.seconds[{name}]" in metrics
    assert metrics["pipeline.pass.promoted[mem2reg]"].get() > 0
    # The analysis cache was exercised (and hit) during the run.
    assert metrics["pipeline.analysis_cache.misses"].get() > 0
    assert metrics["pipeline.analysis_cache.hits"].get() > 0


def test_pass_spans_land_on_the_pipeline_track():
    tracer = Tracer()
    PassManager().run(fig7_module(), mode="relaxed", tracer=tracer)
    spans = [e for e in tracer.events
             if e.get("cat") == CAT_PIPELINE]
    assert [e["name"] for e in spans] == list(DEFAULT_PIPELINE)
    for span in spans:
        assert span["ph"] == "X"
        assert "instrs_before" in span["args"]


def test_time_passes_renders_a_table():
    stream = io.StringIO()
    PassManager("mem2reg,dce", time_passes=True,
                stream=stream).run(fig7_module(), mode="relaxed")
    text = stream.getvalue()
    assert "=== pass timings ===" in text
    assert "mem2reg" in text and "dce" in text and "total" in text


def test_print_after_each_prints_module_ir():
    stream = io.StringIO()
    PassManager("mem2reg", print_after_each=True,
                stream=stream).run(fig7_module(), mode="relaxed")
    text = stream.getvalue()
    assert "; === IR after mem2reg ===" in text
    assert "define i32 @main()" in text


# -- verify-each --------------------------------------------------------------


class BreakTerminatorPass(Pass):
    """Deliberately corrupts the module: drops main's terminator."""

    name = "break-terminator"

    def run(self, ctx):
        entry = ctx.module.functions["main"].blocks[0]
        entry.instructions[-1].erase()
        return {}


def test_verify_each_catches_a_broken_pass():
    manager = PassManager(["mem2reg", BreakTerminatorPass()],
                          verify_each=True)
    with pytest.raises(IRError,
                       match="after pass 'break-terminator'"):
        manager.run(fig7_module(), mode="relaxed")


def test_verify_each_defaults_from_the_environment(monkeypatch):
    monkeypatch.setenv("REPRO_VERIFY_EACH_PASS", "1")
    assert PassManager().verify_each is True
    monkeypatch.setenv("REPRO_VERIFY_EACH_PASS", "0")
    assert PassManager().verify_each is False
    monkeypatch.delenv("REPRO_VERIFY_EACH_PASS")
    assert PassManager().verify_each is False


def test_verify_each_passes_on_a_clean_full_pipeline():
    ctx = PassManager(verify_each=True).run(fig7_module(),
                                            mode="relaxed")
    assert ctx.program is not None
