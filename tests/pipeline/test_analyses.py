"""Unit tests for the shared analysis cache: memoization,
invalidation, and the rule that dominator trees are built nowhere
else."""

import os

from repro.frontend import compile_source
from repro.ir.cfg import DominatorTree
from repro.pipeline import AnalysisCache

SOURCE = """
    int f(int x) {
        int acc = 0;
        if (x > 0) { acc = x; } else { acc = 0 - x; }
        return acc;
    }
    entry int main() { return f(7); }
"""


def module_and_fn():
    module = compile_source(SOURCE)
    return module, module.functions["f"]


def test_repeated_queries_hit_the_cache():
    _, fn = module_and_fn()
    cache = AnalysisCache()
    first = cache.dominators(fn)
    assert cache.dominators(fn) is first
    assert cache.stats() == {"hits": 1, "misses": 1,
                             "functions": 1}


def test_each_analysis_kind_is_cached_separately():
    _, fn = module_and_fn()
    cache = AnalysisCache()
    dom = cache.dominators(fn)
    pdom = cache.postdominators(fn)
    assert dom is not pdom
    assert isinstance(dom, DominatorTree) and isinstance(
        pdom, DominatorTree)
    rpo = cache.reverse_postorder(fn)
    assert rpo[0] is fn.blocks[0]
    assert cache.stats()["misses"] == 3
    cache.dominators(fn)
    cache.postdominators(fn)
    cache.reverse_postorder(fn)
    assert cache.stats()["hits"] == 3


def test_functions_are_cached_independently():
    module, fn = module_and_fn()
    main = module.functions["main"]
    cache = AnalysisCache()
    dom_f = cache.dominators(fn)
    dom_main = cache.dominators(main)
    assert dom_f is not dom_main
    assert cache.stats() == {"hits": 0, "misses": 2,
                             "functions": 2}


def test_invalidate_one_function_keeps_the_others():
    module, fn = module_and_fn()
    main = module.functions["main"]
    cache = AnalysisCache()
    cache.dominators(fn)
    dom_main = cache.dominators(main)
    cache.invalidate(fn)
    assert cache.dominators(main) is dom_main   # hit
    old = cache.dominators(fn)
    assert cache.stats()["misses"] == 3          # fn was rebuilt
    assert old is cache.dominators(fn)


def test_invalidate_all_drops_everything():
    _, fn = module_and_fn()
    cache = AnalysisCache()
    first = cache.dominators(fn)
    cache.invalidate()
    assert cache.dominators(fn) is not first


def test_frontier_is_derived_from_the_cached_dominators():
    _, fn = module_and_fn()
    cache = AnalysisCache()
    frontier = cache.frontier(fn)
    assert isinstance(frontier, dict)
    # Both if-arms have the join block in their dominance frontier.
    blocks = {b.name: b for b in fn.blocks}
    join = next(b for name, b in blocks.items() if "end" in name)
    arms = [b for name, b in blocks.items()
            if "then" in name or "else" in name]
    assert len(arms) == 2
    for arm in arms:
        assert join in frontier[arm]


def test_dominator_trees_are_built_only_inside_the_cache():
    """Acceptance criterion: ``DominatorTree(...)`` is constructed in
    exactly one place — the analysis cache.  Everything else must go
    through it (and share the memoized trees)."""
    import repro
    src_root = os.path.dirname(repro.__file__)
    offenders = []
    for dirpath, _, filenames in os.walk(src_root):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            rel = os.path.relpath(path, src_root)
            with open(path) as handle:
                text = handle.read()
            if "DominatorTree(" in text and rel not in (
                    os.path.join("ir", "cfg.py"),          # the class
                    os.path.join("pipeline", "analyses.py")):
                offenders.append(rel)
    assert not offenders, (
        f"DominatorTree constructed outside AnalysisCache: {offenders}")
