"""Golden round-trips: after every pipeline stage the module must
still print to parseable IR whose re-print is a fixed point."""

import pytest

from repro.frontend import compile_source
from repro.ir import print_module, verify_module
from repro.ir.parser import parse_module
from repro.pipeline import ANALYZE_PIPELINE, PassManager

SOURCE = """
    struct pair { int a; int b; };
    int color(blue) secret = 5;
    int color(blue) blue_out = 0;
    int tally = 0;

    int weigh(int n) {
        int budget = 4 * 8;
        if (n > budget) { return budget; }
        return n;
    }

    entry int main() {
        struct pair* p = malloc(sizeof(struct pair));
        p->a = weigh(50);
        p->b = weigh(7);
        blue_out = weigh(secret);
        tally = p->a + p->b;
        return tally;
    }
"""

STAGES = [ANALYZE_PIPELINE[:i + 1]
          for i in range(len(ANALYZE_PIPELINE))]


@pytest.mark.parametrize("stages", STAGES,
                         ids=["-".join(s) for s in STAGES])
def test_print_parse_print_is_a_fixed_point_after_each_stage(stages):
    module = compile_source(SOURCE)
    PassManager(stages).run(module, mode="relaxed")
    text1 = print_module(module)
    parsed = parse_module(text1, name=module.name)
    verify_module(parsed)
    text2 = print_module(parsed)
    assert text1 == text2


PARTITION_SOURCE = """
    int color(blue) secret = 5;
    int color(blue) blue_out = 0;

    int weigh(int n) {
        int budget = 4 * 8;
        if (n > budget) { return budget; }
        return n;
    }

    entry int main() {
        blue_out = weigh(secret);
        return weigh(50);
    }
"""


def test_partitioned_modules_round_trip():
    from repro.core.compiler import PrivagicCompiler
    program = PrivagicCompiler(mode="relaxed").compile_source(
        PARTITION_SOURCE)
    assert program is not None
    for color in program.colors:
        module = program.modules[color]
        text1 = print_module(module)
        parsed = parse_module(text1, name=module.name)
        assert print_module(parsed) == text1
