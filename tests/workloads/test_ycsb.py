"""Tests for the YCSB workload generator."""

from collections import Counter

import pytest

from repro.workloads import (
    LatestGenerator,
    UniformGenerator,
    Workload,
    ZipfianGenerator,
    WORKLOAD_A,
    WORKLOAD_B,
    WORKLOAD_C,
    WORKLOAD_D,
)
from repro.workloads.ycsb import dataset_sweep, workload_by_name


def test_uniform_covers_range():
    gen = UniformGenerator(100, seed=1)
    seen = {gen.next() for _ in range(5000)}
    assert min(seen) >= 0 and max(seen) < 100
    assert len(seen) > 90


def test_zipfian_is_skewed():
    gen = ZipfianGenerator(10_000, seed=2)
    counts = Counter(gen.next() for _ in range(20_000))
    top = sum(count for rank, count in counts.items() if rank < 100)
    # With theta=0.99 the top 1% of ranks draw a large share.
    assert top / 20_000 > 0.35
    assert all(0 <= rank < 10_000 for rank in counts)


def test_zipfian_popularity_is_monotonic():
    gen = ZipfianGenerator(1000)
    pops = [gen.popularity(r) for r in range(10)]
    assert pops == sorted(pops, reverse=True)


def test_latest_prefers_recent_keys():
    gen = LatestGenerator(1000, seed=3)
    samples = [gen.next() for _ in range(5000)]
    assert sum(1 for s in samples if s > 900) / len(samples) > 0.5


def test_workload_mix_ratios():
    wl = Workload(WORKLOAD_A, record_count=1000, operation_count=20_000,
                  seed=7)
    kinds = Counter(op.kind for op in wl.operations())
    assert abs(kinds["read"] / 20_000 - 0.5) < 0.05
    assert abs(kinds["update"] / 20_000 - 0.5) < 0.05


def test_workload_c_is_read_only():
    wl = Workload(WORKLOAD_C, 100, 1000)
    assert all(op.kind == "read" for op in wl.operations())


def test_workload_d_inserts_extend_keyspace():
    wl = Workload(WORKLOAD_D, 100, 2000, seed=5)
    inserted = [op for op in wl.operations() if op.kind == "insert"]
    assert inserted
    assert max(op.key for op in inserted) >= 100


def test_workload_is_reproducible():
    a = list(Workload(WORKLOAD_B, 500, 300, seed=11).operations())
    b = list(Workload(WORKLOAD_B, 500, 300, seed=11).operations())
    assert a == b
    c = list(Workload(WORKLOAD_B, 500, 300, seed=12).operations())
    assert a != c


def test_dataset_properties():
    wl = Workload(WORKLOAD_A, record_count=1024, operation_count=1)
    assert wl.dataset_bytes == 1024 * (1024 + 8)
    sweep = dataset_sweep(1024 * 1024, 8 * 1024 * 1024)
    assert len(sweep) == 4  # 1, 2, 4, 8 MiB
    assert sweep[0] == 1024


def test_workload_by_name():
    assert workload_by_name("a") is WORKLOAD_A
    with pytest.raises(ValueError):
        workload_by_name("Z")


def test_workload_by_name_aliases():
    from repro.workloads.ycsb import WORKLOAD_C, WORKLOAD_F
    for alias in ("ycsb-a", "YCSB-A", "ycsb_a", "ycsba",
                  "workload-a", "workloada", " a "):
        assert workload_by_name(alias) is WORKLOAD_A
    assert workload_by_name("ycsb-c") is WORKLOAD_C
    assert workload_by_name("f") is WORKLOAD_F


def test_workload_by_name_error_lists_choices():
    with pytest.raises(ValueError) as excinfo:
        workload_by_name("ycsb-z")
    message = str(excinfo.value)
    assert "'ycsb-z'" in message
    for letter in "ABCDF":
        assert letter in message
    # A bare prefix is not a workload either.
    with pytest.raises(ValueError):
        workload_by_name("ycsb")
