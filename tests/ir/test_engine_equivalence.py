"""Differential tests: the pre-decoded engine must be observationally
identical to the legacy isinstance-dispatch interpreter.

Every program here runs under both engines and must produce identical
results, step counts, final memory images (slots *and* allocation
metadata), stdout, access-observer traces and — for partitioned runs —
runtime message statistics.  A hypothesis batch widens the coverage
beyond the hand-written corpus.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import RuntimeFault
from repro.frontend import compile_source
from repro.ir.interp import ENGINES, Machine
from repro.runtime.executor import PrivagicRuntime

# -- helpers ----------------------------------------------------------------------


def _memory_image(machine):
    return (
        dict(machine.memory._slots),
        [(a.base, a.size, a.region, a.label, a.live)
         for a in machine.memory._allocs],
    )


def _run(module, engine, observe=False):
    machine = Machine(module, engine=engine)
    trace = []
    if observe:
        machine.access_hooks.append(
            lambda ctx, addr, region, rw:
            trace.append((ctx.name, addr, region, rw)))
    ctx = machine.spawn("main", name="main")
    machine.run()
    return {
        "result": ctx.result,
        "ctx_steps": ctx.steps,
        "total_steps": machine.total_steps,
        "stdout": machine.stdout,
        "memory": _memory_image(machine),
        "trace": trace,
    }


def assert_equivalent(source, observe=False):
    module = compile_source(source)
    runs = {engine: _run(module, engine, observe)
            for engine in ENGINES}
    legacy = runs["legacy"]
    for engine, run in runs.items():
        for key in legacy:
            assert run[key] == legacy[key], \
                f"engine {engine} differs from legacy on {key}"
    return legacy


# -- hand-written corpus ------------------------------------------------------------

LOOP_SUM = """
    int main() {
        int acc = 1;
        for (int i = 0; i < 100; i = i + 1) {
            acc = acc + i * 3 - (acc / 7);
        }
        return acc;
    }
"""

ARRAYS = """
    int main() {
        int xs[10];
        for (int i = 0; i < 10; i = i + 1) {
            xs[i] = i * i;
        }
        int acc = 0;
        for (int i = 0; i < 10; i = i + 1) {
            acc = acc + xs[9 - i];
        }
        return acc;
    }
"""

RECURSION = """
    int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    int main() { return fib(12); }
"""

STRINGS = """
    int main() {
        char* name = "privagic";
        printf("hello %s %d\\n", name, 3);
        return strlen(name);
    }
"""

STRUCTS = """
    struct point { int x; int y; };
    int main() {
        struct point p;
        p.x = 3;
        p.y = 4;
        struct point* q = &p;
        q->x = q->x + q->y;
        return p.x * 10 + p.y;
    }
"""

SHORT_CIRCUIT = """
    int called = 0;
    int bump() { called = called + 1; return 1; }
    int main() {
        int a = 0 && bump();
        int b = 1 || bump();
        int c = (called == 0) ? 40 : 7;
        return a + b + c + called;
    }
"""

WHILE_MOD = """
    int main() {
        int n = 1;
        int steps = 0;
        int x = 27;
        while (x != 1) {
            if (x % 2 == 0) { x = x / 2; }
            else { x = 3 * x + 1; }
            steps = steps + 1;
        }
        return steps * n;
    }
"""

GLOBALS = """
    int counter = 5;
    int table[4];
    void tick(int by) { counter = counter + by; }
    int main() {
        for (int i = 0; i < 4; i = i + 1) {
            table[i] = counter;
            tick(i);
        }
        return counter * 100 + table[3];
    }
"""

CORPUS = [LOOP_SUM, ARRAYS, RECURSION, STRINGS, STRUCTS,
          SHORT_CIRCUIT, WHILE_MOD, GLOBALS]


@pytest.mark.parametrize("source", CORPUS,
                         ids=["loop_sum", "arrays", "recursion",
                              "strings", "structs", "short_circuit",
                              "while_mod", "globals"])
def test_corpus_equivalence(source):
    assert_equivalent(source)


@pytest.mark.parametrize("source", [LOOP_SUM, ARRAYS, GLOBALS],
                         ids=["loop_sum", "arrays", "globals"])
def test_corpus_equivalence_observed(source):
    """With an access observer attached both engines must report the
    exact same access trace (the decoded engine must leave its
    inlined memory fast path)."""
    run = assert_equivalent(source, observe=True)
    assert run["trace"], "observer saw no accesses"


def test_fault_equivalence():
    """Faults must carry identical messages at identical steps."""
    source = """
        int main() {
            int x = 9;
            int acc = 0;
            for (int i = 0; i < 5; i = i + 1) {
                acc = acc + x / (3 - i);
            }
            return acc;
        }
    """
    module = compile_source(source)
    outcomes = {}
    for engine in ENGINES:
        machine = Machine(module, engine=engine)
        machine.spawn("main", name="main")
        with pytest.raises(RuntimeFault) as exc:
            machine.run()
        outcomes[engine] = (str(exc.value), machine.total_steps)
    for engine in ENGINES:
        assert outcomes[engine] == outcomes["legacy"], engine


def test_lockstep_interleaving():
    """Fig 3-style: two contexts sharing a global, stepped manually
    in an adversarial interleaving.  Both engines must show the same
    memory-observable state after every single step."""
    source = """
        int shared = 0;
        int writer() {
            for (int i = 0; i < 20; i = i + 1) {
                shared = shared + 1;
            }
            return shared;
        }
        int reader() {
            int seen = 0;
            for (int i = 0; i < 20; i = i + 1) {
                seen = seen + shared;
            }
            return seen;
        }
        int main() { return 0; }
    """
    module = compile_source(source)
    machines = {}
    for engine in ENGINES:
        machine = Machine(module, engine=engine)
        machine.spawn("writer", name="w")
        machine.spawn("reader", name="r")
        machines[engine] = machine

    def snapshot(machine):
        gv = machine.modules[0].globals["shared"]
        return (machine.total_steps,
                machine.memory.read(machine.global_address(gv)),
                tuple((c.finished, c.steps, c.result)
                      for c in machine.contexts))

    for step in range(500):
        index = step % 3 if step % 7 else (step + 1) % 2
        states = set()
        for engine, machine in machines.items():
            ctx = machine.contexts[index % len(machine.contexts)]
            if not ctx.finished:
                ctx.step()
            states.add(snapshot(machine))
        assert len(states) == 1, f"diverged at step {step}"


FIG6_PARTITIONED = """
    int color(U) unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        blue_g = n;
        red_g = n;
        printf("Hello\\n");
    }

    int f(int y) {
        g(21);
        return 42;
    }

    entry int main() {
        unsafe_g = 1;
        int x = f(blue_g);
        return x;
    }
"""


def test_partitioned_equivalence():
    """The Figure 6/7 protocol run — workers, channels, trampolines —
    must be identical under both engines, down to message stats and
    the access-observer trace."""
    program = compile_and_partition(FIG6_PARTITIONED, mode=RELAXED)
    runs = {}
    for engine in ENGINES:
        runtime = PrivagicRuntime(program, engine=engine)
        trace = []
        runtime.machine.access_hooks.append(
            lambda ctx, addr, region, rw:
            trace.append((ctx.name, addr, region, rw)))
        result = runtime.run("main")
        runs[engine] = {
            "result": result,
            "total_steps": runtime.machine.total_steps,
            "stdout": runtime.machine.stdout,
            "stats": runtime.stats.as_dict(),
            "memory": _memory_image(runtime.machine),
            "trace": trace,
        }
    for engine in ENGINES:
        assert runs[engine] == runs["legacy"], engine
    assert runs["legacy"]["result"] == 42


# -- hypothesis batch ---------------------------------------------------------------

_OPS = st.sampled_from(["+", "-", "*", "/", "%"])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(_OPS, st.integers(-40, 40)),
                min_size=1, max_size=6),
       st.integers(0, 12), st.integers(-100, 100))
def test_hypothesis_equivalence(ops, rounds, seed):
    body = []
    for op, value in ops:
        if op in "/%":
            value = abs(value) + 1  # keep the division total
        body.append(f"x = x {op} ({value});")
    source = """
        int main() {
            int x = %d;
            for (int i = 0; i < %d; i = i + 1) {
                %s
                if (x > 100000) { x = x - 100000; }
            }
            return x;
        }
    """ % (seed, rounds, "\n".join(body))
    assert_equivalent(source)
