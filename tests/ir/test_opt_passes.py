"""Unit tests for the new optimization passes (simplify-cfg,
constfold), the DCE fixpoint, and the verifier gaps they exposed."""

import pytest

from repro.errors import IRError
from repro.frontend import compile_source
from repro.ir import (
    Function,
    FunctionType,
    I8,
    I32,
    I64,
    IRBuilder,
    Module,
    verify_function,
    verify_module,
)
from repro.ir.interp import Machine
from repro.ir.passes import (
    constant_fold,
    dead_code_elimination,
    mem2reg,
    simplify_cfg,
)


def new_function(name="f", params=(I32,), pnames=("x",), ret=I32):
    module = Module("m")
    fn = module.add_function(
        Function(name, FunctionType(ret, list(params)), list(pnames)))
    return module, fn, IRBuilder(fn.add_block("entry"))


# -- simplify-cfg -------------------------------------------------------------


def test_constant_branch_becomes_a_jump():
    module, fn, b = new_function()
    then_b = fn.add_block("then")
    else_b = fn.add_block("else")
    b.branch(b.const_bool(True), then_b, else_b)
    b.position_at_end(then_b)
    b.ret(b.const_int(1))
    b.position_at_end(else_b)
    b.ret(b.const_int(2))

    assert simplify_cfg(fn) > 0
    verify_function(fn)
    # The not-taken arm is unreachable and removed; the taken arm is
    # merged into the entry.
    assert len(fn.blocks) == 1
    assert Machine(module).run_function("f", [0]) == 1


def test_constant_branch_updates_phis_of_the_dead_arm():
    module, fn, b = new_function()
    then_b = fn.add_block("then")
    else_b = fn.add_block("else")
    join = fn.add_block("join")
    b.branch(b.const_bool(False), then_b, else_b)
    b.position_at_end(then_b)
    b.jump(join)
    b.position_at_end(else_b)
    b.jump(join)
    b.position_at_end(join)
    phi = b.phi(I32)
    phi.add_incoming(b.const_int(10), then_b)
    phi.add_incoming(b.const_int(20), else_b)
    b.ret(phi)

    assert simplify_cfg(fn) > 0
    verify_function(fn)
    assert Machine(module).run_function("f", [0]) == 20


def test_jump_chains_are_merged():
    module, fn, b = new_function()
    middle = fn.add_block("middle")
    last = fn.add_block("last")
    val = b.add(fn.args[0], b.const_int(1))
    b.jump(middle)
    b.position_at_end(middle)
    val2 = b.mul(val, b.const_int(2))
    b.jump(last)
    b.position_at_end(last)
    b.ret(val2)

    assert simplify_cfg(fn) > 0
    verify_function(fn)
    assert len(fn.blocks) == 1
    assert Machine(module).run_function("f", [20]) == 42


def test_join_points_are_never_merged():
    # Rule-4 coloring depends on control-dependence regions: a block
    # with two predecessors must survive even when its predecessor
    # ends in a plain jump.
    module, fn, b = new_function()
    then_b = fn.add_block("then")
    else_b = fn.add_block("else")
    join = fn.add_block("join")
    cond = b.cmp("sgt", fn.args[0], b.const_int(0))
    b.branch(cond, then_b, else_b)
    b.position_at_end(then_b)
    b.jump(join)
    b.position_at_end(else_b)
    b.jump(join)
    b.position_at_end(join)
    phi = b.phi(I32)
    phi.add_incoming(b.const_int(1), then_b)
    phi.add_incoming(b.const_int(2), else_b)
    b.ret(phi)

    assert simplify_cfg(fn) == 0
    assert len(fn.blocks) == 4


def test_unreachable_blocks_are_removed():
    module, fn, b = new_function()
    dead = fn.add_block("dead")
    b.ret(fn.args[0])
    b.position_at_end(dead)
    b.ret(b.const_int(0))

    assert simplify_cfg(fn) > 0
    assert [blk.name for blk in fn.blocks] == ["entry"]
    verify_function(fn)


def test_simplify_cfg_runs_on_whole_modules():
    module = compile_source("""
        int f(int y) { if (y > 0) { return 1; } return 2; }
        entry int main() { return f(1); }
    """)
    mem2reg(module)
    before = Machine(module).run_function("main")
    assert simplify_cfg(module) > 0        # codegen's dead blocks
    verify_module(module)
    assert Machine(module).run_function("main") == before == 1


# -- constfold ----------------------------------------------------------------


def test_constant_binop_folds_to_the_interpreter_value():
    module, fn, b = new_function(params=(), pnames=())
    product = b.mul(b.const_int(6), b.const_int(7))
    b.ret(product)
    assert constant_fold(fn) == 1
    verify_function(fn)
    assert len(fn.blocks[0].instructions) == 1   # just the ret
    assert Machine(module).run_function("f", []) == 42


def test_folding_wraps_like_the_interpreter():
    # i32 overflow must wrap exactly as the runtime would have.
    module, fn, b = new_function(params=(), pnames=())
    big = b.add(b.const_int(2**31 - 1), b.const_int(1))
    b.ret(big)
    assert constant_fold(fn) == 1
    assert Machine(module).run_function("f", []) == -(2**31)


def test_constant_cmp_and_select_fold():
    module, fn, b = new_function(params=(), pnames=())
    flag = b.cmp("slt", b.const_int(1), b.const_int(2))
    picked = b.select(flag, b.const_int(11), b.const_int(22))
    b.ret(picked)
    assert constant_fold(fn) == 2
    assert Machine(module).run_function("f", []) == 11


def test_constant_trunc_folds():
    module, fn, b = new_function(params=(), pnames=(), ret=I8)
    small = b.cast("trunc", b.const_i64(0x1FF), I8)
    b.ret(small)
    assert constant_fold(fn) == 1
    assert Machine(module).run_function("f", []) == -1


def test_division_by_constant_zero_is_not_folded():
    # The runtime fault must be preserved, not turned into a silent
    # compile-time constant.
    module, fn, b = new_function(params=(), pnames=())
    bad = b.sdiv(b.const_int(1), b.const_int(0))
    b.ret(bad)
    assert constant_fold(fn) == 0


def test_folding_cascades_through_chains():
    module, fn, b = new_function(params=(), pnames=())
    a = b.add(b.const_int(2), b.const_int(3))      # 5
    c = b.mul(a, b.const_int(8))                   # 40
    d = b.add(c, b.const_int(2))                   # 42
    b.ret(d)
    assert constant_fold(fn) == 3
    assert Machine(module).run_function("f", []) == 42


# -- dce ----------------------------------------------------------------------


def test_dce_erases_a_three_deep_dead_chain_in_one_call():
    module, fn, b = new_function()
    a = b.add(fn.args[0], b.const_int(1))
    c = b.mul(a, b.const_int(2))
    b.sub(c, b.const_int(3))                       # dead root
    b.ret(fn.args[0])
    assert dead_code_elimination(fn) == 3
    assert len(fn.blocks[0].instructions) == 1
    assert Machine(module).run_function("f", [9]) == 9


def test_dce_keeps_side_effects():
    module = compile_source("""
        int g = 0;
        entry int main() { g = 5; int dead = g + 1; return g; }
    """)
    mem2reg(module)
    dead_code_elimination(module)
    assert Machine(module).run_function("main") == 5


# -- verifier gaps ------------------------------------------------------------


def test_verifier_rejects_an_unterminated_unreachable_block():
    module, fn, b = new_function()
    dead = fn.add_block("dead")
    b.ret(fn.args[0])
    b.position_at_end(dead)
    b.add(fn.args[0], b.const_int(1))    # no terminator
    with pytest.raises(IRError, match="terminator"):
        verify_function(fn)


def test_verifier_rejects_a_branch_to_a_removed_block():
    module, fn, b = new_function()
    target = fn.add_block("target")
    b.jump(target)
    b.position_at_end(target)
    b.ret(fn.args[0])
    fn.blocks.remove(target)
    target.parent = None
    with pytest.raises(IRError, match="not in the function"):
        verify_function(fn)


def test_verifier_rejects_a_phi_from_a_foreign_block():
    module, fn, b = new_function()
    other_module = Module("other")
    other = other_module.add_function(
        Function("o", FunctionType(I32, []), []))
    foreign = other.add_block("foreign")
    join = fn.add_block("join")
    b.jump(join)
    entry = fn.blocks[0]
    b.position_at_end(join)
    phi = b.phi(I32)
    phi.add_incoming(b.const_int(1), entry)
    phi.add_incoming(b.const_int(2), foreign)
    b.ret(phi)
    with pytest.raises(IRError):
        verify_function(fn)
