"""Round-trip tests: print -> parse -> print is a fixed point, and
parsed modules execute identically."""

import pytest

from repro.frontend import compile_source
from repro.ir import print_module, verify_module
from repro.ir.interp import Machine
from repro.ir.parser import parse_module

SOURCES = {
    "arith": """
        int compute(int a, int b) {
            int total = 0;
            for (int i = 0; i < a; i++) total += i * b;
            return total;
        }
        entry int main() { return compute(5, 3); }
    """,
    "structs": """
        struct point { int x; int y; };
        entry int main() {
            struct point* p = malloc(sizeof(struct point));
            p->x = 11;
            p->y = 31;
            return p->x + p->y;
        }
    """,
    "colored": """
        struct account {
            long color(blue) owner;
            long balance;
        };
        long color(blue) total = 0;
        entry int main() { return 0; }
    """,
    "strings": """
        entry int main() {
            printf("value=%d\\n", 42);
            return strlen("hello");
        }
    """,
}


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_print_parse_print_fixed_point(name):
    module = compile_source(SOURCES[name])
    text1 = print_module(module)
    parsed = parse_module(text1, name=module.name)
    text2 = print_module(parsed)
    assert text1 == text2


@pytest.mark.parametrize("name", ["arith", "structs", "strings"])
def test_parsed_module_executes_identically(name):
    module = compile_source(SOURCES[name])
    expected = Machine(module).run_function("main")
    parsed = parse_module(print_module(module))
    verify_module(parsed)
    assert Machine(parsed).run_function("main") == expected


def test_colored_types_survive_round_trip():
    module = compile_source(SOURCES["colored"])
    parsed = parse_module(print_module(module))
    account = parsed.structs["account"]
    assert account.fields[0].type.color == "blue"
    assert account.fields[1].type.color is None
    assert parsed.globals["total"].color == "blue"


def test_function_attributes_survive_round_trip():
    module = compile_source("""
        within long helper(long v);
        ignore long declass(long v);
        entry int main() { return 0; }
    """)
    parsed = parse_module(print_module(module))
    assert parsed.get_function("helper").is_within
    assert parsed.get_function("declass").is_ignore
    assert parsed.get_function("main").is_entry


def test_phi_round_trip():
    module = compile_source("""
        entry int main() {
            int x = 0;
            for (int i = 0; i < 10; i++)
                x = x + (i > 5 ? 2 : 1);
            return x;
        }
    """)
    from repro.ir.passes import mem2reg
    mem2reg(module)
    expected = Machine(module).run_function("main")
    parsed = parse_module(print_module(module))
    assert Machine(parsed).run_function("main") == expected
