"""Smoke tests: build a function with the IRBuilder, verify it, run it."""

from repro.ir import (
    Function,
    FunctionType,
    IRBuilder,
    Module,
    I32,
    verify_module,
)
from repro.ir.interp import Machine
from repro.ir.passes import dead_code_elimination, mem2reg


def build_abs_module():
    module = Module("abs")
    fn = module.add_function(
        Function("iabs", FunctionType(I32, [I32]), ["x"]))
    entry = fn.add_block("entry")
    neg = fn.add_block("neg")
    done = fn.add_block("done")
    b = IRBuilder(entry)
    is_neg = b.cmp("slt", fn.args[0], b.const_int(0))
    b.branch(is_neg, neg, done)
    b.position_at_end(neg)
    negated = b.sub(b.const_int(0), fn.args[0])
    b.jump(done)
    b.position_at_end(done)
    phi = b.phi(I32)
    phi.add_incoming(fn.args[0], entry)
    phi.add_incoming(negated, neg)
    b.ret(phi)
    return module


def test_build_verify_run():
    module = build_abs_module()
    verify_module(module)
    machine = Machine(module)
    assert machine.run_function("iabs", [-5]) == 5
    assert Machine(module).run_function("iabs", [7]) == 7


def test_mem2reg_promotes_local():
    module = Module("m")
    fn = module.add_function(
        Function("double_it", FunctionType(I32, [I32]), ["x"]))
    b = IRBuilder(fn.add_block("entry"))
    slot = b.alloca(I32, "local")
    b.store(fn.args[0], slot)
    loaded = b.load(slot)
    result = b.add(loaded, loaded)
    b.ret(result)
    assert mem2reg(module) == 1
    verify_module(module)
    assert not any(i.opcode in ("alloca", "load", "store")
                   for i in fn.instructions())
    assert Machine(module).run_function("double_it", [21]) == 42


def test_dce_removes_unused():
    module = Module("m")
    fn = module.add_function(
        Function("f", FunctionType(I32, [I32]), ["x"]))
    b = IRBuilder(fn.add_block("entry"))
    b.add(fn.args[0], b.const_int(1))  # dead
    b.ret(fn.args[0])
    assert dead_code_elimination(module) == 1
    verify_module(module)
