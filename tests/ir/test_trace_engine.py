"""Trace-tier tests: cache invalidation soundness, bounded decode
cache, region planning, deopt paths, mid-trace faults, and watchdog
accounting — differential against the decoded and legacy engines."""

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import RuntimeFault, WatchdogTimeout
from repro.frontend import compile_source
from repro.ir.engine import _fingerprint, decode_function
from repro.ir.instructions import BinOp
from repro.ir.interp import ENGINES, Machine
from repro.ir.trace import (
    TracedExecutionContext,
    plan_function,
    region_steps,
)
from repro.ir.values import Constant
from repro.pipeline.analyses import AnalysisCache
from repro.runtime.executor import PrivagicRuntime

HOT_LOOP = """
    int main() {
        int acc = 1;
        for (int i = 0; i < 200; i = i + 1) {
            acc = acc + i * 3 - (acc / 7);
        }
        return acc;
    }
"""

FAULTING_LOOP = """
    int main() {
        int acc = 0;
        for (int i = 0; i < 100; i = i + 1) {
            acc = acc + 1000 / (50 - i);
        }
        return acc;
    }
"""


@pytest.fixture(autouse=True)
def _force_tracing(monkeypatch):
    """Compile every planned region on first entry so small test
    programs exercise the trace tier."""
    monkeypatch.setenv("REPRO_TRACE_THRESHOLD", "0")


def _result(module, engine, **kwargs):
    machine = Machine(module, engine=engine, **kwargs)
    ctx = machine.spawn("main", name="main")
    machine.run()
    return ctx.result, machine.total_steps, machine


def _find_const_binop(fn, op, const):
    for block in fn.blocks:
        for instr in block.instructions:
            if isinstance(instr, BinOp) and instr.op == op:
                for i, operand in enumerate(instr.operands):
                    if (isinstance(operand, Constant)
                            and operand.value == const):
                        return instr, i
    raise AssertionError(f"no {op} by {const} in @{fn.name}")


# -- cache invalidation (satellite 1) -----------------------------------------


def test_fingerprint_is_structural():
    module = compile_source(HOT_LOOP)
    fn = module.functions["main"]
    before = _fingerprint(fn)
    instr, index = _find_const_binop(fn, "mul", 3)
    instr.set_operand(index, Constant(instr.type, 5))
    after = _fingerprint(fn)
    # Same shape — the old (n_blocks, n_instrs) fingerprint is blind
    # to this mutation; the structural hash must not be.
    assert before[0] == after[0] and before[1] == after[1]
    assert before != after


@pytest.mark.parametrize("engine", ["decoded", "traced"])
def test_inplace_mutation_invalidates_across_runs(engine):
    """Mutating IR between runs (same block/instruction counts) must
    re-decode: stale cached closures would replay the old constant."""
    module = compile_source(HOT_LOOP)
    machine = Machine(module, engine=engine)
    ctx = machine.spawn("main", name="main")
    machine.run()
    original = ctx.result

    fn = module.functions["main"]
    instr, index = _find_const_binop(fn, "mul", 3)
    instr.set_operand(index, Constant(instr.type, 5))

    ctx2 = machine.spawn("main", name="main2")
    machine.run()
    mutated = ctx2.result

    oracle = compile_source(HOT_LOOP.replace("i * 3", "i * 5"))
    expected, _, _ = _result(oracle, "legacy")
    assert mutated == expected
    assert mutated != original


def test_decode_cache_is_bounded():
    """Repeated compiles of mutated IR must evict, not accumulate
    (the long-running-serve leak of satellite 2)."""
    module = compile_source(HOT_LOOP)
    machine = Machine(module, engine="decoded")
    machine._decoded_cache_cap = 4
    fn = module.functions["main"]
    instr, index = _find_const_binop(fn, "mul", 3)
    for value in range(20):
        instr.set_operand(index, Constant(instr.type, value))
        machine._decode_epoch += 1  # simulate a run boundary
        decode_function(machine, fn)
        assert len(machine._decoded_cache) <= 4
    # Same-key recompiles replace the entry: one function, one slot.
    assert len(machine._decoded_cache) == 1


def test_unchanged_code_is_reused_across_runs():
    module = compile_source(HOT_LOOP)
    machine = Machine(module, engine="decoded")
    fn = module.functions["main"]
    machine.spawn("main", name="a")
    machine.run()
    code = machine._decoded_cache[fn]
    machine.spawn("main", name="b")
    machine.run()
    assert machine._decoded_cache[fn] is code


# -- region planning ----------------------------------------------------------


def test_plan_finds_the_hot_loop():
    module = compile_source(HOT_LOOP)
    fn = module.functions["main"]
    plan = plan_function(fn, AnalysisCache())
    assert len(plan) == 1
    region = plan[0]
    # The region is a natural loop: the last block branches back to
    # the head, and every block belongs to the same function.
    assert region[0] in region[-1].successors
    assert region_steps(region) >= 3


def test_straight_line_function_has_no_regions():
    module = compile_source("int main() { return 41 + 1; }")
    fn = module.functions["main"]
    assert plan_function(fn, AnalysisCache()) == ()


def test_pipeline_pass_deposits_reusable_plans():
    program = compile_and_partition("""
        int color(U) unsafe_g = 0;
        entry int main() {
            unsafe_g = 1;
            int acc = 0;
            for (int i = 0; i < 100; i = i + 1) { acc = acc + i; }
            return acc;
        }
    """, mode=RELAXED)
    planned = [fn for module in program.modules.values()
               for fn in module.defined_functions()
               if getattr(fn, "_trace_plan_fp", None) is not None]
    assert planned, "trace-compile pass left no plans"
    for fn in planned:
        assert fn._trace_plan_fp == _fingerprint(fn)


# -- execution through the trace tier -----------------------------------------


def test_traced_engine_compiles_and_matches():
    module = compile_source(HOT_LOOP)
    expected, legacy_steps, _ = _result(module, "legacy")
    result, steps, machine = _result(module, "traced")
    assert (result, steps) == (expected, legacy_steps)
    assert machine.trace_stats["compiled"] >= 1
    assert machine.trace_stats["steps"] > 0
    assert isinstance(machine.context_class(), type(TracedExecutionContext)) \
        or machine.context_class() is TracedExecutionContext


def test_small_burst_budgets_deopt_and_stay_exact():
    """Driving the traced context with burst budgets smaller than one
    loop iteration must fall back to the decoded tier (deopt) and
    still replay the exact legacy step sequence."""
    module = compile_source(HOT_LOOP)
    expected, legacy_steps, _ = _result(module, "legacy")

    machine = Machine(module, engine="traced")
    ctx = machine.spawn("main", name="main")
    contexts = [ctx]
    while not ctx.finished:
        ctx.run_burst(3, contexts)
    assert ctx.result == expected
    assert machine.total_steps == legacy_steps
    # Budget-headroom rejections are counted as deopts.
    assert machine.trace_stats["deopts"] > 0
    assert machine.trace_stats["compiled"] >= 1


def test_varied_burst_budgets_match_decoded():
    """Mixed budgets exercise mid-loop entry (prev_block = back edge)
    and budget exits; memory images must stay identical."""
    module_a = compile_source(HOT_LOOP)
    module_b = compile_source(HOT_LOOP)
    runs = {}
    for engine, module in (("decoded", module_a), ("traced", module_b)):
        machine = Machine(module, engine=engine)
        ctx = machine.spawn("main", name="main")
        budget = 1
        while not ctx.finished:
            ctx.run_burst(budget, [ctx])
            budget = budget % 37 + 1
        runs[engine] = (ctx.result, ctx.steps, machine.total_steps,
                        dict(machine.memory._slots))
    assert runs["traced"] == runs["decoded"]


def test_single_steps_never_trace():
    """step() bypasses the trace tier by design (lockstep oracles)."""
    module = compile_source(HOT_LOOP)
    machine = Machine(module, engine="traced")
    ctx = machine.spawn("main", name="main")
    for _ in range(100):
        if ctx.finished:
            break
        ctx.step()
    assert machine.trace_stats["entries"] == 0


def test_midtrace_fault_parity():
    """A division fault deep inside a compiled trace must surface the
    identical message at the identical step on all three engines."""
    module = compile_source(FAULTING_LOOP)
    outcomes = {}
    for engine in ENGINES:
        machine = Machine(module, engine=engine)
        machine.spawn("main", name="main")
        with pytest.raises(RuntimeFault) as exc:
            machine.run()
        outcomes[engine] = (str(exc.value), machine.total_steps)
    assert outcomes["traced"] == outcomes["legacy"]
    assert outcomes["decoded"] == outcomes["legacy"]
    assert "division by zero" in outcomes["traced"][0]


def test_watchdog_accounting_is_engine_independent():
    """Per-context watchdog budgets must trip at the same point under
    the trace tier: traces charge ctx.steps exactly and never run
    past their burst budget."""
    source = """
        int color(U) unsafe_g = 0;
        entry int main() {
            unsafe_g = 1;
            int acc = 0;
            for (int i = 0; i < 100000; i = i + 1) { acc = acc + i; }
            return acc;
        }
    """
    program = compile_and_partition(source, mode=RELAXED)
    outcomes = {}
    for engine in ENGINES:
        runtime = PrivagicRuntime(program, engine=engine,
                                  watchdog_steps=5_000)
        with pytest.raises(WatchdogTimeout) as exc:
            runtime.run("main")
        outcomes[engine] = (str(exc.value),
                            runtime.machine.total_steps)
    assert outcomes["traced"] == outcomes["legacy"]
    assert outcomes["decoded"] == outcomes["legacy"]


def test_partitioned_traced_run_matches(capsys):
    source = """
        int color(U) unsafe_g = 0;
        int color(blue) blue_g = 10;
        int color(red) red_g = 0;

        void g(int n) {
            int acc = 0;
            for (int i = 0; i < 50; i = i + 1) { acc = acc + i * n; }
            blue_g = acc;
            red_g = n;
        }

        int f(int y) { g(21); return 42; }

        entry int main() {
            unsafe_g = 1;
            int x = 0;
            for (int i = 0; i < 5; i = i + 1) { x = f(blue_g); }
            return x;
        }
    """
    program = compile_and_partition(source, mode=RELAXED)
    runs = {}
    for engine in ENGINES:
        runtime = PrivagicRuntime(program, engine=engine)
        result = runtime.run("main")
        runs[engine] = (result, runtime.machine.total_steps,
                        runtime.stats.as_dict())
    assert runs["traced"] == runs["legacy"]
    assert runs["decoded"] == runs["legacy"]


def test_trace_counters_reach_metrics():
    from repro.obs import Observability
    source = """
        int color(U) unsafe_g = 0;
        entry int main() {
            unsafe_g = 1;
            int acc = 0;
            for (int i = 0; i < 500; i = i + 1) { acc = acc + i; }
            return acc;
        }
    """
    program = compile_and_partition(source, mode=RELAXED)
    runtime = PrivagicRuntime(program, engine="traced")
    obs = Observability().attach(runtime)
    runtime.run("main")
    registry = obs.publish()
    assert registry.counter("interp.trace.compiled").get() >= 1
    assert registry.counter("interp.trace.steps").get() > 0
    obs.detach()
