"""Unit tests for the CFG analyses, the verifier and the passes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import IRError
from repro.frontend import compile_source
from repro.ir import (
    Function,
    FunctionType,
    IRBuilder,
    Module,
    I32,
    verify_function,
    verify_module,
)
from repro.ir.cfg import (
    DominatorTree,
    blocks_influenced_by,
    reverse_postorder,
)
from repro.ir.interp import Machine
from repro.ir.passes import dead_code_elimination, mem2reg


def diamond_function():
    """entry -> (left|right) -> join -> exit."""
    module = Module("m")
    fn = module.add_function(Function("f", FunctionType(I32, [I32]),
                                      ["x"]))
    entry = fn.add_block("entry")
    left = fn.add_block("left")
    right = fn.add_block("right")
    join = fn.add_block("join")
    b = IRBuilder(entry)
    cond = b.cmp("slt", fn.args[0], b.const_int(0))
    b.branch(cond, left, right)
    b.position_at_end(left)
    lval = b.const_int(1)
    b.jump(join)
    b.position_at_end(right)
    b.jump(join)
    b.position_at_end(join)
    phi = b.phi(I32)
    phi.add_incoming(b.const_int(1), left)
    phi.add_incoming(b.const_int(2), right)
    b.ret(phi)
    return module, fn, (entry, left, right, join)


def test_reverse_postorder_starts_at_entry():
    _, fn, (entry, left, right, join) = diamond_function()
    order = reverse_postorder(fn)
    assert order[0] is entry
    assert order[-1] is join
    assert set(order) == {entry, left, right, join}


def test_dominators_of_diamond():
    _, fn, (entry, left, right, join) = diamond_function()
    dt = DominatorTree(fn)
    assert dt.immediate(left) is entry
    assert dt.immediate(right) is entry
    assert dt.immediate(join) is entry
    assert dt.dominates(entry, join)
    assert not dt.dominates(left, join)


def test_postdominators_of_diamond():
    _, fn, (entry, left, right, join) = diamond_function()
    pdt = DominatorTree(fn, post=True)
    assert pdt.immediate(left) is join
    assert pdt.immediate(right) is join
    assert pdt.immediate(entry) is join
    assert pdt.dominates(join, entry)


def test_influenced_blocks_exclude_join():
    _, fn, (entry, left, right, join) = diamond_function()
    pdt = DominatorTree(fn, post=True)
    influenced = blocks_influenced_by(entry, pdt)
    assert influenced == {left, right}


def test_postdominators_with_multiple_exits_terminate():
    module = compile_source("""
        long f(long n) {
            if (n < 0) return 0 - 1;
            return n * 2;
        }
    """)
    fn = module.get_function("f")
    pdt = DominatorTree(fn, post=True)   # must not hang (virtual root)
    # both return blocks postdominate only themselves
    exits = [b for b in fn.blocks if b.is_terminated
             and not b.successors]
    for e in exits:
        assert pdt.immediate(e) is None


def test_dominance_frontier_of_diamond():
    _, fn, (entry, left, right, join) = diamond_function()
    dt = DominatorTree(fn)
    frontier = dt.frontier()
    assert frontier[left] == {join}
    assert frontier[right] == {join}
    assert frontier.get(entry, set()) == set()


# -- verifier ---------------------------------------------------------------------


def test_verifier_catches_missing_terminator():
    module = Module("m")
    fn = module.add_function(Function("f", FunctionType(I32, [])))
    fn.add_block("entry")  # empty block, no terminator
    with pytest.raises(IRError):
        verify_function(fn)


def test_verifier_catches_use_before_def():
    module = Module("m")
    fn = module.add_function(Function("f", FunctionType(I32, [I32]),
                                      ["x"]))
    b = IRBuilder(fn.add_block("entry"))
    first = b.add(fn.args[0], b.const_int(1))
    second = b.add(first, b.const_int(2))
    b.ret(second)
    # Swap the two instructions: `second` now uses `first` before it
    # is defined.
    block = fn.entry_block
    block.instructions[0], block.instructions[1] = \
        block.instructions[1], block.instructions[0]
    with pytest.raises(IRError):
        verify_function(fn)


def test_verifier_accepts_compiled_programs():
    module = compile_source("""
        struct s { int a; int b; };
        int main() {
            struct s v;
            v.a = 1;
            v.b = 2;
            int total = 0;
            for (int i = 0; i < v.b; i++) total += v.a;
            return total;
        }
    """)
    verify_module(module)


# -- passes -------------------------------------------------------------------------


def test_mem2reg_keeps_address_taken_allocas():
    module = compile_source("""
        long deref(long* p) { return *p; }
        long f() {
            long x = 5;
            return deref(&x);
        }
    """)
    promoted = mem2reg(module)
    fn = module.get_function("f")
    allocas = [i for i in fn.instructions() if i.opcode == "alloca"]
    assert len(allocas) == 1  # &x prevents promotion
    assert Machine(module).run_function("f") == 5


def test_mem2reg_keeps_colored_allocas():
    module = compile_source("""
        long f() {
            long color(blue) x = 5;
            return 1;
        }
    """)
    mem2reg(module)
    fn = module.get_function("f")
    allocas = [i for i in fn.instructions() if i.opcode == "alloca"]
    assert len(allocas) == 1  # explicit color pins it to memory


def test_mem2reg_inserts_phis_for_loops():
    module = compile_source("""
        int f(int n) {
            int total = 0;
            for (int i = 0; i < n; i++) total += i;
            return total;
        }
    """)
    mem2reg(module)
    fn = module.get_function("f")
    phis = [i for i in fn.instructions() if i.opcode == "phi"]
    assert phis
    verify_module(module)
    assert Machine(module).run_function("f", [10]) == 45


@settings(max_examples=25, deadline=None)
@given(n=st.integers(0, 40))
def test_mem2reg_preserves_semantics(n):
    """Property: promotion never changes observable results."""
    source = """
        int f(int n) {
            int a = 0;
            int b = 1;
            while (n > 0) {
                int t = a + b;
                a = b;
                b = t;
                n = n - 1;
            }
            return a;
        }
    """
    plain = Machine(compile_source(source)).run_function("f", [n])
    module = compile_source(source)
    mem2reg(module)
    promoted = Machine(module).run_function("f", [n])
    assert plain == promoted


def test_dce_keeps_side_effects():
    module = compile_source("""
        int main() {
            printf("kept\\n");
            int dead = 1 + 2;
            return 0;
        }
    """)
    dead_code_elimination(module)
    machine = Machine(module)
    machine.run_function("main")
    assert machine.stdout == "kept\n"
