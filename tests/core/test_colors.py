"""The color system of Table 2: F, U, S and named enclave colors."""

import pytest
from hypothesis import given, strategies as st

from repro.core.colors import (
    F,
    HARDENED,
    RELAXED,
    S,
    U,
    compatible,
    is_free,
    is_named,
    is_untrusted,
    join,
    untrusted_color,
    validate_color_name,
)
from repro.errors import SecureTypeError

COLORS = st.sampled_from([F, U, S, "blue", "red", "green"])


def test_table2_initial_colors():
    # "For a memory location ... the color U (untrusted) in hardened
    # mode and the color S (shared) in relaxed mode."
    assert untrusted_color(HARDENED) == U
    assert untrusted_color(RELAXED) == S


def test_f_is_compatible_with_everything():
    # "F is the only color compatible with any other color."
    for other in (F, U, S, "blue"):
        assert compatible(F, other)
        assert compatible(other, F)


def test_u_and_s_incompatible_with_others():
    # Table 2: "Compatible with: no color" (apart from F).
    assert not compatible(U, S)
    assert not compatible(U, "blue")
    assert not compatible(S, "blue")
    assert compatible(U, U)
    assert compatible(S, S)


def test_named_colors_only_self_compatible():
    assert compatible("blue", "blue")
    assert not compatible("blue", "red")


def test_join_takes_the_non_free_color():
    assert join(F, "blue") == "blue"
    assert join("blue", F) == "blue"
    assert join("blue", "blue") == "blue"


def test_join_rejects_two_colors():
    with pytest.raises(SecureTypeError):
        join("blue", "red")
    with pytest.raises(SecureTypeError):
        join(U, "blue")


def test_classification_predicates():
    assert is_free(F) and not is_free("blue")
    assert is_untrusted(U) and is_untrusted(S)
    assert is_named("blue") and not is_named(F) and not is_named(S)


def test_reserved_names_rejected():
    with pytest.raises(SecureTypeError):
        validate_color_name(F)
    with pytest.raises(SecureTypeError):
        validate_color_name(S)
    assert validate_color_name("blue") == "blue"


# -- properties --------------------------------------------------------------------


@given(a=COLORS, b=COLORS)
def test_compatibility_is_symmetric(a, b):
    assert compatible(a, b) == compatible(b, a)


@given(a=COLORS)
def test_compatibility_is_reflexive(a):
    assert compatible(a, a)


@given(a=COLORS, b=COLORS)
def test_join_agrees_with_compatibility(a, b):
    if compatible(a, b):
        result = join(a, b)
        assert compatible(result, a) and compatible(result, b)
    else:
        with pytest.raises(SecureTypeError):
            join(a, b)
