"""Tests for the §7.1 shared-block rewriting of S globals."""

from repro.core.globals_rewrite import SHARED_BLOCK, rewrite_shared_globals
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.ir.interp import Machine

SOURCE = """
    long counter = 10;
    long flags = 3;
    long color(blue) secret = 99;

    entry long main() {
        counter = counter + 5;
        flags = flags * 2;
        return counter + flags;
    }
"""


def test_uncolored_globals_are_packed():
    module = compile_source(SOURCE)
    block, packed = rewrite_shared_globals(module)
    assert set(packed) == {"counter", "flags"}
    assert "counter" not in module.globals
    assert SHARED_BLOCK in module.globals
    # The colored global stays a first-class symbol (it lives inside
    # its enclave, where symbol resolution works).
    assert "secret" in module.globals


def test_rewritten_module_verifies_and_runs_identically():
    plain = Machine(compile_source(SOURCE))
    expected = plain.run_function("main")
    module = compile_source(SOURCE)
    rewrite_shared_globals(module)
    verify_module(module)
    assert Machine(module).run_function("main") == expected == 21


def test_initializers_survive_packing():
    module = compile_source(SOURCE)
    block, _ = rewrite_shared_globals(module)
    machine = Machine(module)
    base = machine.global_address(block)
    assert machine.memory.read(base) == 10       # counter
    assert machine.memory.read(base + 1) == 3    # flags


def test_string_constants_not_packed():
    module = compile_source("""
        long x = 1;
        entry long main() {
            printf("hello %d\\n", x);
            return x;
        }
    """)
    _, packed = rewrite_shared_globals(module)
    assert packed == ["x"]
    machine = Machine(module)
    assert machine.run_function("main") == 1
    assert machine.stdout == "hello 1\n"


def test_arrays_pack_with_correct_offsets():
    module = compile_source("""
        long header = 7;
        long table[4];
        long footer = 9;
        entry long main() {
            for (long i = 0; i < 4; i++) table[i] = i * 10;
            return header + table[3] + footer;
        }
    """)
    rewrite_shared_globals(module)
    assert Machine(module).run_function("main") == 7 + 30 + 9
