"""The placement layer: partition graph, policies, verifiers,
profile round trip, and the differential safety rail.

The invariant under test everywhere: a placement policy may only touch
color-neutral protocol instructions (barrier tokens).  Secret-typed
code never changes modules, and every optimized partition behaves
byte-identically to the unoptimized one on every interpreter engine.
"""

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import PrivagicCompiler, compile_and_partition
from repro.core.placement import (
    KLPolicy,
    NonePolicy,
    PlacementDecisions,
    ProfilePolicy,
    format_partition_stats,
    load_profile,
    optimize_placement,
    partition_stats,
    placement_report,
    policy_by_name,
    profile_from_runtime,
    save_profile,
    verify_decisions,
    verify_placement,
)
from repro.core.analysis import location_color
from repro.core.colors import is_named
from repro.errors import PlacementError
from repro.ir.instructions import Call, Load, Store
from repro.ir.module import Function
from repro.ir.values import GlobalVariable
from repro.runtime import run_partitioned

ENGINES = ("decoded", "traced", "legacy")

#: The paper's Figure 6 running example: g@blue and g@red host no
#: visible effects (the printf's barrier home is the untrusted
#: chunk), so both are legal barrier-elision targets.
FIG6 = """
    int unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        blue_g = n;
        red_g = n;
        printf("Hello\\n");
    }

    int f(int y) {
        g(21);
        return 42;
    }

    entry int main() {
        unsafe_g = 1;
        int x = f(blue_g);
        return x;
    }
"""

TOKEN_CALLS = ("__privagic_token_send", "__privagic_token_recv")


def _compile(optimize=None, profile=None):
    compiler = PrivagicCompiler(RELAXED, optimize=optimize,
                                profile=profile)
    program = compiler.compile_source(FIG6)
    return compiler, program


@pytest.fixture(scope="module")
def none_arm():
    return _compile()


@pytest.fixture(scope="module")
def kl_arm():
    return _compile(optimize="kl")


# -- the partition graph -------------------------------------------------------


def test_graph_nodes_carry_color_constraints(kl_arm):
    graph = kl_arm[0].context.placement_graph
    assert graph.specs()
    pinned = [node for node in graph.nodes.values() if node.pinned]
    movable = [node for node in graph.nodes.values() if not node.pinned]
    # fig7 has both: the untrusted chunk hosts the printf (pinned),
    # the enclave chunks of g host only colored stores (movable).
    assert pinned and movable
    for node in pinned:
        assert node.effects > 0
    assert any(edge.kind == "token" for edge in graph.edges)
    for edge in graph.edges:
        assert edge.count > 0 and edge.cycles > 0


def test_enclave_edges_cost_more_than_untrusted_ones(kl_arm):
    graph = kl_arm[0].context.placement_graph
    crossing = [e for e in graph.edges if e.crosses_enclave]
    flat = [e for e in graph.edges if not e.crosses_enclave]
    assert crossing, "fig7 traffic must cross into the enclaves"
    if flat:
        assert (min(e.cycles / e.count for e in crossing)
                > max(e.cycles / e.count for e in flat))


# -- policy lookup -------------------------------------------------------------


def test_policy_by_name_resolves_each_policy():
    assert isinstance(policy_by_name("none"), NonePolicy)
    assert isinstance(policy_by_name(" KL "), KLPolicy)
    assert isinstance(policy_by_name("profile", profile={"channels": {}}),
                      ProfilePolicy)


def test_unknown_policy_gets_a_did_you_mean_hint():
    with pytest.raises(PlacementError, match="did you mean 'kl'"):
        policy_by_name("k1")
    with pytest.raises(PlacementError, match="choose from: none, kl"):
        policy_by_name("simulated-annealing")


def test_profile_policy_requires_measured_traffic():
    with pytest.raises(PlacementError, match="--profile-out"):
        policy_by_name("profile")


# -- the none policy is bit-identical ------------------------------------------


def test_none_policy_is_bit_identical_to_no_optimizer(none_arm):
    _, baseline = none_arm
    _, program = _compile(optimize="none")
    assert program.chunk_colors == baseline.chunk_colors
    for color in baseline.colors:
        assert program.modules[color].instruction_count() == \
            baseline.modules[color].instruction_count()
    for engine in ENGINES:
        result_a, rt_a = run_partitioned(baseline, "main",
                                         engine=engine)
        result_b, rt_b = run_partitioned(program, "main",
                                         engine=engine)
        assert (result_a, rt_a.machine.stdout, rt_a.stats.messages) \
            == (result_b, rt_b.machine.stdout, rt_b.stats.messages)


# -- the kl policy: measurable and safe ----------------------------------------


def test_kl_cuts_messages_20pct_with_identical_behavior(none_arm,
                                                        kl_arm):
    _, baseline = none_arm
    compiler, program = kl_arm
    assert compiler.context.placement.moves > 0
    for engine in ENGINES:
        result_a, rt_a = run_partitioned(baseline, "main",
                                         engine=engine)
        result_b, rt_b = run_partitioned(program, "main",
                                         engine=engine)
        assert result_b == result_a == 42
        assert rt_b.machine.stdout == rt_a.machine.stdout == "Hello\n"
        reduction = 100.0 * (rt_a.stats.messages
                             - rt_b.stats.messages) \
            / rt_a.stats.messages
        assert reduction >= 20.0, (
            f"{engine}: kl reduced messages only {reduction:.1f}%")


def _colored_accesses(program):
    """Every load/store through a colored global, tagged with the
    module it lives in — the footprint of the secret-typed code."""
    accesses = []
    for color, module in sorted(program.modules.items()):
        for fn in module.defined_functions():
            for instr in fn.instructions():
                if not isinstance(instr, (Load, Store)):
                    continue
                pointer = instr.ptr
                if not isinstance(pointer, GlobalVariable):
                    continue
                home = location_color(pointer.value_type, program.mode)
                if is_named(home):
                    accesses.append((color, type(instr).__name__,
                                     pointer.name))
    return sorted(accesses)


def _census(program):
    """Per-module instruction counts, split into barrier-token calls
    and everything else."""
    tokens, others = {}, {}
    for color, module in sorted(program.modules.items()):
        for fn in module.defined_functions():
            for instr in fn.instructions():
                callee = getattr(instr, "callee", None) \
                    if isinstance(instr, Call) else None
                name = callee.name if isinstance(callee, Function) \
                    else ""
                bucket = tokens if name in TOKEN_CALLS else others
                bucket[color] = bucket.get(color, 0) + 1
    return tokens, others


def test_secret_typed_code_is_never_relocated(none_arm, kl_arm):
    """The dedicated relocation test: between none and kl, every
    colored-global access stays in exactly the same module, and the
    only per-module instruction delta is elided barrier tokens."""
    _, baseline = none_arm
    _, optimized = kl_arm
    assert _colored_accesses(optimized) == _colored_accesses(baseline)
    base_tokens, base_others = _census(baseline)
    opt_tokens, opt_others = _census(optimized)
    assert opt_others == base_others
    assert sum(opt_tokens.values()) < sum(base_tokens.values())
    for color, count in opt_tokens.items():
        assert count <= base_tokens.get(color, 0)
    verify_placement(optimized)
    verify_placement(baseline)


# -- decision verification -----------------------------------------------------


def test_verify_decisions_rejects_unknown_chunks(none_arm):
    compiler, _ = none_arm
    _, graph, _ = optimize_placement(compiler.analysis, "none")
    bogus = PlacementDecisions(
        policy="kl",
        barrier_exempt={"no_such_spec": frozenset({"blue"})})
    with pytest.raises(PlacementError, match="unknown chunk"):
        verify_decisions(graph, bogus)


def test_verify_decisions_refuses_to_silence_effects(none_arm):
    compiler, _ = none_arm
    _, graph, _ = optimize_placement(compiler.analysis, "none")
    pinned = [key for key, node in graph.nodes.items() if node.pinned]
    assert pinned
    spec, color = pinned[0]
    bogus = PlacementDecisions(
        policy="kl", barrier_exempt={spec: frozenset({color})})
    with pytest.raises(PlacementError, match="visible effect"):
        verify_decisions(graph, bogus)


# -- profile round trip --------------------------------------------------------


def test_profile_round_trip_matches_kl(tmp_path, none_arm, kl_arm):
    """Measured-traffic loop: a profile captured from the unoptimized
    run drives the profile policy to the same elisions kl finds
    statically on fig7."""
    _, baseline = none_arm
    _, runtime = run_partitioned(baseline, "main")
    path = str(tmp_path / "profile.json")
    save_profile(path, profile_from_runtime(runtime))
    profile = load_profile(path)
    assert profile["version"] == 1 and profile["channels"]
    compiler, program = _compile(optimize="profile", profile=profile)
    kl_compiler, _ = kl_arm
    assert compiler.context.placement.barrier_exempt == \
        kl_compiler.context.placement.barrier_exempt
    result, rt = run_partitioned(program, "main")
    assert (result, rt.machine.stdout) == (42, "Hello\n")


def test_load_profile_rejects_non_profiles(tmp_path):
    path = tmp_path / "bogus.json"
    path.write_text("{\"not\": \"a profile\"}\n")
    with pytest.raises(PlacementError, match="not a placement profile"):
        load_profile(str(path))


# -- reporting -----------------------------------------------------------------


def test_placement_report_shows_the_savings(kl_arm):
    compiler, _ = kl_arm
    report = compiler.context.placement_report
    assert report["policy"] == "kl"
    assert report["decisions"]["moves"] > 0
    assert report["modeled_cost_cycles"]["kl"] < \
        report["modeled_cost_cycles"]["none"]
    assert report["modeled_savings_pct"] > 0
    assert report["static_messages"]["token"] > 0


def test_partition_stats_table(none_arm):
    _, program = none_arm
    rows = partition_stats(program)
    by_color = {row["color"]: row for row in rows}
    assert set(by_color) == set(program.colors)
    untrusted = by_color[program.untrusted]
    assert not untrusted["enclave"]
    assert untrusted["tcb_instructions"] == 0
    enclaves = [row for row in rows if row["enclave"]]
    assert enclaves and all(row["tcb_instructions"] > 0
                            for row in enclaves)
    text = format_partition_stats(rows)
    assert "color" in text and "tcb" in text
    for color in program.colors:
        assert color in text
