"""Table 3, rule by rule.

Each test drives exactly one typing rule through minimal programs:
the accepting side and every rejecting side the paper names.
"""

import pytest

from repro.core import analyze_module
from repro.core.colors import HARDENED, RELAXED, S, U, F
from repro.errors import SecureTypeError
from repro.frontend import compile_source


def analyze(source, mode=HARDENED, check=True):
    return analyze_module(compile_source(source), mode, check=check)


def rejects(source, rule, mode=HARDENED):
    with pytest.raises(SecureTypeError) as excinfo:
        analyze(source, mode)
    assert excinfo.value.rule == rule, excinfo.value
    return excinfo.value


# -- Rule 1: r = load p --------------------------------------------------------------


def test_rule1_load_gives_register_the_location_color():
    result = analyze("""
        long color(blue) g = 7;
        long color(blue) h = 0;
        entry void f() { h = g; }
    """)
    fa = result.functions[result.entry_specs["f"]]
    loads = [i for i in fa.fn.instructions() if i.opcode == "load"]
    assert fa.reg_colors[loads[0]] == "blue"


def test_rule1_load_from_s_yields_free_register():
    # Table 2: S "becomes F when loaded".
    result = analyze("""
        long shared = 1;
        long color(blue) sink = 0;
        entry void f() { sink = shared; }
    """, mode=RELAXED)
    fa = result.functions[result.entry_specs["f"]]
    loads = [i for i in fa.fn.instructions() if i.opcode == "load"]
    shared_load = [l for l in loads
                   if fa.inst_colors.get(l) == S]
    assert shared_load
    assert fa.reg_colors.get(shared_load[0], F) == F


def test_rule1_load_from_u_stays_u_in_hardened_mode():
    rejects("""
        long unsafe_in = 1;
        long color(blue) sink = 0;
        entry void f() { sink = sink + unsafe_in; }
    """, "op", HARDENED)


# -- Rule 2: r = op(x1..xn) -------------------------------------------------------------


def test_rule2_output_takes_input_color():
    result = analyze("""
        long color(red) a = 1;
        long color(red) b = 0;
        entry void f() { b = a * 3 + 1; }
    """)
    fa = result.functions[result.entry_specs["f"]]
    assert fa.color_set == {"red"}


def test_rule2_two_colors_rejected():
    rejects("""
        long color(red) r = 1;
        long color(blue) b = 2;
        long color(red) out = 0;
        entry void f() { out = r + b; }
    """, "op")


# -- Rule 3: store r, p -------------------------------------------------------------------


def test_rule3_store_into_same_color_ok():
    assert not analyze("""
        long color(red) a = 1;
        long color(red) b = 0;
        entry void f() { b = a; }
    """).errors


def test_rule3_store_colored_into_unsafe_rejected():
    error = rejects("""
        long color(red) secret = 1;
        long out = 0;
        entry void f() { out = secret; }
    """, "store")
    assert set(error.colors) == {"red", U}


def test_rule3_store_unsafe_into_colored_rejected_hardened():
    # Integrity + Iago: a U value cannot be stored into red memory.
    rejects("""
        long input = 1;
        long color(red) state = 0;
        entry void f() { state = input; }
    """, "store", HARDENED)


def test_rule3_free_value_into_colored_ok():
    assert not analyze("""
        long color(red) state = 0;
        entry void f() { state = 42; }
    """).errors


# -- Rule 4: block coloring (see test_block_coloring.py for depth) ---------------------------


def test_rule4_store_in_colored_block_rejected():
    rejects("""
        long color(blue) b = 0;
        long x = 0;
        entry void f() { if (b == 42) x = 1; }
    """, "block-color")


# -- pointer rules (fourth confidentiality rule of §4) ----------------------------------------


def test_pointer_to_colored_memory_is_colored():
    # Storing &uncolored into a pointer-to-blue location fails (at the
    # implicit pointer conversion or at the store).
    with pytest.raises(SecureTypeError) as excinfo:
        analyze("""
            long color(blue) a = 0;
            long b = 0;
            long color(blue)* p;
            entry void f() { p = &b; }
        """)
    assert excinfo.value.rule in ("store", "cast")


def test_pointer_cast_cannot_recolor():
    rejects("""
        long color(blue) a = 0;
        entry void f() {
            long color(red)* q = (long color(red)*) &a;
            *q = 5;
        }
    """, "cast")


def test_pointer_cast_to_opaque_keeps_color():
    # &blue as i8* (memcpy-style) keeps the blue register color: the
    # within call is placed in blue and typing succeeds.
    assert not analyze("""
        long color(blue) a = 0;
        long color(blue) c = 0;
        entry void f() {
            memcpy(&c, &a, 1);
        }
    """).errors


# -- calls ---------------------------------------------------------------------------------------


def test_external_call_argument_must_be_untrusted():
    rejects("""
        extern void send(long v);
        long color(red) secret = 1;
        entry void f() { send(secret); }
    """, "external-arg")


def test_within_call_mixing_colors_rejected():
    rejects("""
        within void combine(long a, long b);
        long color(red) r = 1;
        long color(blue) b = 2;
        entry void f() { combine(r, b); }
    """, "within-arg")


def test_within_call_pointer_to_other_enclave_rejected():
    with pytest.raises(SecureTypeError) as excinfo:
        analyze("""
            long color(red) r = 1;
            long color(blue) b = 2;
            entry void f() { memcpy(&r, &b, 1); }
        """)
    # Caught either as mixed within arguments (the pointer registers
    # carry their pointee colors) or by the §6.3 pointee check.
    assert excinfo.value.rule in ("within-arg", "within-ptr")


def test_specialization_keeps_colors_apart():
    result = analyze("""
        long color(red) r = 1;
        long color(blue) b = 2;
        long dup(long v) { return v + v; }
        entry void f() {
            r = dup(r);
            b = dup(b);
        }
    """)
    assert result.functions["dup$red"].return_color == "red"
    assert result.functions["dup$blue"].return_color == "blue"


def test_return_color_mismatch_rejected():
    rejects("""
        long color(red) r = 1;
        long color(blue) b = 2;
        long pick(long which) {
            if (which) return r;
            return b;
        }
        entry void f() { pick(1); }
    """, "ret")


# -- stabilizing algorithm (§5.2) -------------------------------------------------------------------


def test_loop_carried_colors_stabilize():
    result = analyze("""
        long color(red) total = 0;
        entry void f() {
            for (int i = 0; i < 8; i++)
                total = total + i;
        }
    """)
    assert not result.errors
    assert result.passes >= 2  # at least one re-analysis pass


def test_recursive_function_stabilizes():
    result = analyze("""
        long color(red) acc = 0;
        long down(long n) {
            if (n <= 0) return 0;
            acc = acc + n;
            return down(n - 1);
        }
        entry void f() { down(5); }
    """)
    assert not result.errors
