"""Secure type system tests built from the paper's own examples."""

import pytest

from repro.core import analyze_module
from repro.core.analysis import AnalysisResult, location_color
from repro.core.colors import F, HARDENED, RELAXED, S, U
from repro.errors import SecureTypeError
from repro.frontend import compile_source


def analyze(source: str, mode: str = HARDENED, check: bool = True,
            entries=None) -> AnalysisResult:
    module = compile_source(source)
    return analyze_module(module, mode, entries=entries, check=check)


# -- Figure 3b: hidden pointer modification ---------------------------------------

FIG3_SOURCE = """
    int color(blue) a;
    int b;
    int color(blue)* x;

    void f(int color(blue) s) {
        x = &a;
        *x = s;
    }

    void g() {
        x = &b;   /* FAIL: &b is a pointer to uncolored memory */
    }

    entry int main() {
        f(42);
        g();
        return 0;
    }
"""


def test_fig3_secure_typing_rejects_uncolored_pointer():
    with pytest.raises(SecureTypeError) as excinfo:
        analyze(FIG3_SOURCE)
    # `&b` is a pointer to an uncolored location: rejected either at
    # the implicit pointer conversion (cast) or at the store.
    assert excinfo.value.rule in ("store", "cast")
    assert set(excinfo.value.colors) == {"blue", U}


def test_fig3_correctly_colored_variant_passes():
    source = FIG3_SOURCE.replace("int b;", "int color(blue) b;")
    result = analyze(source)
    assert not result.errors
    f_spec = result.functions[result.entry_specs["main"]]
    assert "blue" in result.all_colors()


# -- Figure 4: implicit indirect leak -----------------------------------------------

FIG4_SOURCE = """
    int x = 0;
    int y = 0;
    int color(blue) b;

    entry void f() {
        if (b == 42)
            x = 1;     /* indirect leak: x reveals b == 42 */
        y = 2;          /* after the join: not sensitive */
    }
"""


def test_fig4_implicit_leak_detected():
    with pytest.raises(SecureTypeError) as excinfo:
        analyze(FIG4_SOURCE)
    assert excinfo.value.rule == "block-color"


def test_fig4_join_point_not_colored():
    # Moving the leaking store out of the branch fixes the program:
    # the joining point does not carry sensitive information (§6.1.1).
    source = """
        int color(blue) x = 0;
        int y = 0;
        int color(blue) b;

        entry void f() {
            if (b == 42)
                x = 1;    /* fine: x is blue */
            y = 2;         /* fine: join point */
        }
    """
    result = analyze(source)
    assert not result.errors


# -- direct leaks (Rule 3) -------------------------------------------------------------

def test_direct_leak_store_to_unsafe_global():
    with pytest.raises(SecureTypeError) as excinfo:
        analyze("""
            int color(red) secret;
            int out;
            entry void leak() { out = secret; }
        """)
    assert excinfo.value.rule == "store"


def test_explicit_indirect_leak_through_computation():
    # secret + 1 carries the color of secret (Rule 2); storing it in
    # unsafe memory is rejected.
    with pytest.raises(SecureTypeError):
        analyze("""
            int color(red) secret;
            int out;
            entry void leak() { out = secret + 1; }
        """)


def test_colored_computation_stays_in_enclave():
    result = analyze("""
        int color(red) secret;
        int color(red) derived;
        entry void ok() { derived = secret * 2 + 1; }
    """)
    assert not result.errors
    fa = result.functions[result.entry_specs["ok"]]
    assert fa.color_set == {"red"}


# -- Iago rule (two different colors as inputs) ------------------------------------------

def test_mixing_two_enclave_colors_rejected():
    with pytest.raises(SecureTypeError):
        analyze("""
            int color(red) r;
            int color(blue) b;
            int color(red) out;
            entry void mix() { out = r + b; }
        """)


def test_hardened_mode_rejects_untrusted_input_to_enclave():
    # In hardened mode a value loaded from unsafe memory is U, and a
    # red instruction cannot consume it (Iago protection).
    with pytest.raises(SecureTypeError):
        analyze("""
            int unsafe_input;
            int color(red) out;
            entry void f() { out = out + unsafe_input; }
        """, mode=HARDENED)


def test_relaxed_mode_allows_untrusted_input_to_enclave():
    # In relaxed mode a value loaded from S becomes F and may flow
    # into an enclave — no Iago protection (§6.1.2).
    result = analyze("""
        int unsafe_input;
        int color(red) out;
        entry void f() { out = out + unsafe_input; }
    """, mode=RELAXED)
    assert not result.errors


# -- external calls (§6.3) ------------------------------------------------------------------

def test_external_call_with_colored_argument_rejected():
    with pytest.raises(SecureTypeError) as excinfo:
        analyze("""
            extern void send(int v);
            int color(red) secret;
            entry void f() { send(secret); }
        """)
    assert excinfo.value.rule == "external-arg"


def test_external_call_result_is_untrusted_in_hardened_mode():
    with pytest.raises(SecureTypeError):
        analyze("""
            extern int recv();
            int color(red) secret;
            entry void f() { secret = recv() + secret; }
        """, mode=HARDENED)


def test_within_call_executes_in_enclave():
    result = analyze("""
        int color(red) key;
        int color(red) h;
        entry void f() { h = hash64(key); }
    """)
    assert not result.errors
    fa = result.functions[result.entry_specs["f"]]
    assert fa.color_set == {"red"}


def test_ignore_call_declassifies():
    # hash64 marked ignore: its result is free and may be stored in
    # unsafe memory (the paper's hashmap bucket-index declassification,
    # §9.3.1).
    result = analyze("""
        ignore long hash_declass(long v);
        long color(red) key;
        long bucket;
        entry void f() { bucket = hash_declass(key); }
    """)
    assert not result.errors


# -- specialization (§6.2) ----------------------------------------------------------------------

def test_function_specialized_per_argument_colors():
    result = analyze("""
        int color(blue) bg;
        int color(red) rg;
        int identity(int v) { return v; }
        entry void f() {
            bg = identity(bg);
            rg = identity(rg);
        }
    """)
    assert not result.errors
    specs = {name for name in result.functions if
             name.startswith("identity$")}
    assert specs == {"identity$blue", "identity$red"}
    assert result.functions["identity$blue"].return_color == "blue"
    assert result.functions["identity$red"].return_color == "red"


def test_entry_point_arguments_untrusted_in_hardened_mode():
    result = analyze("""
        entry int main(int argc) { return argc; }
    """, mode=HARDENED)
    spec = result.functions[result.entry_specs["main"]]
    assert spec.arg_colors == (U,)
    result = analyze("""
        entry int main(int argc) { return argc; }
    """, mode=RELAXED)
    spec = result.functions[result.entry_specs["main"]]
    assert spec.arg_colors == (F,)


# -- paper Figure 6 (the running example) ----------------------------------------------------------

FIG6_SOURCE = """
    int color(U) unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        blue_g = n;
        red_g = n;
        printf("Hello\\n");
    }

    int f(int y) {
        g(21);
        return 42;
    }

    entry int main() {
        unsafe_g = 1;
        int x = f(blue_g);
        return x;
    }
"""


def test_fig6_color_sets():
    # Paper §7.3.1: colorset(main) = {blue, U}, colorset(f$blue) =
    # {blue}, colorset(g$F) = {red, blue, U}.
    result = analyze(FIG6_SOURCE, mode=RELAXED)
    assert not result.errors
    by_template = {}
    for name, fa in result.functions.items():
        by_template.setdefault(name.split("$")[0], fa)
    assert by_template["main"].color_set == {"blue", S}
    assert by_template["f"].color_set == {"blue"}
    assert by_template["g"].color_set == {"red", "blue", S}


# -- misc semantics ---------------------------------------------------------------------------------

def test_location_color_derives_pointer_colors():
    from repro.ir.types import IntType, PointerType
    blue_int = IntType(32, "blue")
    assert location_color(blue_int, HARDENED) == "blue"
    assert location_color(PointerType(blue_int), HARDENED) == "blue"
    assert location_color(PointerType(PointerType(blue_int)),
                          HARDENED) == "blue"
    assert location_color(IntType(32), HARDENED) == U
    assert location_color(IntType(32), RELAXED) == S


def test_union_with_two_colors_rejected():
    with pytest.raises(SecureTypeError) as excinfo:
        compile_source("""
            union secret {
                int color(blue) a;
                int color(red) b;
            };
            entry int main() { return 0; }
        """)
    assert excinfo.value.rule == "union"


def test_errors_collected_when_check_false():
    result = analyze("""
        int color(red) secret;
        int out1;
        int out2;
        entry void f() { out1 = secret; out2 = secret; }
    """, check=False)
    assert len(result.errors) >= 2
