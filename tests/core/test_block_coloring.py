"""Rule 4 in depth: implicit indirect leaks through control flow
(paper §4 and §6.1.1, Figure 4)."""

import pytest

from repro.core import analyze_module
from repro.core.colors import HARDENED, RELAXED
from repro.errors import SecureTypeError
from repro.frontend import compile_source


def analyze(source, mode=HARDENED, check=True):
    return analyze_module(compile_source(source), mode, check=check)


def test_then_branch_colored():
    with pytest.raises(SecureTypeError) as excinfo:
        analyze("""
            long color(blue) b = 0;
            long x = 0;
            entry void f() { if (b == 42) x = 1; }
        """)
    assert excinfo.value.rule == "block-color"


def test_else_branch_colored_too():
    with pytest.raises(SecureTypeError):
        analyze("""
            long color(blue) b = 0;
            long x = 0;
            entry void f() {
                if (b == 42) { } else { x = 1; }
            }
        """)


def test_join_point_not_colored():
    # Figure 4's basic block C: "y = 2" after the join is fine.
    assert not analyze("""
        long color(blue) b = 0;
        long color(blue) x = 0;
        long y = 0;
        entry void f() {
            if (b == 42) x = 1;
            y = 2;
        }
    """).errors


def test_nested_same_color_ok():
    assert not analyze("""
        long color(blue) b = 0;
        long color(blue) x = 0;
        entry void f() {
            if (b > 10) {
                if (b > 20) x = 2;
                else x = 1;
            }
        }
    """).errors


def test_nested_different_colors_rejected():
    with pytest.raises(SecureTypeError) as excinfo:
        analyze("""
            long color(blue) b = 0;
            long color(red) r = 0;
            long color(red) x = 0;
            entry void f() {
                if (b > 10) {
                    if (r > 20) x = 2;
                }
            }
        """, check=False).check()
    assert excinfo.value.rule in ("block-color", "op")


def test_phi_merging_region_values_is_colored():
    # `x = b == 42 ? 5 : 7` leaks b through the selected constant:
    # the phi at the join carries the branch color.
    with pytest.raises(SecureTypeError):
        analyze("""
            long color(blue) b = 0;
            long x = 0;
            entry void f() { x = b == 42 ? 5 : 7; }
        """)


def test_colored_ternary_into_colored_target_ok():
    assert not analyze("""
        long color(blue) b = 0;
        long color(blue) x = 0;
        entry void f() { x = b == 42 ? 5 : 7; }
    """).errors


def test_external_call_under_colored_condition_rejected():
    # An observable action (printf) conditioned on blue data reveals
    # the condition.
    with pytest.raises(SecureTypeError) as excinfo:
        analyze("""
            long color(blue) b = 0;
            entry void f() {
                if (b == 42) printf("hit\\n");
            }
        """)
    assert excinfo.value.rule in ("block-color", "external-arg")


def test_colored_loop_body_stays_in_enclave():
    result = analyze("""
        long color(blue) n = 10;
        long color(blue) total = 0;
        entry void f() {
            long color(blue) i = 0;
            while (i < n) {
                total = total + i;
                i = i + 1;
            }
        }
    """)
    assert not result.errors
    fa = result.functions[result.entry_specs["f"]]
    assert fa.color_set == {"blue"}


def test_untrusted_condition_does_not_color_blocks():
    # Branching on untrusted data is the baseline service pattern
    # (DESIGN.md §5b): the request loop may invoke enclave work.
    assert not analyze("""
        long requests = 5;
        long color(blue) counter = 0;
        entry void f() {
            if (requests > 0) counter = counter + 1;
        }
    """, mode=RELAXED).errors


def test_declassified_condition_is_free():
    assert not analyze("""
        ignore long declassify(long v);
        long color(blue) b = 0;
        long x = 0;
        entry void f() {
            long hit = declassify(b == 42);
            if (hit) x = 1;
        }
    """).errors
