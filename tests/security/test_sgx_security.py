"""Security tests under the simulated SGX machine (paper §4).

The attacker fully controls unsafe memory and observes everything
written there; the enclaves are opaque.  These tests drive partitioned
programs under the access policy and check the three guarantees:
confidentiality, integrity/authenticity, and Iago protection.
"""

import pytest

from repro.core.colors import HARDENED, RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import SGXAccessViolation
from repro.ir.interp import UNSAFE_REGION
from repro.runtime import PrivagicRuntime
from repro.sgx import Attacker, SGXAccessPolicy


SECRET = 7340033  # a recognizable sensitive value


def run_partitioned_with_policy(source, mode, entry="main", args=()):
    program = compile_and_partition(source, mode=mode)
    runtime = PrivagicRuntime(program)
    policy = SGXAccessPolicy().attach(runtime.machine)
    result = runtime.run(entry, list(args))
    return result, runtime, policy


CONFIDENTIAL_SOURCE = f"""
    long color(blue) secret = {SECRET};
    long color(blue) derived = 0;
    entry int main() {{
        derived = secret * 2 + 1;
        return 0;
    }}
"""


def test_sgx_policy_allows_clean_partitioned_run():
    result, runtime, policy = run_partitioned_with_policy(
        CONFIDENTIAL_SOURCE, RELAXED)
    assert result == 0
    assert policy.checked_accesses > 0
    assert not policy.denied


def test_secret_never_written_to_unsafe_memory():
    """The attacker observes every write that ever lands in unsafe
    memory during the run; none may carry the secret or any value
    derived from it."""
    program = compile_and_partition(CONFIDENTIAL_SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    SGXAccessPolicy().attach(runtime.machine)
    unsafe_addrs = set()

    def watch(ctx, addr, region, rw):
        if rw == "write" and region == UNSAFE_REGION:
            unsafe_addrs.add(addr)

    runtime.machine.access_hooks.append(watch)
    runtime.run("main")
    attacker = Attacker(runtime.machine)
    assert attacker.scan_for(SECRET) == []
    assert attacker.scan_for(SECRET * 2 + 1) == []
    leaked = {runtime.machine.memory.read(a) for a in unsafe_addrs
              if a in set(attacker.readable_addresses())}
    assert SECRET not in leaked and SECRET * 2 + 1 not in leaked


def test_attacker_cannot_read_enclave():
    result, runtime, policy = run_partitioned_with_policy(
        CONFIDENTIAL_SOURCE, RELAXED)
    attacker = Attacker(runtime.machine)
    with pytest.raises(SGXAccessViolation):
        attacker.try_read_enclave("blue")


def test_attacker_cannot_corrupt_enclave_global():
    result, runtime, policy = run_partitioned_with_policy(
        CONFIDENTIAL_SOURCE, RELAXED)
    attacker = Attacker(runtime.machine)
    with pytest.raises(SGXAccessViolation):
        attacker.corrupt_global("secret", 0)


def test_normal_mode_cannot_touch_enclave_memory():
    """A malicious untrusted chunk (here: hand-driven normal-mode
    context) cannot load enclave memory (paper §2.1)."""
    from repro.frontend import compile_source
    from repro.ir.interp import Machine

    module = compile_source(f"""
        long color(blue) secret = {SECRET};
        entry long steal() {{ return secret; }}
    """)
    machine = Machine(module)
    SGXAccessPolicy().attach(machine)
    ctx = machine.spawn("steal", [], mode=None)  # normal mode
    with pytest.raises(SGXAccessViolation):
        machine.run()


def test_enclave_mode_cannot_touch_other_enclave():
    from repro.frontend import compile_source
    from repro.ir.interp import Machine

    module = compile_source(f"""
        long color(blue) secret = {SECRET};
        entry long steal() {{ return secret; }}
    """)
    machine = Machine(module)
    SGXAccessPolicy().attach(machine)
    machine.spawn("steal", [], mode="red")  # wrong enclave
    with pytest.raises(SGXAccessViolation):
        machine.run()


IAGO_SOURCE = """
    int knob = 4;               /* unsafe memory, attacker-writable */
    int color(blue) state = 10;
    entry int main() {
        state = state + knob;
        return 0;
    }
"""


def test_iago_attack_rejected_in_hardened_mode():
    """In hardened mode, a value loaded from unsafe memory is U and an
    enclave instruction cannot consume it (§5.3): the program does not
    even compile."""
    from repro.errors import SecureTypeError
    with pytest.raises(SecureTypeError):
        compile_and_partition(IAGO_SOURCE, mode=HARDENED)


def test_iago_attack_possible_in_relaxed_mode():
    """In relaxed mode the same program compiles, and a poisoned
    unsafe value does flow into the enclave — the documented gap
    (§6.1.2)."""
    program = compile_and_partition(IAGO_SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    SGXAccessPolicy().attach(runtime.machine)
    attacker = Attacker(runtime.machine)
    attacker.corrupt_global("knob", 1000000)
    runtime.run("main")
    # The enclave consumed the poisoned value.
    blue_state = _read_global(runtime, "state")
    assert blue_state == 10 + 1000000


def test_declassified_value_is_the_only_leak():
    """Declassification through ignore (§6.4) is the only way a blue
    value reaches unsafe memory, and only the declassified value."""
    source = f"""
        ignore long declass(long v);
        long color(blue) secret = {SECRET};
        long out = 0;
        entry int main() {{
            long masked = declass(secret / 1000);
            out = masked;
            return 0;
        }}
    """
    program = compile_and_partition(source, mode=RELAXED)
    runtime = PrivagicRuntime(
        program, {"declass": lambda m, c, a: a[0]})
    SGXAccessPolicy().attach(runtime.machine)
    runtime.run("main")
    attacker = Attacker(runtime.machine)
    assert attacker.scan_for(SECRET) == []          # secret protected
    assert attacker.scan_for(SECRET // 1000) != []  # declassified out


def test_attestation_measurement():
    from repro.sgx import EnclaveManager
    program = compile_and_partition(CONFIDENTIAL_SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    manager = EnclaveManager(runtime.machine, epc_bytes=93 * 1024 * 1024)
    enclave = manager.create("blue", program.modules["blue"])
    assert manager.attest("blue", enclave.measurement)
    assert not manager.attest("blue", "0" * 64)
    assert enclave.code_lines() > 0


def _read_global(runtime, name):
    for module in runtime.machine.modules:
        gv = module.globals.get(name)
        if gv is not None:
            return runtime.machine.memory.read(
                runtime.machine.global_address(gv))
    raise AssertionError(name)
