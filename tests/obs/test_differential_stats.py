"""Differential accounting test: the three counter systems —
``RuntimeStats`` (runtime-side), ``ChannelMatrix.message_stats()``
(channel-side) and the published ``MetricsRegistry`` — must agree on
spawn/value/token totals for the paper's Fig 6/7 run, on both
interpreter engines.  Any drift means one layer is counting protocol
messages differently from the others."""

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.ir.interp import ENGINES
from repro.obs import Observability
from repro.runtime import run_partitioned

from tests.obs.test_trace_schema import FIG7_SOURCE


@pytest.mark.parametrize("engine", ENGINES)
def test_three_counter_systems_agree(engine):
    program = compile_and_partition(FIG7_SOURCE, mode=RELAXED)
    obs = Observability(trace=False)
    result, runtime = run_partitioned(program, "main", engine=engine,
                                      observability=obs)
    assert result == 42

    stats = runtime.stats.as_dict()
    channel = runtime.message_stats()

    # runtime-side vs channel-side
    assert stats["spawns"] == channel["spawn"]
    assert stats["values"] == channel["value"]
    assert stats["tokens"] == channel["token"]
    assert stats["messages"] == channel["total"]
    assert channel["total"] == \
        channel["spawn"] + channel["value"] + channel["token"]

    # published registry vs both
    reg = obs.publish()
    for key, value in stats.items():
        assert reg[f"runtime.{key}"].get() == value
    for kind, value in channel.items():
        assert reg[f"channel.{kind}"].get() == value

    # the per-chunk profile decomposes the runtime totals
    per_chunk = runtime.stats.per_chunk
    assert sum(p["spawns"] for p in per_chunk.values()) == \
        stats["spawns"]
    assert sum(p["trampolines"] for p in per_chunk.values()) == \
        stats["trampoline_runs"]
    # f_args + replies cover the chunk-attributable value messages;
    # compiled __privagic_send calls account for the rest.
    assert sum(p["f_args"] + p["replies"]
               for p in per_chunk.values()) <= stats["values"]


@pytest.mark.parametrize("engine", ENGINES)
def test_engines_agree_with_each_other(engine):
    """Both engines drive the identical protocol: same message totals
    as the decoded reference run."""
    program = compile_and_partition(FIG7_SOURCE, mode=RELAXED)
    _, reference = run_partitioned(program, "main", engine="decoded")
    program2 = compile_and_partition(FIG7_SOURCE, mode=RELAXED)
    _, runtime = run_partitioned(program2, "main", engine=engine)
    assert runtime.stats.as_dict() == reference.stats.as_dict()
    assert runtime.message_stats() == reference.message_stats()
