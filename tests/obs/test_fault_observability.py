"""Fault events flow through the observability layer: injections and
detections land on the tracer's ``faults`` track as schema-valid
Chrome events, and ``publish()`` exposes the ``faults.*`` metrics."""

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import IagoFault
from repro.faults import FaultInjector, FaultPlan
from repro.obs import Observability
from repro.obs.export import trace_event_names, validate_chrome_trace
from repro.runtime.executor import PrivagicRuntime

SOURCE = """
    int color(blue) blue_g = 10;
    void g(int n) { blue_g = n; }
    entry int main() { g(21); return 42; }
"""


@pytest.fixture(scope="module")
def faulted_run():
    """Attach obs + injector by hand (not via run_partitioned) so the
    injector is still wired when publish() snapshots the metrics."""
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    obs = Observability(trace=True, meter=True).attach(runtime)
    injector = FaultInjector(
        FaultPlan.parse("channel-corrupt:*:spawn:1")).attach(runtime)
    with pytest.raises(IagoFault):
        runtime.run("main")
    return obs, injector


def test_fault_events_are_schema_valid(faulted_run):
    obs, _ = faulted_run
    trace = obs.tracer.chrome_trace()
    assert validate_chrome_trace(trace) > 0
    names = trace_event_names(trace)
    assert "inject" in names
    assert "detect" in names
    fault_events = [e for e in trace["traceEvents"]
                    if e.get("cat") == "fault"]
    assert fault_events
    # every fault event is an instant on the faults track with a kind
    for event in fault_events:
        assert event["ph"] == "i"
        assert event["args"]["kind"]


def test_publish_exposes_fault_metrics(faulted_run):
    obs, injector = faulted_run
    reg = obs.publish()
    assert reg["faults.armed"].get() == 1
    assert reg["faults.injected"].get() == injector.injected_total()
    assert reg["faults.detected"].get() == injector.detected_total()
    assert reg["faults.injected[channel-corrupt]"].get() == 1
    # the corrupted spawn was caught by channel authentication
    detected = [name for name in reg.as_dict()
                if name.startswith("faults.detected[")]
    assert detected
