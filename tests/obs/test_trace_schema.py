"""The tracer-attached Fig 6/7 run must produce a loadable Chrome
trace with every event family the ISSUE promises: step bursts, spawns,
trampolines, channel push/pop with queue depths, and cost charges."""

import json

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.obs import Observability, TraceFormatError, Tracer
from repro.obs.export import (
    trace_event_names,
    validate_chrome_trace,
    validate_chrome_trace_file,
)
from repro.runtime import run_partitioned

FIG7_SOURCE = """
    int unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        blue_g = n;
        red_g = n;
        printf("Hello\\n");
    }

    int f(int y) {
        g(21);
        return 42;
    }

    entry int main() {
        unsafe_g = 1;
        int x = f(blue_g);
        return x;
    }
"""


@pytest.fixture(scope="module")
def traced_run():
    program = compile_and_partition(FIG7_SOURCE, mode=RELAXED)
    obs = Observability(trace=True, meter=True)
    result, runtime = run_partitioned(program, "main",
                                      observability=obs)
    return result, runtime, obs


def test_traced_run_still_computes(traced_run):
    result, runtime, obs = traced_run
    assert result == 42
    assert runtime.machine.stdout == "Hello\n"


def test_trace_file_is_valid_chrome_json(traced_run, tmp_path):
    _, _, obs = traced_run
    path = tmp_path / "trace.json"
    obs.write_trace(str(path))
    with open(path) as handle:
        trace = json.load(handle)
    assert validate_chrome_trace(trace) > 0
    assert validate_chrome_trace_file(str(path)) == \
        len(trace["traceEvents"])
    assert trace["displayTimeUnit"] == "ms"


def test_trace_contains_every_event_family(traced_run):
    _, _, obs = traced_run
    trace = obs.tracer.chrome_trace()
    names = trace_event_names(trace)
    assert "spawn" in names
    assert "trampoline" in names
    assert "push" in names
    assert "pop" in names
    assert "cost.cycles" in names
    assert any(n.startswith("depth ") for n in names)
    # step bursts are complete ("X") events with a step count
    bursts = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    assert bursts and all(e["args"]["steps"] > 0 for e in bursts)
    # every worker track got a thread_name metadata event
    assert "thread_name" in names


def test_detach_restores_fast_path(traced_run):
    _, runtime, obs = traced_run
    machine = runtime.machine
    assert runtime.tracer is None
    assert machine.tracer is None
    assert not machine.access_hooks
    for group in runtime._groups.values():
        assert group.matrix.tracer is None
        assert all(ch.tracer is None
                   for ch in group.matrix.channels.values())
    # the meter's observer is unwired too
    assert obs.meter is not None
    assert obs.meter.meter._observer is None


def test_detached_tracer_records_nothing_new(traced_run):
    _, _, obs = traced_run
    before = len(obs.tracer)
    program = compile_and_partition(FIG7_SOURCE, mode=RELAXED)
    run_partitioned(program, "main")  # unobserved run
    assert len(obs.tracer) == before


def test_validator_rejects_malformed_events():
    good = Tracer()
    good.spawn("g$F@red", "blue", "red", 1)
    trace = good.chrome_trace()
    validate_chrome_trace(trace)

    with pytest.raises(TraceFormatError):
        validate_chrome_trace([])  # wrong root
    with pytest.raises(TraceFormatError):
        validate_chrome_trace({"traceEvents": [{"ph": "X"}]})
    bad_phase = {"name": "x", "ph": "?", "pid": 1, "tid": 1, "ts": 0}
    with pytest.raises(TraceFormatError):
        validate_chrome_trace({"traceEvents": [bad_phase]})
    bad_ts = {"name": "x", "ph": "i", "cat": "runtime",
              "pid": 1, "tid": 1, "ts": -5}
    with pytest.raises(TraceFormatError):
        validate_chrome_trace({"traceEvents": [bad_ts]})
