"""Unit tests for the metrics registry."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.export import metrics_to_json, metrics_to_text


def test_counter_and_gauge_basics():
    reg = MetricsRegistry()
    reg.inc("chunk.spawns[g$F@blue]")
    reg.inc("chunk.spawns[g$F@blue]", 2)
    reg.set("queue.depth", 7)
    assert reg["chunk.spawns[g$F@blue]"].get() == 3
    assert reg["queue.depth"].get() == 7
    assert "queue.depth" in reg
    assert "missing" not in reg


def test_histogram_summary():
    reg = MetricsRegistry()
    for value in (1, 2, 3, 10):
        reg.observe("burst.steps", value)
    hist = reg["burst.steps"]
    assert isinstance(hist, Histogram)
    summary = hist.get()
    assert summary["count"] == 4
    assert summary["min"] == 1
    assert summary["max"] == 10
    assert summary["mean"] == pytest.approx(4.0)


def test_type_mismatch_is_an_error():
    reg = MetricsRegistry()
    reg.inc("x")
    with pytest.raises(TypeError):
        reg.gauge("x")
    with pytest.raises(TypeError):
        reg.observe("x", 1)


def test_get_or_create_returns_same_instrument():
    reg = MetricsRegistry()
    a = reg.counter("a")
    assert reg.counter("a") is a
    assert isinstance(reg.gauge("g"), Gauge)
    assert isinstance(reg.counter("c"), Counter)


def test_as_dict_and_exports_round_trip():
    reg = MetricsRegistry()
    reg.inc("runtime.spawns", 3)
    reg.set("cost.cycles", 123.456)
    reg.observe("h", 2)
    data = json.loads(metrics_to_json(reg))
    assert data["runtime.spawns"] == 3
    assert data["cost.cycles"] == pytest.approx(123.456)
    assert data["h"]["count"] == 1
    text = metrics_to_text(reg)
    assert "runtime.spawns = 3" in text
    # names come out sorted, one per line
    lines = [l.split(" = ")[0] for l in text.splitlines()]
    assert lines == sorted(lines)
