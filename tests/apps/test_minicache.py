"""Tests for minicache: protocol, LRU, server, client, YCSB driving,
and the MiniC twin sources of Table 4."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.minicache import (
    LRUIndex,
    MiniCache,
    MiniCacheClient,
)
from repro.apps.minicache import protocol
from repro.apps.minicache.client import run_ycsb
from repro.apps.minicache.server import WorkerPool
from repro.workloads import Workload, WORKLOAD_B


# -- protocol -----------------------------------------------------------------


def test_protocol_roundtrip_set_get():
    req = protocol.parse_request(protocol.encode_set("k1", b"hello"))
    assert req.command == "set" and req.key == "k1"
    assert req.data == b"hello"
    req = protocol.parse_request(protocol.encode_get("k1"))
    assert req.command == "get" and req.key == "k1"


def test_protocol_value_response():
    text = protocol.encode_value("k", b"abc")
    assert protocol.parse_value_response(text) == b"abc"
    assert protocol.parse_value_response(protocol.END) is None


def test_protocol_errors():
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_request("bogus\r\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_request("set k 0 0 10\r\nshort\r\n")
    with pytest.raises(protocol.ProtocolError):
        protocol.parse_request("get\r\n")


# -- LRU -----------------------------------------------------------------------


def test_lru_eviction_order():
    lru = LRUIndex(capacity_bytes=30)
    assert lru.add("a", 10) == []
    assert lru.add("b", 10) == []
    assert lru.add("c", 10) == []
    lru.touch("a")                       # a is now MRU
    assert lru.add("d", 10) == ["b"]     # b was LRU
    assert lru.lru_order() == ["d", "a", "c"]


def test_lru_replace_updates_size():
    lru = LRUIndex(capacity_bytes=100)
    lru.add("k", 40)
    lru.add("k", 10)
    assert lru.used_bytes == 10
    assert len(lru) == 1


def test_lru_remove():
    lru = LRUIndex(capacity_bytes=100)
    lru.add("k", 10)
    assert lru.remove("k")
    assert not lru.remove("k")
    assert lru.used_bytes == 0


@settings(max_examples=30, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["add", "touch", "rm"]),
                              st.integers(0, 8)), max_size=80))
def test_lru_budget_invariant(ops):
    """Property: the byte budget is never exceeded after an add."""
    lru = LRUIndex(capacity_bytes=50)
    for kind, key in ops:
        if kind == "add":
            lru.add(key, 12)
            assert lru.used_bytes <= 50 or len(lru) == 1
        elif kind == "touch":
            lru.touch(key)
        else:
            lru.remove(key)
        assert len(lru.lru_order()) == len(lru)


# -- server -----------------------------------------------------------------------


def test_cache_set_get_delete():
    cache = MiniCache()
    cache.set("user1", b"v1")
    assert cache.get("user1") == b"v1"
    assert cache.get("nope") is None
    assert cache.delete("user1")
    assert cache.get("user1") is None
    assert cache.stats.sets == 1
    assert cache.stats.gets == 3
    assert cache.stats.hits == 1


def test_cache_eviction_under_pressure():
    cache = MiniCache(capacity_bytes=100)
    for i in range(20):
        cache.set(f"k{i}", b"x" * 20)
    assert cache.stats.evictions > 0
    assert len(cache) < 20
    # The most recent key survived.
    assert cache.get("k19") == b"x" * 20


def test_protocol_endpoint():
    cache = MiniCache()
    assert cache.handle(protocol.encode_set("a", b"1")) == \
        protocol.STORED
    assert protocol.parse_value_response(
        cache.handle(protocol.encode_get("a"))) == b"1"
    assert cache.handle(protocol.encode_delete("a")) == protocol.DELETED
    assert cache.handle(protocol.encode_delete("a")) == \
        protocol.NOT_FOUND
    assert cache.handle("junk\r\n") == protocol.ERROR
    assert cache.stats.bad_requests == 1


@pytest.mark.parametrize("raw", [
    "",                                   # empty input
    "\r\n",                               # empty line
    "get\r\n",                            # missing key
    "get a b\r\n",                        # too many keys
    "set k 0 0 abc\r\nxxx\r\n",           # non-numeric byte count
    "set k 0 0 -3\r\n\r\n",               # negative byte count
    "set k x 0 1\r\na\r\n",               # non-numeric flags
    "set k 0 0 10\r\nshort\r\n",          # size/data mismatch
    "set k 0 0\r\n",                      # wrong arity
    "set " + "k" * 300 + " 0 0 1\r\na\r\n",   # oversized key
    "set k 0 0 %d\r\n%s\r\n" % (protocol.MAX_DATA_BYTES + 1,
                                "x" * 8),     # oversized data claim
    "set k 0 0 1\r\n€\r\n",          # non-latin-1 data
    "delete\r\n",                         # missing key
    "flush_all\r\n",                      # unsupported command
])
def test_handle_never_crashes_on_malformed_input(raw):
    """Every malformed request is an ERROR reply, not an exception —
    the cache sits behind a socket and must survive arbitrary bytes."""
    cache = MiniCache()
    assert cache.handle(raw) == protocol.ERROR
    assert cache.stats.bad_requests == 1
    # And the cache still works afterwards.
    assert cache.handle(protocol.encode_set("ok", b"v")) == \
        protocol.STORED


def test_handle_key_and_data_at_the_limits_are_accepted():
    cache = MiniCache(capacity_bytes=4 * protocol.MAX_DATA_BYTES)
    key = "k" * protocol.MAX_KEY_BYTES
    data = b"d" * protocol.MAX_DATA_BYTES
    assert cache.handle(protocol.encode_set(key, data)) == \
        protocol.STORED
    assert protocol.parse_value_response(
        cache.handle(protocol.encode_get(key))) == data
    assert cache.stats.bad_requests == 0


def test_worker_pool_round_robin():
    cache = MiniCache()
    pool = WorkerPool(cache, workers=3)
    for i in range(9):
        pool.submit(protocol.encode_set(f"k{i}", b"v"))
    assert pool.per_worker_requests == [3, 3, 3]
    assert pool.total_requests == 9


def test_ycsb_drives_the_cache():
    cache = MiniCache()
    pool = WorkerPool(cache, workers=6)
    client = MiniCacheClient(pool.submit)
    workload = Workload(WORKLOAD_B, record_count=50,
                        operation_count=500, seed=9)
    counters = run_ycsb(client, workload)
    assert counters["read"] + counters["update"] == 500
    assert counters["hits"] > 0
    assert cache.stats.gets >= counters["read"]


# -- the MiniC twin (Table 4 subject) -----------------------------------------------


def test_minic_sources_agree_functionally():
    from repro.apps.minicache.minic_source import (
        ANNOTATED_SOURCE, DECLASSIFY_EXTERNALS, PRISTINE_SOURCE)
    from repro.core.compiler import compile_and_partition
    from repro.frontend import compile_source
    from repro.ir.interp import Machine
    from repro.runtime import PrivagicRuntime
    from repro.sgx import SGXAccessPolicy

    machine = Machine(compile_source(PRISTINE_SOURCE))
    expected = machine.run_function("run_cache", [40])
    program = compile_and_partition(ANNOTATED_SOURCE, mode="hardened")
    runtime = PrivagicRuntime(program, DECLASSIFY_EXTERNALS,
                              max_steps=30_000_000)
    SGXAccessPolicy().attach(runtime.machine)
    assert runtime.run("run_cache", [40]) == expected
    assert runtime.stats.spawns > 0


def test_minic_modified_lines_is_modest():
    """§9.2.1: the Privagic port of memcached modifies 9 lines; our
    minicache port stays in the same ballpark (< 20)."""
    from repro.apps.minicache.minic_source import modified_lines
    count, lines = modified_lines()
    assert 9 <= count <= 20
    assert any("color(store)" in l for l in lines)
    assert any("declassify" in l for l in lines)
