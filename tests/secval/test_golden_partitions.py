"""Byte-identity gate for the secure-value refactor.

The MiniC driver now lowers through :mod:`repro.secval`; these golden
digests pin the exact partitioned-IR bytes for the two reference
workloads, so any refactor of the contract layer (or any
nondeterminism creeping back into the pipeline — see the mem2reg
layout-ordering fix) shows up as a digest change here.
"""

import hashlib
import os

from repro.apps.minicache.minic_source import ANNOTATED_SOURCE
from repro.core.compiler import compile_and_partition
from repro.ir.printer import print_module

FIG7_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "fig7.c")

FIG7_RELAXED_DIGEST = \
    "324f3c0567ecaffb9dafc7e28c4c114d120c80a2159746a73ed2175db269709d"
MINICACHE_HARDENED_DIGEST = \
    "933a47697ff5af0bab1247936091e03c79fbe92d07a16de57d67d458b8de15fc"


def partition_digest(program) -> str:
    text = "\n".join(f"== {color} ==\n"
                     + print_module(program.modules[color])
                     for color in sorted(program.modules))
    return hashlib.sha256(text.encode()).hexdigest()


def test_fig7_relaxed_partition_is_byte_identical():
    with open(FIG7_PATH) as handle:
        program = compile_and_partition(handle.read(), mode="relaxed")
    assert partition_digest(program) == FIG7_RELAXED_DIGEST


def test_minicache_hardened_partition_is_byte_identical():
    program = compile_and_partition(ANNOTATED_SOURCE, mode="hardened")
    assert partition_digest(program) == MINICACHE_HARDENED_DIGEST


def test_partition_is_deterministic_within_a_process():
    # Two fresh compilations must agree byte for byte (the phi naming
    # of mem2reg is ordered by block layout, not by set iteration).
    first = compile_and_partition(ANNOTATED_SOURCE, mode="hardened")
    second = compile_and_partition(ANNOTATED_SOURCE, mode="hardened")
    assert partition_digest(first) == partition_digest(second)
