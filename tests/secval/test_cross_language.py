"""Cross-language composition and MiniC/MiniPy equivalence.

The contract's promise: a semantically equivalent program produces
the same partitioned behavior no matter which frontend (or mix of
frontends) lowered it — identical results, identical stdout and
identical message counts on every engine.
"""

import pytest

from repro.core.compiler import PrivagicCompiler, compile_and_partition
from repro.errors import FrontendError
from repro.ir.interp import ENGINES
from repro.runtime.executor import run_partitioned
from repro.secval import (
    colored_accesses,
    compile_cross,
    confinement_violations,
)

# A semantically equivalent pair: a blue secret accumulated in a
# loop, declassified modulo 100, published through an uncolored
# global.
MINIC_SOURCE = """\
long color(blue) secret = 41;
long out = 0;

ignore long declass(long v) { return v; }

entry long main() {
    long i = 0;
    long total = 0;
    while (i < 5) {
        total = total + secret;
        i = i + 1;
    }
    out = declass(total % 100);
    return out;
}
"""

MINIPY_SOURCE = """\
secret = secure("blue", 41)
out = public(0)

@ignore
def declass(v):
    return v

@entry
def main():
    i = 0
    total = 0
    while i < 5:
        total = total + secret
        i += 1
    out = declass(total % 100)
    return out
"""


@pytest.mark.parametrize("mode", ["hardened", "relaxed"])
def test_equivalent_minic_and_minipy_behave_identically(mode):
    c_prog = compile_and_partition(MINIC_SOURCE, mode=mode)
    py_prog = compile_and_partition(MINIPY_SOURCE, mode=mode,
                                    frontend="minipy")
    assert sorted(c_prog.modules) == sorted(py_prog.modules)
    for engine in ENGINES:
        c_result, c_rt = run_partitioned(c_prog, "main", engine=engine)
        py_result, py_rt = run_partitioned(py_prog, "main",
                                           engine=engine)
        assert c_result == py_result == 5
        assert c_rt.machine.stdout == py_rt.machine.stdout
        assert c_rt.stats.messages == py_rt.stats.messages, engine


@pytest.mark.parametrize("mode", ["hardened", "relaxed"])
def test_minipy_secret_code_is_confined_to_its_enclave(mode):
    program = compile_and_partition(MINIPY_SOURCE, mode=mode,
                                    frontend="minipy")
    census = colored_accesses(program)
    assert census, "no colored access found — census is vacuous"
    assert all(color == "blue" for color, _, _ in census)
    assert confinement_violations(program) == []


def test_cross_language_minipy_drives_minic():
    minic = """\
        long color(vault) balance = 1000;
        ignore long audit(long v) { return v % 100; }
        long deposit(long amount) {
            balance = balance + amount;
            return audit(balance);
        }
        int fee_schedule(int tier) { return tier * 3 + 1; }
    """
    minipy = """\
@entry
def main():
    day = 0
    last = 0
    while day < 3:
        last = deposit(100 + fee_schedule(day))
        day += 1
    return last
"""
    module = compile_cross([("minic", minic, "vault.c"),
                            ("minipy", minipy, "workload.mpy")],
                           module_name="vault")
    program = PrivagicCompiler(mode="relaxed").compile_module(module)
    assert confinement_violations(program) == []
    results = set()
    for engine in ENGINES:
        result, _ = run_partitioned(program, "main", engine=engine)
        results.add(result)
    # 1000 + 101 + 104 + 107 = 1312; audit keeps the last two digits.
    assert results == {12}


def test_cross_language_string_names_do_not_collide():
    module = compile_cross([
        ("minic", 'long f() { return (long) strlen("abc"); }', "a.c"),
        ("minipy", '@entry\ndef main():\n    return f() + '
                   'strlen("defg")\n', "b.mpy"),
    ])
    program = PrivagicCompiler(mode="relaxed").compile_module(module)
    result, _ = run_partitioned(program, "main")
    assert result == 7
    names = {n for n in program.modules[program.untrusted].globals
             if n.startswith(".str")}
    assert len(names) == 2


def test_compile_cross_rejects_an_empty_unit_list():
    with pytest.raises(FrontendError, match="at least one unit"):
        compile_cross([])
