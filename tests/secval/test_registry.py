"""The frontend registry and the shared lowering contract surface."""

import pytest

from repro.errors import FrontendError
from repro.secval import (
    ANNOTATIONS,
    BUILTIN_SIGNATURES,
    WITHIN_BUILTINS,
    Frontend,
    FRONTENDS,
    auto_declare_builtin,
    declassifiers,
    detect_frontend,
    effect_facts,
    frontend_by_name,
    frontend_names,
    register_frontend,
    resolve_frontend,
    secure_globals,
    validate_annotation,
)
from repro.ir import Module


# -- names and did-you-mean ----------------------------------------------------


def test_both_builtin_frontends_are_registered():
    assert frontend_names() == ("minic", "minipy")


def test_lookup_is_case_insensitive_and_trimmed():
    assert frontend_by_name(" MiniC ").name == "minic"
    assert frontend_by_name("MINIPY").name == "minipy"


def test_unknown_frontend_gets_a_did_you_mean_hint():
    with pytest.raises(FrontendError, match="did you mean 'minipy'"):
        frontend_by_name("minipi")
    with pytest.raises(FrontendError, match="choose from: minic, minipy"):
        frontend_by_name("rust")


def test_duplicate_registration_is_rejected():
    with pytest.raises(FrontendError, match="already registered"):
        register_frontend(Frontend("minic", "dup", (".zz",), "x"))
    with pytest.raises(FrontendError, match="already claimed"):
        register_frontend(Frontend("other", "dup ext", (".mpy",), "x"))
    assert "other" not in FRONTENDS


# -- extension detection -------------------------------------------------------


@pytest.mark.parametrize("path,expected", [
    ("prog.c", "minic"),
    ("prog.mc", "minic"),
    ("prog.minic", "minic"),
    ("prog.MPY", "minipy"),
    ("dir/prog.minipy", "minipy"),
    ("no_extension", "minic"),     # historic default
    ("weird.xyz", "minic"),
])
def test_extension_detection(path, expected):
    assert detect_frontend(path).name == expected


def test_explicit_name_beats_the_extension():
    assert resolve_frontend("minipy", "prog.c").name == "minipy"
    assert resolve_frontend(None, "prog.mpy").name == "minipy"


# -- annotation vocabulary -----------------------------------------------------


def test_annotation_vocabulary_is_the_papers():
    assert ANNOTATIONS == {"entry", "within", "ignore", "extern"}


def test_unknown_annotation_gets_a_did_you_mean_hint():
    with pytest.raises(FrontendError, match="did you mean 'entry'"):
        validate_annotation("entyr", 3, 1)
    with pytest.raises(FrontendError, match="3:1"):
        validate_annotation("entyr", 3, 1)


# -- builtin ABI ---------------------------------------------------------------


def test_within_builtins_are_a_subset_of_the_abi():
    assert WITHIN_BUILTINS <= set(BUILTIN_SIGNATURES)


def test_auto_declare_stamps_extern_and_within():
    module = Module("m")
    fn = auto_declare_builtin(module, "memcpy")
    assert fn is not None
    assert "extern" in fn.attributes and "within" in fn.attributes
    fn = auto_declare_builtin(module, "printf")
    assert "extern" in fn.attributes and "within" not in fn.attributes
    assert auto_declare_builtin(module, "nonesuch") is None


# -- contract facts ------------------------------------------------------------


def test_contract_facts_are_frontend_neutral():
    from repro.frontend import compile_source as minic
    from repro.frontend.minipy import compile_source as minipy

    c_module = minic("""\
        long color(blue) secret = 7;
        ignore long declass(long v) { return v; }
        entry long main() { return declass(secret); }
    """)
    py_module = minipy("""\
secret = secure("blue", 7)

@ignore
def declass(v):
    return v

@entry
def main():
    return declass(secret)
""")
    for module in (c_module, py_module):
        assert declassifiers(module) == ["declass"]
        assert secure_globals(module) == {"secret": "blue"}
        facts = effect_facts(module)
        assert facts["main"]["colors_read"] == ["blue"]
        assert facts["declass"]["declassifier"] is True
        assert "entry" in facts["main"]["annotations"]
