"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main

CLEAN = """
    long color(blue) total = 0;
    entry long main(long n) {
        total = total + n;
        return 0;
    }
"""

BROKEN = """
    long color(blue) secret = 1;
    long out = 0;
    entry void main() { out = secret; }
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.c"
    path.write_text(BROKEN)
    return str(path)


def test_analyze_ok(clean_file, capsys):
    assert main(["analyze", clean_file, "--mode", "relaxed"]) == 0
    out = capsys.readouterr().out
    assert "analysis OK" in out
    assert "blue" in out


def test_analyze_reports_errors(broken_file, capsys):
    assert main(["analyze", broken_file]) == 1
    err = capsys.readouterr().err
    assert "[store]" in err or "incompatible colors" in err


def test_compile_to_directory(clean_file, tmp_path, capsys):
    out_dir = tmp_path / "parts"
    assert main(["compile", clean_file, "--mode", "relaxed",
                 "-o", str(out_dir)]) == 0
    files = sorted(p.name for p in out_dir.iterdir())
    assert "blue.ir" in files and "S.ir" in files
    blue_text = (out_dir / "blue.ir").read_text()
    assert "@main$" in blue_text


def test_compile_to_stdout(clean_file, capsys):
    assert main(["compile", clean_file, "--mode", "relaxed"]) == 0
    out = capsys.readouterr().out
    assert "define" in out


def test_run_executes_entry(clean_file, capsys):
    assert main(["run", "--mode", "relaxed", "--entry",
                 "main", clean_file, "7"]) == 0
    out = capsys.readouterr().out
    assert "main(7) = 0" in out
    assert "messages:" in out


def test_compile_error_is_reported(broken_file, capsys):
    assert main(["compile", broken_file]) == 1
    assert "error:" in capsys.readouterr().err


def test_missing_file(capsys):
    assert main(["analyze", "/no/such/file.c"]) == 2


FIG7 = """
    int unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;
    void g(int n) { blue_g = n; red_g = n; }
    int f(int y) { g(21); return 42; }
    entry int main() { unsafe_g = 1; int x = f(blue_g); return x; }
"""


@pytest.fixture
def fig7_file(tmp_path):
    path = tmp_path / "fig7.c"
    path.write_text(FIG7)
    return str(path)


def test_run_engine_flag(fig7_file, capsys):
    for engine in ("decoded", "legacy"):
        assert main(["run", "--mode", "relaxed", "--engine", engine,
                     fig7_file]) == 0
        assert "main() = 42" in capsys.readouterr().out


def test_run_max_steps_exhaustion_is_an_error(fig7_file, capsys):
    assert main(["run", "--mode", "relaxed", "--max-steps", "2",
                 fig7_file]) == 1
    assert "exceeded 2 steps" in capsys.readouterr().err


def test_run_trace_writes_valid_chrome_json(fig7_file, tmp_path,
                                            capsys):
    from repro.obs.export import validate_chrome_trace_file

    trace_path = tmp_path / "trace.json"
    assert main(["run", "--mode", "relaxed", fig7_file,
                 "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert f"trace: wrote {trace_path}" in out
    assert validate_chrome_trace_file(str(trace_path)) > 0


def test_run_stats_prints_metrics(fig7_file, capsys):
    assert main(["run", "--mode", "relaxed", "--stats",
                 fig7_file]) == 0
    out = capsys.readouterr().out
    assert "messages:" in out  # the classic line survives
    assert "runtime.spawns = " in out
    assert "channel.total = " in out
    assert "interp.steps = " in out


def test_run_rejects_unknown_engine(fig7_file, capsys):
    with pytest.raises(SystemExit):
        main(["run", "--engine", "turbo", fig7_file])
