"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main

CLEAN = """
    long color(blue) total = 0;
    entry long main(long n) {
        total = total + n;
        return 0;
    }
"""

BROKEN = """
    long color(blue) secret = 1;
    long out = 0;
    entry void main() { out = secret; }
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.c"
    path.write_text(BROKEN)
    return str(path)


def test_analyze_ok(clean_file, capsys):
    assert main(["analyze", clean_file, "--mode", "relaxed"]) == 0
    out = capsys.readouterr().out
    assert "analysis OK" in out
    assert "blue" in out


def test_analyze_reports_errors(broken_file, capsys):
    assert main(["analyze", broken_file]) == 1
    err = capsys.readouterr().err
    assert "[store]" in err or "incompatible colors" in err


def test_compile_to_directory(clean_file, tmp_path, capsys):
    out_dir = tmp_path / "parts"
    assert main(["compile", clean_file, "--mode", "relaxed",
                 "-o", str(out_dir)]) == 0
    files = sorted(p.name for p in out_dir.iterdir())
    assert "blue.ir" in files and "S.ir" in files
    blue_text = (out_dir / "blue.ir").read_text()
    assert "@main$" in blue_text


def test_compile_to_stdout(clean_file, capsys):
    assert main(["compile", clean_file, "--mode", "relaxed"]) == 0
    out = capsys.readouterr().out
    assert "define" in out


def test_run_executes_entry(clean_file, capsys):
    assert main(["run", "--mode", "relaxed", "--entry",
                 "main", clean_file, "7"]) == 0
    out = capsys.readouterr().out
    assert "main(7) = 0" in out
    assert "messages:" in out


def test_compile_error_is_reported(broken_file, capsys):
    assert main(["compile", broken_file]) == 1
    assert "error:" in capsys.readouterr().err


def test_missing_file(capsys):
    assert main(["analyze", "/no/such/file.c"]) == 2


FIG7 = """
    int unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;
    void g(int n) { blue_g = n; red_g = n; }
    int f(int y) { g(21); return 42; }
    entry int main() { unsafe_g = 1; int x = f(blue_g); return x; }
"""


@pytest.fixture
def fig7_file(tmp_path):
    path = tmp_path / "fig7.c"
    path.write_text(FIG7)
    return str(path)


def test_run_engine_flag(fig7_file, capsys):
    for engine in ("decoded", "legacy"):
        assert main(["run", "--mode", "relaxed", "--engine", engine,
                     fig7_file]) == 0
        assert "main() = 42" in capsys.readouterr().out


def test_run_max_steps_exhaustion_is_an_error(fig7_file, capsys):
    # Exhausting the step budget is a WatchdogTimeout: exit code 7
    # and a structured one-line fault message.
    assert main(["run", "--mode", "relaxed", "--max-steps", "2",
                 fig7_file]) == 7
    err = capsys.readouterr().err
    assert "fault[WatchdogTimeout] exit=7:" in err
    assert "exceeded 2 steps" in err


def test_run_trace_writes_valid_chrome_json(fig7_file, tmp_path,
                                            capsys):
    from repro.obs.export import validate_chrome_trace_file

    trace_path = tmp_path / "trace.json"
    assert main(["run", "--mode", "relaxed", fig7_file,
                 "--trace", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert f"trace: wrote {trace_path}" in out
    assert validate_chrome_trace_file(str(trace_path)) > 0


def test_run_trace_survives_a_faulted_run(fig7_file, tmp_path,
                                          capsys):
    """A chaos run's trace is most valuable when the run faults:
    --trace must write a valid trace on the failure path too, with
    the fault events on it."""
    from repro.obs.export import (
        trace_event_names, validate_chrome_trace_file)
    import json

    trace_path = tmp_path / "trace.json"
    assert main(["run", "--mode", "relaxed", fig7_file,
                 "--inject", "channel-corrupt:*:spawn:1",
                 "--trace", str(trace_path)]) == 5
    err = capsys.readouterr().err
    assert f"trace: wrote {trace_path}" in err
    assert validate_chrome_trace_file(str(trace_path)) > 0
    with open(trace_path) as handle:
        names = trace_event_names(json.load(handle))
    assert "inject" in names and "detect" in names


def test_run_stats_prints_metrics(fig7_file, capsys):
    assert main(["run", "--mode", "relaxed", "--stats",
                 fig7_file]) == 0
    out = capsys.readouterr().out
    assert "messages:" in out  # the classic line survives
    assert "runtime.spawns = " in out
    assert "channel.total = " in out
    assert "interp.steps = " in out


def test_run_rejects_unknown_engine(fig7_file, capsys):
    with pytest.raises(SystemExit):
        main(["run", "--engine", "turbo", fig7_file])


# -- pass-pipeline flags ------------------------------------------------------


def test_compile_passes_flag_without_partition(clean_file, capsys):
    assert main(["compile", clean_file, "--mode", "relaxed",
                 "--passes", "mem2reg,constfold,dce"]) == 0
    out = capsys.readouterr().out
    # No partition pass: the single optimized module is printed.
    assert "; module" in out
    assert "@main$" not in out             # no specialized clones


def test_compile_stats_reports_per_pass_metrics(clean_file, capsys):
    assert main(["compile", clean_file, "--mode", "relaxed",
                 "--stats"]) == 0
    out = capsys.readouterr().out
    assert "pipeline.pass.seconds[mem2reg] = " in out
    assert "pipeline.pass.runs[partition] = " in out
    assert "pipeline.analysis_cache.hits = " in out


def test_compile_time_passes_prints_the_table(clean_file, capsys):
    assert main(["compile", clean_file, "--mode", "relaxed",
                 "--time-passes"]) == 0
    err = capsys.readouterr().err
    assert "=== pass timings ===" in err
    assert "mem2reg" in err


def test_compile_print_after_each_dumps_ir(clean_file, capsys):
    assert main(["compile", clean_file, "--mode", "relaxed",
                 "--print-after-each"]) == 0
    err = capsys.readouterr().err
    assert "; === IR after mem2reg ===" in err
    assert "; === IR after partition ===" in err


def test_unknown_pass_is_an_error(clean_file, capsys):
    assert main(["compile", clean_file, "--passes", "typo"]) == 1
    assert "unknown pass 'typo'" in capsys.readouterr().err


def test_run_without_partition_pass_is_an_error(fig7_file, capsys):
    assert main(["run", "--mode", "relaxed",
                 "--passes", "mem2reg", fig7_file]) == 1
    assert "did not produce a partitioned program" in \
        capsys.readouterr().err


def test_analyze_without_secure_types_pass_is_an_error(clean_file,
                                                       capsys):
    assert main(["analyze", clean_file, "--mode", "relaxed",
                 "--passes", "mem2reg"]) == 1
    assert "secure-types" in capsys.readouterr().err


def test_analyze_error_names_the_source_line(broken_file, capsys):
    assert main(["analyze", broken_file]) == 1
    assert "source line 4:" in capsys.readouterr().err


# -- chaos / fault-injection flags --------------------------------------------


def test_run_inject_drop_faults_with_typed_exit_code(fig7_file,
                                                     capsys):
    """Dropping the first spawn parks the program forever: the CLI
    must exit with the DeadlockFault code and a structured line."""
    code = main(["run", "--mode", "relaxed", fig7_file,
                 "--inject", "channel-drop:*:spawn:1"])
    captured = capsys.readouterr()
    assert code == 4
    assert "fault[DeadlockFault] exit=4:" in captured.err
    assert "chaos: injecting [channel-drop:*:spawn:1]" \
        in captured.err


def test_run_inject_corrupt_is_detected_as_iago(fig7_file, capsys):
    code = main(["run", "--mode", "relaxed", fig7_file,
                 "--inject", "channel-corrupt:*:spawn:1"])
    captured = capsys.readouterr()
    assert code == 5
    assert "fault[IagoFault] exit=5:" in captured.err
    assert "failed authentication" in captured.err


def test_run_inject_unmatched_entry_is_harmless(fig7_file, capsys):
    """An injection that never matches leaves the run identical."""
    assert main(["run", "--mode", "relaxed", fig7_file,
                 "--inject", "channel-drop:green->U:token:9"]) == 0
    captured = capsys.readouterr()
    assert "main() = 42" in captured.out
    assert "faults: injected=0 detected=0 of 1 armed" \
        in captured.out


def test_run_inject_bad_spec_is_an_error(fig7_file, capsys):
    assert main(["run", "--mode", "relaxed", fig7_file,
                 "--inject", "flip-bits:x:1"]) == 1
    assert "unknown fault action 'flip-bits'" in \
        capsys.readouterr().err


def test_run_chaos_seed_is_deterministic(fig7_file, capsys):
    """The same seed must draw the same plan (and outcome)."""

    def once():
        code = main(["run", "--mode", "relaxed", fig7_file,
                     "--chaos-seed", "11"])
        captured = capsys.readouterr()
        plan = [line for line in captured.err.splitlines()
                if line.startswith("chaos: injecting")]
        return code, plan

    first = once()
    second = once()
    assert first == second
    assert first[1]  # the plan line was printed


def test_run_watchdog_steps_flag(fig7_file, capsys):
    code = main(["run", "--mode", "relaxed", fig7_file,
                 "--watchdog-steps", "3"])
    captured = capsys.readouterr()
    assert code == 7
    assert "fault[WatchdogTimeout] exit=7:" in captured.err
    assert "watchdog budget of 3 step(s)" in captured.err


# -- exit-code table -----------------------------------------------------------


def test_exit_code_table_is_complete_and_consistent():
    """``exit_code_table()`` is the single source of truth: one row
    per code 0-9, and the fault rows agree with ``fault_exit_code``."""
    from repro.errors import (
        DeadlockFault,
        EnclaveCrash,
        IagoFault,
        NetworkFault,
        SGXAccessViolation,
        WatchdogTimeout,
        exit_code_table,
        fault_exit_code,
    )

    table = exit_code_table()
    assert [code for code, _, _ in table] == list(range(10))
    by_name = {name: code for code, name, _ in table}
    for cls in (DeadlockFault, IagoFault, EnclaveCrash,
                WatchdogTimeout, SGXAccessViolation, NetworkFault):
        assert by_name[cls.__name__] == fault_exit_code(cls("x"))
    assert by_name["success"] == 0
    assert by_name["PrivagicError"] == 1
    assert by_name["OSError"] == 2
    assert by_name["RuntimeFault"] == 3
    # Every meaning is a non-empty human sentence fragment.
    assert all(meaning.strip() for _, _, meaning in table)


def test_readme_exit_code_table_matches_source_of_truth():
    """The README table is asserted against the code, not hand-kept:
    every row generated from ``exit_code_table()`` must appear
    verbatim."""
    import os

    from repro.errors import exit_code_table

    readme = os.path.join(os.path.dirname(__file__), "..",
                          "README.md")
    with open(readme, encoding="utf-8") as handle:
        text = handle.read()
    for code, name, meaning in exit_code_table():
        row = f"| {code} | `{name}` | {meaning} |"
        assert row in text, f"README is missing the row: {row}"


# -- placement optimization flags ---------------------------------------------

FIG7_EFFECTFUL = """
    int unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;
    void g(int n) { blue_g = n; red_g = n; printf("Hello\\n"); }
    int f(int y) { g(21); return 42; }
    entry int main() { unsafe_g = 1; int x = f(blue_g); return x; }
"""


@pytest.fixture
def effectful_file(tmp_path):
    path = tmp_path / "fig7_effectful.c"
    path.write_text(FIG7_EFFECTFUL)
    return str(path)


def test_analyze_partition_stats_prints_the_color_table(
        effectful_file, capsys):
    assert main(["analyze", effectful_file, "--mode", "relaxed",
                 "--partition-stats"]) == 0
    out = capsys.readouterr().out
    assert "color" in out and "tcb" in out
    assert "blue" in out and "red" in out


def test_compile_optimize_kl_with_stats(effectful_file, capsys):
    assert main(["compile", effectful_file, "--mode", "relaxed",
                 "--optimize", "kl", "--partition-stats"]) == 0
    out = capsys.readouterr().out
    assert "placement report:" in out
    assert '"policy": "kl"' in out


def test_unknown_optimize_policy_suggests_a_fix(effectful_file,
                                                capsys):
    assert main(["compile", effectful_file, "--mode", "relaxed",
                 "--optimize", "k1"]) == 1
    err = capsys.readouterr().err
    assert "did you mean 'kl'" in err


def test_run_optimize_kl_is_behavior_preserving(effectful_file,
                                                capsys):
    assert main(["run", "--mode", "relaxed", effectful_file]) == 0
    baseline = capsys.readouterr().out
    assert main(["run", "--mode", "relaxed", "--optimize", "kl",
                 effectful_file]) == 0
    optimized = capsys.readouterr().out
    assert "main() = 42" in baseline and "main() = 42" in optimized
    assert "Hello" in baseline and "Hello" in optimized

    def messages(text):
        import ast
        for line in text.splitlines():
            if line.startswith("messages:"):
                stats = ast.literal_eval(line.split(":", 1)[1].strip())
                return stats["messages"]
        raise AssertionError(f"no messages line in {text!r}")

    assert messages(optimized) < messages(baseline)


def test_run_profile_roundtrip_via_files(effectful_file, tmp_path,
                                         capsys):
    """--profile-out from an unoptimized run feeds --profile-in on
    the next compile: the CLI loop of the profile policy."""
    import json

    profile_path = tmp_path / "traffic.json"
    assert main(["run", "--mode", "relaxed", effectful_file,
                 "--profile-out", str(profile_path)]) == 0
    out = capsys.readouterr().out
    assert f"profile: wrote {profile_path}" in out
    profile = json.loads(profile_path.read_text())
    assert profile["channels"]
    assert main(["run", "--mode", "relaxed", effectful_file,
                 "--optimize", "profile",
                 "--profile-in", str(profile_path),
                 "--partition-stats"]) == 0
    assert '"policy": "profile"' in capsys.readouterr().out


def test_profile_policy_without_profile_in_is_friendly(
        effectful_file, capsys):
    assert main(["run", "--mode", "relaxed", effectful_file,
                 "--optimize", "profile"]) == 1
    err = capsys.readouterr().err
    assert "--profile-out" in err
