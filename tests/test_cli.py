"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main

CLEAN = """
    long color(blue) total = 0;
    entry long main(long n) {
        total = total + n;
        return 0;
    }
"""

BROKEN = """
    long color(blue) secret = 1;
    long out = 0;
    entry void main() { out = secret; }
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.c"
    path.write_text(CLEAN)
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.c"
    path.write_text(BROKEN)
    return str(path)


def test_analyze_ok(clean_file, capsys):
    assert main(["analyze", clean_file, "--mode", "relaxed"]) == 0
    out = capsys.readouterr().out
    assert "analysis OK" in out
    assert "blue" in out


def test_analyze_reports_errors(broken_file, capsys):
    assert main(["analyze", broken_file]) == 1
    err = capsys.readouterr().err
    assert "[store]" in err or "incompatible colors" in err


def test_compile_to_directory(clean_file, tmp_path, capsys):
    out_dir = tmp_path / "parts"
    assert main(["compile", clean_file, "--mode", "relaxed",
                 "-o", str(out_dir)]) == 0
    files = sorted(p.name for p in out_dir.iterdir())
    assert "blue.ir" in files and "S.ir" in files
    blue_text = (out_dir / "blue.ir").read_text()
    assert "@main$" in blue_text


def test_compile_to_stdout(clean_file, capsys):
    assert main(["compile", clean_file, "--mode", "relaxed"]) == 0
    out = capsys.readouterr().out
    assert "define" in out


def test_run_executes_entry(clean_file, capsys):
    assert main(["run", "--mode", "relaxed", "--entry",
                 "main", clean_file, "7"]) == 0
    out = capsys.readouterr().out
    assert "main(7) = 0" in out
    assert "messages:" in out


def test_compile_error_is_reported(broken_file, capsys):
    assert main(["compile", broken_file]) == 1
    assert "error:" in capsys.readouterr().err


def test_missing_file(capsys):
    assert main(["analyze", "/no/such/file.c"]) == 2
