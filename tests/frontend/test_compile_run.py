"""End-to-end frontend tests: compile MiniC, run on the interpreter."""

import pytest

from repro.errors import FrontendError
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.ir.passes import mem2reg


def run(source: str, fn: str = "main", args=()):
    module = compile_source(source)
    machine = Machine(module)
    return machine.run_function(fn, list(args)), machine


def test_arithmetic_and_control_flow():
    result, _ = run("""
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        int main() { return fib(10); }
    """)
    assert result == 55


def test_loops_and_arrays():
    result, _ = run("""
        int main() {
            int a[10];
            for (int i = 0; i < 10; i++) a[i] = i * i;
            int total = 0;
            int i = 0;
            while (i < 10) { total += a[i]; i++; }
            return total;
        }
    """)
    assert result == sum(i * i for i in range(10))


def test_structs_and_pointers():
    result, _ = run("""
        struct point { int x; int y; };
        int main() {
            struct point p;
            p.x = 3;
            p.y = 4;
            struct point* q = &p;
            q->x = 30;
            return p.x + p.y;
        }
    """)
    assert result == 34


def test_malloc_struct_and_strings():
    result, machine = run("""
        struct account {
            char name[16];
            double balance;
        };
        struct account* create(char* name) {
            struct account* res = malloc(sizeof(struct account));
            strncpy(res->name, name, 16);
            res->balance = 0.0;
            return res;
        }
        int main() {
            struct account* a = create("alice");
            printf("name=%s\\n", a->name);
            return strlen(a->name);
        }
    """)
    assert result == 5
    assert machine.stdout == "name=alice\n"


def test_short_circuit_evaluation():
    result, machine = run("""
        int called = 0;
        int bump() { called = called + 1; return 1; }
        int main() {
            int a = 0 && bump();
            int b = 1 || bump();
            printf("%d", called);
            return a + b;
        }
    """)
    assert result == 1
    assert machine.stdout == "0"


def test_color_qualifier_lands_on_ir_types():
    module = compile_source("""
        struct account {
            char color(blue) name[16];
            double color(red) balance;
        };
        int color(blue) counter = 0;
        int main() { return 0; }
    """)
    account = module.structs["account"]
    assert account.fields[0].type.color == "blue"
    assert account.fields[1].type.color == "red"
    assert account.is_multicolor
    assert module.globals["counter"].color == "blue"


def test_function_annotations():
    module = compile_source("""
        extern int send(int x);
        within int helper(int x);
        ignore void declassify(char* dst, char* src);
        entry int main() { return 0; }
    """)
    assert module.get_function("send").is_extern
    assert module.get_function("helper").is_within
    assert module.get_function("declassify").is_ignore
    assert module.get_function("main").is_entry
    assert module.entry_points() == [module.get_function("main")]


def test_threads_via_builtin():
    result, _ = run("""
        int shared = 0;
        void worker(long arg) {
            mutex_lock(1);
            shared = shared + arg;
            mutex_unlock(1);
        }
        int main() {
            long t1 = thread_create((void*) worker, 5);
            long t2 = thread_create((void*) worker, 7);
            thread_join(t1);
            thread_join(t2);
            return shared;
        }
    """)
    assert result == 12


def test_unsynchronized_threads_can_lose_updates():
    """The interpreter interleaves contexts instruction by instruction,
    so the classic lost-update race is observable — the property the
    Figure 3 experiment relies on."""
    result, _ = run("""
        int shared = 0;
        void worker(long arg) {
            shared = shared + arg;
        }
        int main() {
            long t1 = thread_create((void*) worker, 5);
            long t2 = thread_create((void*) worker, 7);
            thread_join(t1);
            thread_join(t2);
            return shared;
        }
    """)
    assert result in (5, 7, 12)


def test_function_pointer_indirect_call():
    result, _ = run("""
        int twice(int x) { return 2 * x; }
        int thrice(int x) { return 3 * x; }
        int main() {
            int (*fp)(int);
            fp = twice;
            int a = fp(10);
            fp = thrice;
            return a + fp(10);
        }
    """)
    assert result == 50


def test_mem2reg_on_compiled_code():
    module = compile_source("""
        int sum(int n) {
            int total = 0;
            for (int i = 0; i <= n; i++) total += i;
            return total;
        }
    """)
    promoted = mem2reg(module)
    assert promoted >= 3  # n.addr, total, i
    machine = Machine(module)
    assert machine.run_function("sum", [100]) == 5050


def test_parse_error_reports_position():
    with pytest.raises(FrontendError):
        compile_source("int main( { return 0; }")


def test_do_while_and_ternary():
    result, _ = run("""
        int main() {
            int i = 0;
            int total = 0;
            do { total += i; i++; } while (i < 5);
            return total > 5 ? total : 0;
        }
    """)
    assert result == 10
