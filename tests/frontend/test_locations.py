"""Source-location threading: lexer -> AST -> codegen -> IR ->
diagnostics.  A secure-typing violation must name the MiniC source
line that caused it (the paper's Table 3 reports violations per
source construct)."""

import pytest

from repro.core.compiler import compile_and_partition
from repro.errors import SecureTypeError
from repro.frontend import compile_source
from repro.ir.instructions import Call, Store

BROKEN = """\
long color(blue) secret = 1;
long out = 0;

entry void main() {
    out = secret;
}
"""


def test_secure_type_violation_reports_the_source_line():
    with pytest.raises(SecureTypeError) as excinfo:
        compile_and_partition(BROKEN)
    error = excinfo.value
    assert error.loc is not None
    line, column = error.loc
    assert line == 5                       # `out = secret;`
    assert "source line 5:" in str(error)


def test_locations_survive_partition_specialization():
    # The violating store sits inside a helper that gets specialized
    # per color; the clone must keep the original source location.
    source = """\
long color(blue) secret = 1;
long out = 0;

void leak(long v) {
    out = v;
}

entry void main() {
    leak(secret);
}
"""
    with pytest.raises(SecureTypeError) as excinfo:
        compile_and_partition(source)
    assert excinfo.value.loc is not None
    assert excinfo.value.loc[0] == 5       # `out = v;`


def test_instructions_carry_their_source_lines():
    module = compile_source("""\
int g = 0;

entry int main() {
    g = 7;
    printf("hi\\n");
    return g;
}
""")
    main = module.functions["main"]
    instrs = [i for block in main.blocks for i in block.instructions]
    stores = [i for i in instrs if isinstance(i, Store)]
    calls = [i for i in instrs if isinstance(i, Call)]
    assert any(i.loc and i.loc[0] == 4 for i in stores)
    assert any(i.loc and i.loc[0] == 5 for i in calls)
    # Every located instruction points inside the source text.
    for instr in instrs:
        if instr.loc is not None:
            assert 1 <= instr.loc[0] <= 7


def test_union_color_mixing_reports_the_declaration_line():
    source = """\
union broken {
    int color(blue) a;
    int color(red) b;
};

entry int main() { return 0; }
"""
    with pytest.raises(SecureTypeError) as excinfo:
        compile_source(source)
    assert excinfo.value.loc is not None
    assert excinfo.value.loc[0] == 1


def test_error_without_location_has_no_source_suffix():
    error = SecureTypeError("store", "leak")
    assert error.loc is None
    assert "source line" not in str(error)
