"""Property-based frontend tests: compiled MiniC arithmetic must agree
with Python's evaluation of the same expression."""

from hypothesis import given, settings, strategies as st

from repro.frontend import compile_source
from repro.ir.interp import Machine


def run_expr(expr: str, a: int, b: int) -> int:
    source = f"""
        long f(long a, long b) {{
            return {expr};
        }}
    """
    return Machine(compile_source(source)).run_function("f", [a, b])


SMALL = st.integers(-1000, 1000)
NONZERO = st.integers(1, 1000)


@settings(max_examples=60, deadline=None)
@given(a=SMALL, b=SMALL)
def test_addition_chain(a, b):
    assert run_expr("a + b * 2 - 3", a, b) == a + b * 2 - 3


@settings(max_examples=60, deadline=None)
@given(a=SMALL, b=NONZERO)
def test_c_division_truncates_toward_zero(a, b):
    expected = int(a / b)  # C semantics: truncation
    assert run_expr("a / b", a, b) == expected
    assert run_expr("a % b", a, b) == a - expected * b


@settings(max_examples=60, deadline=None)
@given(a=SMALL, b=SMALL)
def test_comparisons(a, b):
    assert run_expr("a < b", a, b) == int(a < b)
    assert run_expr("a == b", a, b) == int(a == b)
    assert run_expr("a >= b ? 1 : 0", a, b) == int(a >= b)


@settings(max_examples=40, deadline=None)
@given(a=st.integers(0, 255), b=st.integers(0, 255))
def test_bitwise(a, b):
    assert run_expr("a & b", a, b) == a & b
    assert run_expr("a | b", a, b) == a | b
    assert run_expr("a ^ b", a, b) == a ^ b
    assert run_expr("(a << 3) + (b >> 2)", a, b) == (a << 3) + (b >> 2)


@settings(max_examples=40, deadline=None)
@given(a=SMALL, b=SMALL)
def test_short_circuit_matches_python(a, b):
    assert run_expr("a && b", a, b) == int(bool(a) and bool(b))
    assert run_expr("a || b", a, b) == int(bool(a) or bool(b))
    assert run_expr("!a", a, b) == int(not a)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(0, 12))
def test_loop_matches_closed_form(n):
    source = """
        long tri(long n) {
            long total = 0;
            for (long i = 1; i <= n; i++) total += i;
            return total;
        }
    """
    assert Machine(compile_source(source)).run_function(
        "tri", [n]) == n * (n + 1) // 2


@settings(max_examples=25, deadline=None)
@given(values=st.lists(st.integers(-100, 100), min_size=1,
                       max_size=16))
def test_array_sum_matches(values):
    n = len(values)
    writes = "\n".join(f"a[{i}] = {v};" for i, v in enumerate(values))
    source = f"""
        long f() {{
            long a[{n}];
            {writes}
            long total = 0;
            for (long i = 0; i < {n}; i++) total += a[i];
            return total;
        }}
    """
    assert Machine(compile_source(source)).run_function("f") == \
        sum(values)
