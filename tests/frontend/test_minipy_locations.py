"""Source-location parity for the MiniPy frontend.

MiniPy threads ``(line, column)`` through lexer -> AST -> codegen ->
IR exactly like MiniC does, so a secure-typing violation in a MiniPy
program names the MiniPy source line with the same ``(source line
L:C)`` suffix."""

import pytest

from repro.core.compiler import compile_and_partition
from repro.errors import FrontendError, SecureTypeError
from repro.frontend.minipy import compile_source
from repro.ir.instructions import Call, Store

BROKEN = """\
secret = secure("blue", 1)
out = public(0)

@entry
def main():
    out = secret
"""


def test_secure_type_violation_reports_the_minipy_source_line():
    with pytest.raises(SecureTypeError) as excinfo:
        compile_and_partition(BROKEN, frontend="minipy")
    error = excinfo.value
    assert error.loc is not None
    assert error.loc[0] == 6               # `out = secret`
    assert "source line 6:" in str(error)


def test_locations_survive_partition_specialization():
    source = """\
secret = secure("blue", 1)
out = public(0)

def leak(v):
    out = v
    return 0

@entry
def main():
    return leak(secret)
"""
    with pytest.raises(SecureTypeError) as excinfo:
        compile_and_partition(source, frontend="minipy")
    assert excinfo.value.loc is not None
    assert excinfo.value.loc[0] == 5       # `out = v`


def test_instructions_carry_their_source_lines():
    module = compile_source("""\
g = 0

@entry
def main():
    g = 7
    printf("hi\\n")
    return g
""")
    main = module.functions["main"]
    instrs = [i for block in main.blocks for i in block.instructions]
    stores = [i for i in instrs if isinstance(i, Store)]
    calls = [i for i in instrs if isinstance(i, Call)]
    assert any(i.loc and i.loc[0] == 5 for i in stores)
    assert any(i.loc and i.loc[0] == 6 for i in calls)
    for instr in instrs:
        if instr.loc is not None:
            assert 1 <= instr.loc[0] <= 8


def test_parse_errors_carry_line_and_column():
    with pytest.raises(FrontendError) as excinfo:
        compile_source("@entry\ndef main():\n    return 1.5\n")
    assert "no floats" in str(excinfo.value)
    assert excinfo.value.line == 3

    with pytest.raises(FrontendError) as excinfo:
        compile_source("@entry\ndef main():\n\treturn 1\n")
    assert "tab" in str(excinfo.value)
    assert excinfo.value.line == 3


def test_bad_annotation_names_the_decorator_line():
    with pytest.raises(FrontendError) as excinfo:
        compile_source("@entyr\ndef main():\n    return 0\n")
    assert "did you mean 'entry'" in str(excinfo.value)
    assert excinfo.value.line == 1
