"""MiniPy language semantics, compiled through the shared contract
and executed on the partitioned runtime."""

import pytest

from repro.core.compiler import compile_and_partition
from repro.errors import FrontendError
from repro.ir.interp import ENGINES
from repro.runtime.executor import run_partitioned


def run(source, mode="relaxed", entry="main", engine="decoded"):
    program = compile_and_partition(source, mode=mode,
                                    frontend="minipy")
    result, runtime = run_partitioned(program, entry, engine=engine)
    return result, runtime


def result_of(source, **kw):
    return run(source, **kw)[0]


def test_arithmetic_follows_python_floor_division_spelling():
    # `//` and `%` lower to the same sdiv/srem MiniC uses.
    assert result_of("""\
@entry
def main():
    return (7 * 6 - 2) // 4 + 17 % 5
""") == 12


def test_while_if_elif_else_and_aug_assign():
    assert result_of("""\
@entry
def main():
    total = 0
    i = 0
    while i < 10:
        if i % 3 == 0:
            total += i
        elif i % 3 == 1:
            total += 100
        else:
            pass
        i += 1
    return total
""") == 318  # 0+3+6+9 plus three i%3==1 hits


def test_break_and_continue():
    assert result_of("""\
@entry
def main():
    total = 0
    i = 0
    while True:
        i += 1
        if i > 20:
            break
        if i % 2 == 0:
            continue
        total += i
    return total
""") == 100  # sum of odd 1..19


def test_function_calls_and_recursion():
    assert result_of("""\
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

@entry
def main():
    return fib(12)
""") == 144


def test_short_circuit_and_or_not():
    source = """\
calls = 0

def bump():
    calls = calls + 1
    return 1

@entry
def main():
    if 0 and bump():
        return -1
    if 1 or bump():
        pass
    if not 0:
        return calls
    return -2
"""
    # Neither `and` nor `or` evaluated bump(): short-circuit worked.
    assert result_of(source) == 0


def test_booleans_are_one_and_zero():
    assert result_of("""\
@entry
def main():
    return (3 < 5) * 10 + (5 < 3)
""") == 10


def test_builtins_printf_and_strlen():
    result, runtime = run("""\
@entry
def main():
    printf("len=%d\\n", strlen("hello"))
    return strlen("hello")
""")
    assert result == 5
    assert runtime.machine.stdout == "len=5\n"


def test_module_globals_write_through_without_global_keyword():
    assert result_of("""\
counter = 0

def bump(v):
    counter = counter + v
    return counter

@entry
def main():
    bump(3)
    bump(4)
    return counter
""") == 7


def test_all_engines_agree_on_a_secure_program():
    source = """\
secret = secure("blue", 41)
out = public(0)

@ignore
def declass(v):
    return v

@entry
def main():
    i = 0
    total = 0
    while i < 5:
        total = total + secret
        i += 1
    out = declass(total % 100)
    return out
"""
    program = compile_and_partition(source, mode="hardened",
                                    frontend="minipy")
    for engine in ENGINES:
        result, _ = run_partitioned(program, "main", engine=engine)
        assert result == 5, engine


# -- rejected programs ---------------------------------------------------------


@pytest.mark.parametrize("source,fragment", [
    ("x = secure(\"blue\", 1)\n@entry\ndef main():\n"
     "    y = secure(\"red\", 2)\n    return y\n", "module level"),
    ("@entry\ndef main():\n    return 1 < 2 < 3\n", "chained"),
    ("@entry\ndef main():\n    return 0\n"
     "def main():\n    return 1\n", "duplicate"),
    ("@entry\ndef main():\n    return nonesuch(1)\n", "nonesuch"),
    ("@entry\ndef main():\n    return strlen()\n", "argument"),
])
def test_bad_programs_raise_frontend_errors(source, fragment):
    with pytest.raises(FrontendError, match=fragment):
        compile_and_partition(source, frontend="minipy")
