"""Unit tests for the runtime channels and worker bookkeeping."""

import pytest

from repro.runtime.channel import Channel, ChannelMatrix, Message, SpawnMessage


def test_channel_fifo_order():
    ch = Channel("blue", "S")
    ch.push(Message("value", 1))
    ch.push(Message("value", 2))
    assert ch.pop_kind(["value"]).value == 1
    assert ch.pop_kind(["value"]).value == 2
    assert ch.pop_kind(["value"]) is None


def test_channel_selective_receive():
    """A wait for a value skips queued spawns and vice versa —
    trampoline-on-wait needs this (§7.3.2)."""
    ch = Channel("blue", "S")
    ch.push(SpawnMessage("g$F@S", [21], None))
    ch.push(Message("token"))
    ch.push(Message("value", 42))
    assert ch.pop_kind(["value"]).value == 42
    spawn = ch.pop_kind(["spawn"])
    assert spawn.chunk == "g$F@S" and spawn.args == [21]
    assert ch.pop_kind(["token"]).kind == "token"
    assert len(ch) == 0


def test_channel_counters():
    ch = Channel("a", "b")
    for i in range(5):
        ch.push(Message("value", i))
    ch.pop_kind(["value"])
    assert ch.sent == 5
    assert ch.received == 1
    assert len(ch) == 4


def test_matrix_per_pair_channels():
    matrix = ChannelMatrix()
    ab = matrix.channel("a", "b")
    ba = matrix.channel("b", "a")
    assert ab is not ba
    assert matrix.channel("a", "b") is ab
    ab.push(Message("value", 1))
    assert matrix.pending() == 1
    assert matrix.incoming("b") == (ab,)
    assert matrix.total_messages() == 1


def test_spawn_message_payload():
    msg = SpawnMessage("f$blue@red", [1, 2], reply_to="S")
    assert msg.kind == "spawn"
    assert msg.reply_to == "S"
    assert "f$blue@red" in repr(msg)


def test_runtime_stats_counting():
    from repro.core.colors import RELAXED
    from repro.core.compiler import compile_and_partition
    from repro.runtime import PrivagicRuntime

    program = compile_and_partition("""
        long color(blue) total = 0;
        entry int main() {
            total = total + 1;
            return 0;
        }
    """, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    runtime.run("main")
    stats = runtime.stats
    assert stats.spawns >= 1             # main's blue chunk
    assert stats.trampoline_runs >= 1
    assert stats.boundary_crossings >= stats.spawns
    assert stats.as_dict()["messages"] == stats.messages


def test_deadlock_reported_not_hung():
    """A chunk waiting for a message nobody sends must fail loudly."""
    from repro.errors import RuntimeFault
    from repro.core.partition import PartitionedProgram
    from repro.core.analysis import AnalysisResult
    from repro.frontend import compile_source
    from repro.ir import Function, FunctionType, IRBuilder, Module, I64
    from repro.ir.types import PointerType, I8
    from repro.runtime import PrivagicRuntime

    # Hand-build a program whose single function waits on a channel
    # that never receives anything.
    module = Module("stuck")
    recv = module.add_function(Function(
        "__privagic_recv", FunctionType(I64, [PointerType(I8)]),
        attributes=["extern"]))
    fn = module.add_function(Function("main", FunctionType(I64, [])))
    b = IRBuilder(fn.add_block("entry"))
    from repro.ir.values import Constant
    from repro.ir.types import ArrayType
    value = b.call(recv, [Constant(ArrayType(I8, 5), "blue")])
    b.ret(value)

    analysis = AnalysisResult(module, "relaxed")
    program = PartitionedProgram(analysis)
    program.modules["S"] = module
    runtime = PrivagicRuntime(program)
    with pytest.raises(RuntimeFault) as excinfo:
        runtime.run("main")
    assert "deadlock" in str(excinfo.value)


def test_mixed_backlog_fifo_within_kind():
    """A mixed spawn/value/token backlog must dequeue FIFO *within*
    each kind, however the kinds interleave on the wire."""
    ch = Channel("blue", "S")
    ch.push(Message("value", "v1"))
    ch.push(SpawnMessage("a$F@S", [1], None))
    ch.push(Message("token", "t1"))
    ch.push(Message("value", "v2"))
    ch.push(SpawnMessage("b$F@S", [2], None))
    ch.push(Message("token", "t2"))
    ch.push(Message("value", "v3"))
    assert [ch.pop("value").value for _ in range(3)] == \
        ["v1", "v2", "v3"]
    assert [ch.pop("spawn").chunk for _ in range(2)] == \
        ["a$F@S", "b$F@S"]
    assert [ch.pop("token").value for _ in range(2)] == ["t1", "t2"]
    assert len(ch) == 0
    assert ch.pop("value") is None


def test_pop_kind_global_fifo_across_kinds():
    """pop_kind with several kinds must honor arrival order across
    the per-kind queues (the seq numbers, not queue order)."""
    ch = Channel("blue", "S")
    ch.push(Message("token", "t1"))
    ch.push(Message("value", "v1"))
    ch.push(Message("token", "t2"))
    got = [ch.pop_kind(["value", "token"]).value for _ in range(3)]
    assert got == ["t1", "v1", "t2"]


def test_message_stats_per_kind_counts():
    """Regression: message_stats() used to report all zeros (the
    per-channel loop body was `pass`).  A spawn's inline F argument
    counts as one extra ``value`` message — the protocol sends it as a
    ``cont`` (Fig 7), so channel totals agree with RuntimeStats."""
    matrix = ChannelMatrix()
    ch = matrix.channel("blue", "S")
    ch.push(SpawnMessage("g$F@S", [21], None))
    ch.push(Message("value", 1))
    ch.push(Message("value", 2))
    matrix.channel("S", "blue").push(Message("token"))
    stats = matrix.message_stats()
    assert stats["spawn"] == 1
    assert stats["value"] == 3
    assert stats["token"] == 1
    assert stats["total"] == 5
    # Draining the queues must not change what was *sent*.
    ch.pop("value")
    assert matrix.message_stats() == stats


def test_pending_counters_stay_consistent():
    """The O(1) pending counters must track push/pop/pop_kind."""
    ch = Channel("a", "b")
    assert ch.pending() == 0
    ch.push(Message("value", 1))
    ch.push(Message("token"))
    ch.push(Message("value", 2))
    assert ch.pending() == 3 == len(ch)
    assert ch.pending("value") == 2
    assert ch.pending("token") == 1
    assert ch.pending("spawn") == 0
    ch.pop("token")
    assert ch.pending() == 2
    ch.pop_kind(["value", "token"])
    assert ch.pending() == 1 and ch.pending("value") == 1
    ch.pop("value")
    assert ch.pending() == 0 == len(ch)


def test_matrix_has_pending_by_kind():
    matrix = ChannelMatrix()
    matrix.channel("blue", "S").push(Message("token"))
    assert matrix.has_pending("S")
    assert matrix.has_pending("S", "token")
    assert not matrix.has_pending("S", "spawn")
    assert not matrix.has_pending("blue")


def test_queue_property_is_a_snapshot():
    """Regression: ``Channel.queue`` must be a fresh list — mutating
    it (observers, debuggers, injectors) must not change delivery."""
    ch = Channel("a", "b")
    ch.push(Message("value", 1))
    ch.push(Message("value", 2))
    view = ch.queue
    assert [m.value for m in view] == [1, 2]
    view.clear()
    del view
    assert ch.pending() == 2
    assert ch.pop("value").value == 1
    other = ch.queue
    other.append(Message("value", 99))
    assert ch.pending() == 1
    assert ch.pop("value").value == 2
    assert ch.pop("value") is None


def test_matrix_incoming_is_immutable():
    """Regression: ``ChannelMatrix.incoming`` hands out its cache on
    the scheduler fast path — callers must not be able to mutate it."""
    matrix = ChannelMatrix()
    matrix.channel("a", "b")
    view = matrix.incoming("b")
    assert isinstance(view, tuple)
    # A later channel registration must invalidate the cache.
    cb = matrix.channel("c", "b")
    assert cb in matrix.incoming("b")
    assert len(matrix.incoming("b")) == 2


def test_tampered_message_fails_authentication():
    """A payload rewritten while queued in unsafe memory must be
    detected at delivery, not absorbed (satellite: channel auth)."""
    from repro.errors import IagoFault

    ch = Channel("U", "green")
    ch.push(Message("value", 41))
    ch.queue[0].value = 42  # the adversary rewrites unsafe memory
    with pytest.raises(IagoFault, match="failed authentication"):
        ch.pop("value")


def test_tampered_spawn_args_fail_authentication():
    from repro.errors import IagoFault

    ch = Channel("U", "green")
    ch.push(SpawnMessage("g$F@green", [21], "U"))
    ch.queue[0].args[0] = 22
    with pytest.raises(IagoFault, match="failed authentication"):
        ch.pop("spawn")


def test_duplicate_delivery_is_a_replay():
    """Re-delivering an already-delivered message (a dup injected
    into unsafe memory) trips the per-kind sequence check."""
    from repro.errors import IagoFault

    ch = Channel("U", "green")
    message = Message("value", 7)
    ch.push(message)
    assert ch.pop("value").value == 7
    ch._enqueue(message)  # the adversary re-queues the old message
    with pytest.raises(IagoFault, match="replayed"):
        ch.pop("value")


def test_dropped_message_is_a_gap():
    """Losing a message from unsafe memory makes the next same-kind
    delivery jump the sequence — detected as a gap."""
    from repro.errors import IagoFault

    ch = Channel("U", "green")
    ch.push(Message("value", 1))
    ch.push(Message("value", 2))
    dropped = ch._queues["value"].popleft()  # adversary drops #1
    ch.count -= 1
    assert dropped.value == 1
    with pytest.raises(IagoFault, match="dropped or reordered"):
        ch.pop("value")


def test_deadlock_report_names_parked_wait_and_pending_kinds():
    """Satellite: the deadlock report must carry each parked
    context's awaited (src, kind) and per-channel pending-by-kind
    counts, and raise the typed DeadlockFault."""
    from repro.errors import DeadlockFault
    from repro.core.partition import PartitionedProgram
    from repro.core.analysis import AnalysisResult
    from repro.ir import Function, FunctionType, IRBuilder, Module, I64
    from repro.ir.types import ArrayType, PointerType, I8
    from repro.ir.values import Constant
    from repro.runtime import PrivagicRuntime

    module = Module("stuck")
    recv = module.add_function(Function(
        "__privagic_recv", FunctionType(I64, [PointerType(I8)]),
        attributes=["extern"]))
    send = module.add_function(Function(
        "__privagic_send", FunctionType(I64, [PointerType(I8), I64]),
        attributes=["extern"]))
    fn = module.add_function(Function("main", FunctionType(I64, [])))
    b = IRBuilder(fn.add_block("entry"))
    # Send a value to a color nobody reads, then wait on one that
    # never sends: the report must show both sides.
    b.call(send, [Constant(ArrayType(I8, 4), "red"),
                  Constant(I64, 7)])
    value = b.call(recv, [Constant(ArrayType(I8, 5), "blue")])
    b.ret(value)

    analysis = AnalysisResult(module, "relaxed")
    program = PartitionedProgram(analysis)
    program.modules["S"] = module
    runtime = PrivagicRuntime(program)
    with pytest.raises(DeadlockFault) as excinfo:
        runtime.run("main")
    report = str(excinfo.value)
    assert "deadlock" in report
    assert "parked on ('blue', 'value')" in report
    assert "by-kind={'value': 1}" in report
    assert "S->red" in report
