"""Trampoline protocol checks: a spawn whose payload does not match
the chunk signature must fault loudly.

Regression: the trampoline used to zero-pad missing F arguments and
silently drop extras — a forged or corrupted spawn message (channels
live in unsafe memory, §7.3.2) executed the chunk with attacker-chosen
argument shapes instead of faulting."""

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import RuntimeFault
from repro.runtime import run_partitioned
from repro.runtime.channel import SpawnMessage
from repro.runtime.executor import PrivagicRuntime, WorkerGroup

SOURCE = """
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        blue_g = n;
        red_g = n;
    }

    int f(int y) {
        g(21);
        return 42;
    }

    entry int main() {
        int x = f(blue_g);
        return x;
    }
"""


def _runtime_and_group():
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    return runtime, WorkerGroup(runtime, 0)


def test_missing_f_argument_faults():
    runtime, group = _runtime_and_group()
    # g$F@red takes one F argument; an empty payload must not be
    # zero-padded into g(0).
    message = SpawnMessage("g$F@red", [], None)
    with pytest.raises(RuntimeFault, match="g\\$F@red.*0 F value"):
        runtime._trampoline(group, message)


def test_extra_f_arguments_fault():
    runtime, group = _runtime_and_group()
    message = SpawnMessage("g$F@red", [21, 99], None)
    with pytest.raises(RuntimeFault, match="2 F value.*1 F slot"):
        runtime._trampoline(group, message)


def test_extra_args_for_zero_slot_chunk_fault():
    runtime, group = _runtime_and_group()
    # main$@blue has no F slots at all; smuggled values must fault,
    # not be silently discarded.
    message = SpawnMessage("main$@blue", [7], None)
    with pytest.raises(RuntimeFault, match="main\\$@blue"):
        runtime._trampoline(group, message)


def test_well_formed_spawn_still_runs():
    program = compile_and_partition(SOURCE, mode=RELAXED)
    result, runtime = run_partitioned(program, "main")
    assert result == 42
    assert runtime.stats.trampoline_runs >= 2


# -- live-run loud-fault paths, pinned on both engines (satellite) ------------


@pytest.mark.parametrize("engine", ["decoded", "legacy"])
def test_f_arg_mismatch_faults_during_live_run(engine):
    """Corrupting the partition metadata after compilation makes the
    live trampoline see a signature mismatch — it must abort the run
    loudly on either engine, not zero-pad."""
    program = compile_and_partition(SOURCE, mode=RELAXED)
    # g$F@red's one F slot becomes none: the in-flight spawn now
    # carries one F value too many.
    assert program.chunk_args["g$F@red"].count("F") == 1
    program.chunk_args["g$F@red"] = tuple(
        "U" if color == "F" else color
        for color in program.chunk_args["g$F@red"])
    runtime = PrivagicRuntime(program, engine=engine)
    with pytest.raises(RuntimeFault,
                       match="1 F value.*0 F slot"):
        runtime.run("main")


@pytest.mark.parametrize("engine", ["decoded", "legacy"])
def test_unknown_chunk_spawn_faults_during_live_run(engine):
    """Deleting a chunk's color mapping makes __privagic_spawn's
    lookup fail mid-run — the loud path PR 2 added, now pinned on
    both engines."""
    program = compile_and_partition(SOURCE, mode=RELAXED)
    del program.chunk_colors["g$F@red"]
    runtime = PrivagicRuntime(program, engine=engine)
    with pytest.raises(RuntimeFault,
                       match="spawn of unknown chunk 'g\\$F@red'"):
        runtime.run("main")
