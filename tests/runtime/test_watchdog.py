"""Per-context watchdog budgets (tentpole d): a context that spins
past its step budget must fault loudly with stall diagnostics instead
of silently burning the whole-run ``max_steps``."""

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import WatchdogTimeout
from repro.runtime.executor import PrivagicRuntime

SPIN = """
    int color(blue) blue_g = 1;
    entry int main() {
        int i = 0;
        while (i < 100000) {
            i = i + 1;
        }
        blue_g = i;
        return 42;
    }
"""


def _program():
    return compile_and_partition(SPIN, mode=RELAXED)


@pytest.mark.parametrize("engine", ["decoded", "legacy"])
def test_watchdog_trips_on_a_spinning_context(engine):
    runtime = PrivagicRuntime(_program(), engine=engine,
                              watchdog_steps=500)
    with pytest.raises(WatchdogTimeout) as excinfo:
        runtime.run("main")
    report = str(excinfo.value)
    assert "watchdog budget of 500 step(s)" in report
    assert "app.main" in report
    assert "steps=" in report


def test_generous_watchdog_does_not_fire():
    runtime = PrivagicRuntime(_program(), watchdog_steps=10_000_000)
    assert runtime.run("main") == 42


def test_watchdog_default_off():
    runtime = PrivagicRuntime(_program())
    assert runtime.watchdog_steps is None
    assert runtime.run("main") == 42


def test_global_budget_is_a_watchdog_timeout():
    """Exhausting max_steps is the same typed fault (the CLI maps it
    to the watchdog exit code)."""
    runtime = PrivagicRuntime(_program(), max_steps=50)
    with pytest.raises(WatchdogTimeout, match="exceeded 50 steps"):
        runtime.run("main")
