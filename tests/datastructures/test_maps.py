"""Unit and property-based tests for the §9.3 data structures."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.datastructures import (
    AccessCounter,
    ChainingHashMap,
    LinkedListMap,
    RedBlackTreeMap,
)

MAPS = [LinkedListMap, RedBlackTreeMap, ChainingHashMap]


@pytest.mark.parametrize("map_cls", MAPS)
def test_put_get_delete(map_cls):
    m = map_cls()
    assert m.get(1) is None
    m.put(1, "a")
    m.put(2, "b")
    assert m.get(1) == "a"
    assert m.get(2) == "b"
    m.put(1, "c")                 # overwrite
    assert m.get(1) == "c"
    assert len(m) == 2
    assert m.delete(1)
    assert not m.delete(1)
    assert m.get(1) is None
    assert len(m) == 1


@pytest.mark.parametrize("map_cls", MAPS)
def test_items_enumerates_everything(map_cls):
    m = map_cls()
    expected = {}
    for key in range(50):
        m.put(key, key * 10)
        expected[key] = key * 10
    assert dict(m.items()) == expected


@pytest.mark.parametrize("map_cls", MAPS)
def test_contains(map_cls):
    m = map_cls()
    m.put(7, "x")
    assert 7 in m
    assert 8 not in m


@pytest.mark.parametrize("map_cls", MAPS)
@settings(max_examples=40, deadline=None)
@given(ops=st.lists(
    st.tuples(st.sampled_from(["put", "get", "delete"]),
              st.integers(0, 30)),
    max_size=120))
def test_behaves_like_dict(map_cls, ops):
    """Property: any operation sequence matches a Python dict."""
    m = map_cls()
    model = {}
    for kind, key in ops:
        if kind == "put":
            m.put(key, key * 3)
            model[key] = key * 3
        elif kind == "get":
            assert m.get(key) == model.get(key)
        else:
            assert m.delete(key) == (model.pop(key, None) is not None)
    assert len(m) == len(model)
    assert dict(m.items()) == model


@settings(max_examples=30, deadline=None)
@given(keys=st.lists(st.integers(0, 10_000), min_size=1, max_size=200))
def test_rbtree_invariants_hold(keys):
    """Property: red-black invariants survive arbitrary inserts and
    deletes (used as the balanced treemap of Figure 9)."""
    tree = RedBlackTreeMap()
    for key in keys:
        tree.put(key, key)
        assert tree.black_height_valid()
    for key in keys[::2]:
        tree.delete(key)
        assert tree.black_height_valid()
    remaining = sorted(set(keys) - set(keys[::2]))
    assert [k for k, _ in tree.items()] == remaining


def test_rbtree_items_sorted():
    tree = RedBlackTreeMap()
    for key in [5, 3, 9, 1, 7, 2, 8]:
        tree.put(key, None)
    assert [k for k, _ in tree.items()] == [1, 2, 3, 5, 7, 8, 9]


def test_hashmap_grows_under_load():
    m = ChainingHashMap(buckets=4, max_load=2.0)
    for key in range(100):
        m.put(key, key)
    assert len(m) == 100
    assert m.load_factor() <= 2.0
    assert all(m.get(k) == k for k in range(100))


def test_access_counting_linked_list_scales_linearly():
    """The list visits ~n/2 nodes per lookup — the property that
    amortizes enclave crossings in Figure 9 (§9.3.2)."""
    counter = AccessCounter()
    m = LinkedListMap(counter)
    n = 400
    for key in range(n):
        m.put(key, key)
    counter.reset()
    for key in range(0, n, 10):
        counter.begin_op()
        m.get(key)
    mean = counter.mean_accesses_per_op()
    assert n * 0.3 < mean < n * 0.8


def test_access_counting_tree_is_logarithmic():
    counter = AccessCounter()
    tree = RedBlackTreeMap(counter)
    n = 1024
    for key in range(n):
        tree.put(key, key)
    counter.reset()
    for key in range(0, n, 16):
        tree.get(key)
    mean = counter.mean_accesses_per_op()
    assert 5 < mean < 30  # ~1.39*log2(1024) = 13.9 plus slack


def test_access_counting_hashmap_is_constant():
    counter = AccessCounter()
    m = ChainingHashMap(counter=counter)
    for key in range(2000):
        m.put(key, key)
    counter.reset()
    for key in range(0, 2000, 20):
        m.get(key)
    assert counter.mean_accesses_per_op() < 8
