"""Tests for IR-level cost metering and the two-level cross-check."""

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.runtime import PrivagicRuntime
from repro.sgx.metering import MachineMeter

SOURCE = """
    long color(blue) total = 0;
    entry long main() {
        for (long i = 0; i < 50; i++)
            total = total + i;
        return 0;
    }
"""


def test_meter_counts_accesses_by_region():
    module = compile_source(SOURCE)
    machine = Machine(module)
    meter = MachineMeter(machine)
    machine.run_function("main")
    assert meter.cycles > 0
    assert sum(meter.accesses_by_region.values()) > 0
    # The colored global is placed in the enclave region even here,
    # but the normal-mode context pays normal-mode prices: no
    # enclave-amplified misses appear in the breakdown.
    assert "llc_miss_enclave" not in meter.meter.breakdown


def test_partitioned_run_pays_enclave_prices():
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    meter = MachineMeter(runtime.machine)
    runtime.run("main")
    meter.charge_runtime_messages(runtime)
    # The colored accumulator lives in the enclave; a solid share of
    # the traffic is enclave traffic.
    assert meter.enclave_access_fraction() > 0.2
    assert meter.meter.breakdown.get("privagic_msg", 0) > 0


def test_enclave_run_costs_more_than_plain_run():
    """The calibrated asymmetry shows up at IR level too: the same
    miss profile is dearer in enclave mode."""
    module = compile_source(SOURCE)
    machine = Machine(module)
    plain = MachineMeter(machine, resident_slots=4)
    machine.run_function("main")

    module2 = compile_source(SOURCE)
    machine2 = Machine(module2)
    enclave = MachineMeter(machine2, resident_slots=4)
    machine2.spawn("main", [], mode="blue")
    machine2.run()

    assert enclave.cycles > plain.cycles * 1.3


def test_meter_detach_stops_observation():
    """detach() removes the access hook: counters freeze and the
    machine goes back to unobserved (fast-path) execution."""
    module = compile_source(SOURCE)
    machine = Machine(module)
    meter = MachineMeter(machine)
    machine.run_function("main")
    seen = sum(meter.accesses_by_region.values())
    assert seen > 0 and machine.access_hooks
    meter.detach()
    assert not machine.access_hooks
    machine.run_function("main")
    assert sum(meter.accesses_by_region.values()) == seen
    meter.detach()  # idempotent
    assert not machine.access_hooks


def test_policy_detach_uninstalls():
    from repro.sgx import SGXAccessPolicy
    module = compile_source(SOURCE)
    machine = Machine(module)
    policy = SGXAccessPolicy().attach(machine)
    assert machine.access_policy is policy
    policy.detach(machine)
    assert machine.access_policy is None
    # Detaching somebody else's policy must not clobber it.
    other = SGXAccessPolicy().attach(machine)
    policy.detach(machine)
    assert machine.access_policy is other


def test_lru_evicts_true_lru_victim():
    """The recency set must evict the *least recently used* address,
    with recently re-touched addresses surviving (regression: the old
    insertion-tick dict evicted in O(n) and the victim scan ran on
    every access past capacity)."""
    module = compile_source(SOURCE)
    machine = Machine(module)
    meter = MachineMeter(machine, resident_slots=3)
    ctx = machine.new_context(machine.function_named("main"), [])

    def touch(addr):
        meter._on_access(ctx, addr, "unsafe", "r")

    for addr in (1, 2, 3):
        touch(addr)
    touch(1)          # 1 is now most recent; LRU order is 2, 3, 1
    touch(4)          # evicts 2
    assert list(meter._lru) == [3, 1, 4]
    touch(2)          # 2 missed (was evicted); evicts 3
    assert list(meter._lru) == [1, 4, 2]
    hits = meter.meter.counts.get("llc_hit", 0)
    misses = meter.meter.counts.get("llc_miss", 0)
    assert (hits, misses) == (1, 5)


def test_lru_eviction_stays_fast_past_capacity():
    """10x resident_slots distinct addresses must stream through in
    O(1) per access.  The old min()-scan made this quadratic: ~170M
    dict probes for these numbers, tens of seconds; the OrderedDict
    LRU finishes in well under a second."""
    import time

    module = compile_source(SOURCE)
    machine = Machine(module)
    meter = MachineMeter(machine, resident_slots=4096)
    ctx = machine.new_context(machine.function_named("main"), [])
    t0 = time.perf_counter()
    for addr in range(40960):
        meter._on_access(ctx, addr, "unsafe", "r")
    elapsed = time.perf_counter() - t0
    assert len(meter._lru) == 4096
    assert elapsed < 2.0


def test_track_colors_tallies_per_mode_traffic():
    module = compile_source(SOURCE)
    machine = Machine(module)
    meter = MachineMeter(machine, resident_slots=8, track_colors=True)
    normal = machine.new_context(machine.function_named("main"), [])
    enclave = machine.new_context(machine.function_named("main"), [],
                                  mode="blue")
    meter._on_access(normal, 1, "unsafe", "r")
    meter._on_access(enclave, 2, "enclave:blue", "w")
    meter._on_access(enclave, 2, "enclave:blue", "r")  # hit
    assert meter.traffic_by_color == {"U": [0, 1], "blue": [1, 1]}
