"""Tests for IR-level cost metering and the two-level cross-check."""

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.runtime import PrivagicRuntime
from repro.sgx.metering import MachineMeter

SOURCE = """
    long color(blue) total = 0;
    entry long main() {
        for (long i = 0; i < 50; i++)
            total = total + i;
        return 0;
    }
"""


def test_meter_counts_accesses_by_region():
    module = compile_source(SOURCE)
    machine = Machine(module)
    meter = MachineMeter(machine)
    machine.run_function("main")
    assert meter.cycles > 0
    assert sum(meter.accesses_by_region.values()) > 0
    # The colored global is placed in the enclave region even here,
    # but the normal-mode context pays normal-mode prices: no
    # enclave-amplified misses appear in the breakdown.
    assert "llc_miss_enclave" not in meter.meter.breakdown


def test_partitioned_run_pays_enclave_prices():
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    meter = MachineMeter(runtime.machine)
    runtime.run("main")
    meter.charge_runtime_messages(runtime)
    # The colored accumulator lives in the enclave; a solid share of
    # the traffic is enclave traffic.
    assert meter.enclave_access_fraction() > 0.2
    assert meter.meter.breakdown.get("privagic_msg", 0) > 0


def test_enclave_run_costs_more_than_plain_run():
    """The calibrated asymmetry shows up at IR level too: the same
    miss profile is dearer in enclave mode."""
    module = compile_source(SOURCE)
    machine = Machine(module)
    plain = MachineMeter(machine, resident_slots=4)
    machine.run_function("main")

    module2 = compile_source(SOURCE)
    machine2 = Machine(module2)
    enclave = MachineMeter(machine2, resident_slots=4)
    machine2.spawn("main", [], mode="blue")
    machine2.run()

    assert enclave.cycles > plain.cycles * 1.3


def test_meter_detach_stops_observation():
    """detach() removes the access hook: counters freeze and the
    machine goes back to unobserved (fast-path) execution."""
    module = compile_source(SOURCE)
    machine = Machine(module)
    meter = MachineMeter(machine)
    machine.run_function("main")
    seen = sum(meter.accesses_by_region.values())
    assert seen > 0 and machine.access_hooks
    meter.detach()
    assert not machine.access_hooks
    machine.run_function("main")
    assert sum(meter.accesses_by_region.values()) == seen
    meter.detach()  # idempotent
    assert not machine.access_hooks


def test_policy_detach_uninstalls():
    from repro.sgx import SGXAccessPolicy
    module = compile_source(SOURCE)
    machine = Machine(module)
    policy = SGXAccessPolicy().attach(machine)
    assert machine.access_policy is policy
    policy.detach(machine)
    assert machine.access_policy is None
    # Detaching somebody else's policy must not clobber it.
    other = SGXAccessPolicy().attach(machine)
    policy.detach(machine)
    assert machine.access_policy is other
