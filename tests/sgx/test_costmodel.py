"""Tests for the SGX cost model and cache/EPC estimators."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sgx import (
    CostMeter,
    MACHINE_A,
    MACHINE_B,
    epc_fault_ratio,
    miss_ratio_scan,
    miss_ratio_uniform,
    miss_ratio_zipfian,
)
from repro.sgx.costmodel import CostParams, MIB, GIB


def test_machine_geometries_match_paper():
    # §9.1: machine A ships SGXv1, 93 MiB EPC; machine B SGXv2,
    # 8131 MiB EPC, 22.5 MiB LLC.
    assert MACHINE_A.epc_bytes == 93 * MIB
    assert MACHINE_B.epc_bytes == 8131 * MIB
    assert MACHINE_B.llc_bytes == int(22.5 * MIB)


def test_enclave_miss_factor_in_eleos_band():
    # [30]: an LLC miss in enclave mode takes 5.6x-9.5x longer.
    assert 5.6 <= MACHINE_A.enclave_miss_factor <= 9.5


def test_privagic_message_cheaper_than_sdk_call():
    # §9.3.2: lock-free queue vs lock-based switchless call.
    assert MACHINE_A.privagic_message_cycles < \
        MACHINE_A.sdk_switchless_cycles


def test_meter_accumulates_and_breaks_down():
    meter = CostMeter(MACHINE_A)
    meter.memory_accesses(100, miss_ratio=0.5, in_enclave=False)
    meter.privagic_messages(2)
    meter.compute(1)
    assert meter.cycles > 0
    assert set(meter.breakdown) == {"llc_hit", "llc_miss",
                                    "privagic_msg", "compute"}
    assert meter.cycles == pytest.approx(sum(meter.breakdown.values()))


def test_enclave_misses_amplified():
    plain = CostMeter(MACHINE_A)
    plain.memory_accesses(1000, 0.5, in_enclave=False)
    enclave = CostMeter(MACHINE_A)
    enclave.memory_accesses(1000, 0.5, in_enclave=True)
    assert enclave.cycles > plain.cycles * 3


def test_epc_faults_add_cost():
    without = CostMeter(MACHINE_A)
    without.memory_accesses(1000, 0.5, True, epc_fault_ratio=0.0)
    with_faults = CostMeter(MACHINE_A)
    with_faults.memory_accesses(1000, 0.5, True, epc_fault_ratio=0.2)
    assert with_faults.cycles > without.cycles


def test_throughput_and_latency():
    meter = CostMeter(MACHINE_A)
    meter.charge("x", 3e9)  # one second at 3 GHz
    assert meter.seconds == pytest.approx(1.0)
    assert meter.throughput(1000) == pytest.approx(1000.0)
    assert meter.mean_latency_us(1000) == pytest.approx(1000.0)


# -- estimators --------------------------------------------------------------------


def test_uniform_miss_ratio_shape():
    llc = 9 * MIB
    assert miss_ratio_uniform(1 * MIB, llc) < 0.1
    assert miss_ratio_uniform(18 * MIB, llc) == pytest.approx(0.5,
                                                              abs=0.05)
    assert miss_ratio_uniform(1 * GIB, llc) > 0.95


def test_zipfian_misses_less_than_uniform():
    llc = 9 * MIB
    n, item = 100_000, 1056
    assert miss_ratio_zipfian(n, item, llc) < \
        miss_ratio_uniform(n * item, llc)


def test_scan_misses_beyond_cache():
    llc = 9 * MIB
    assert miss_ratio_scan(1 * MIB, llc) < 0.1
    assert miss_ratio_scan(100 * MIB, llc) > 0.9


def test_epc_fault_ratio_zero_within_epc():
    assert epc_fault_ratio(50 * MIB, 93 * MIB) == 0.0
    assert epc_fault_ratio(186 * MIB, 93 * MIB) == pytest.approx(0.5)
    assert epc_fault_ratio(186 * MIB, 93 * MIB, locality=0.1) == \
        pytest.approx(0.05)


@settings(max_examples=50, deadline=None)
@given(ws=st.floats(1e3, 1e12), cache=st.floats(1e3, 1e9))
def test_miss_ratios_are_probabilities(ws, cache):
    for f in (miss_ratio_uniform, miss_ratio_scan):
        assert 0.0 <= f(ws, cache) <= 1.0
    assert 0.0 <= epc_fault_ratio(ws, cache) <= 1.0


@settings(max_examples=50, deadline=None)
@given(n=st.integers(1, 10**8))
def test_zipfian_ratio_bounded(n):
    assert 0.0 <= miss_ratio_zipfian(n, 1056, 9 * MIB) <= 1.0


def test_fig9_shapes_hold():
    """The headline Figure 9 ratios stay inside the paper's bands —
    this is the regression guard for the calibrated cost model."""
    from repro.apps.deployments import MapExperiment, PROFILES
    from repro.workloads import WORKLOAD_A

    bands = {
        "linkedlist": ((1.2, 1.7), (1.0, 1.3)),
        "rbtree": ((19.5, 26.7), (2.2, 2.7)),
        "hashmap": ((3.6, 6.1), (1.6, 2.7)),
    }
    for name, ((lo1, hi1), (lo2, hi2)) in bands.items():
        ex = MapExperiment(PROFILES[name], 100_000, WORKLOAD_A)
        up = ex.run("Unprotected").throughput_ops
        p1 = ex.run("Privagic-1").throughput_ops
        s1 = ex.run("Intel-sdk-1").throughput_ops
        assert lo1 <= up / p1 <= hi1, (name, up / p1)
        assert lo2 <= p1 / s1 <= hi2, (name, p1 / s1)


def test_fig10_shape_holds():
    from repro.apps.deployments import MapExperiment, PROFILES
    from repro.workloads import WORKLOAD_A

    ex = MapExperiment(PROFILES["hashmap"], 20_000, WORKLOAD_A)
    ratio = ex.run("Intel-sdk-2").mean_latency_us / \
        ex.run("Privagic-2").mean_latency_us
    assert 6.4 <= ratio <= 9.2


def test_fig8_shape_holds():
    from repro.apps.deployments import CacheExperiment
    from repro.workloads import WORKLOAD_A

    small = CacheExperiment(64 * MIB // 1024, WORKLOAD_A)
    up = small.run("Unprotected").throughput_ops
    pv = small.run("Privagic").throughput_ops
    sc = small.run("Scone").throughput_ops
    assert 8.5 <= pv / sc <= 10.0
    assert 1.05 <= up / pv <= 1.20
    big = CacheExperiment(32 * GIB // 1024, WORKLOAD_A)
    assert big.run("Privagic").throughput_ops / \
        big.run("Scone").throughput_ops >= 2.3


def test_fractional_counts_accumulate():
    """Regression: per-charge int() truncation lost fractional event
    counts — 10 calls of 1 access at miss_ratio 0.3 reported 0 misses
    and 10 hits.  Counts accumulate as floats and round at reporting."""
    meter = CostMeter(MACHINE_A)
    for _ in range(10):
        meter.memory_accesses(1, miss_ratio=0.3, in_enclave=False)
    assert meter.counts["llc_miss"] == 3
    assert meter.counts["llc_hit"] == 7
    # cycles were never truncated; the counts now match them
    assert meter.breakdown["llc_miss"] == pytest.approx(
        3 * MACHINE_A.llc_miss_cycles)


def test_fractional_epc_faults_accumulate():
    meter = CostMeter(MACHINE_A)
    for _ in range(8):
        meter.memory_accesses(1, miss_ratio=0.5, in_enclave=True,
                              epc_fault_ratio=0.25)
    assert meter.counts["llc_miss_enclave"] == 4
    assert meter.counts["epc_fault"] == 1


def test_compute_default_cycles_per_op():
    meter = CostMeter(MACHINE_A)
    meter.compute(2.5)
    assert meter.cycles == pytest.approx(
        2.5 * MACHINE_A.op_base_cycles)
    meter.compute(1, cycles_per_op=10.0)
    assert meter.counts["compute"] == 4  # round(3.5)


def test_charge_observer_sees_every_charge():
    seen = []
    meter = CostMeter(MACHINE_A)
    meter.set_observer(lambda kind, cycles, count:
                       seen.append((kind, cycles, count)))
    meter.privagic_messages(2)
    meter.memory_accesses(4, miss_ratio=0.5, in_enclave=False)
    assert [kind for kind, _, _ in seen] == \
        ["privagic_msg", "llc_hit", "llc_miss"]
    meter.set_observer(None)
    meter.ecalls(1)
    assert len(seen) == 3


def test_reset_clears_float_counts():
    meter = CostMeter(MACHINE_A)
    meter.memory_accesses(10, miss_ratio=0.5, in_enclave=False)
    meter.reset()
    assert meter.counts == {}
    assert meter.cycles == 0.0
