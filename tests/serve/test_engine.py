"""SecureKVEngine: the persistent partitioned KV app behind the
server — batching, persistence across drives, context retirement."""

import pytest

from repro.serve.engine import SecureKVEngine, compile_secure_kv


@pytest.fixture(scope="module")
def program():
    return compile_secure_kv()


@pytest.fixture
def engine(program):
    return SecureKVEngine(program=program)


def test_partition_colors(program):
    assert set(program.colors) == {"U", "store"}


def test_basic_ops_one_batch(engine):
    digest = SecureKVEngine.digest
    replies = engine.execute([
        ("set", "k1", b"hello"),
        ("get", "k1"),
        ("get", "nope"),
        ("delete", "k1"),
        ("get", "k1"),
        ("delete", "k1"),
    ])
    assert replies == [1, digest(b"hello"), 0, 1, 0, 0]
    assert engine.drives == 1
    assert engine.ops_served == 6


def test_state_persists_across_drives(engine):
    digest = SecureKVEngine.digest
    assert engine.execute([("set", "a", b"1"), ("set", "b", b"2")]) \
        == [1, 1]
    assert engine.execute([("get", "a")]) == [digest(b"1")]
    assert engine.execute([("set", "a", b"3"), ("get", "a")]) \
        == [1, digest(b"3")]
    assert engine.execute([("get", "b")]) == [digest(b"2")]
    assert engine.drives == 4


def test_contexts_are_retired_between_drives(engine):
    for round_number in range(12):
        engine.execute([("set", f"k{round_number}", b"v"),
                        ("get", f"k{round_number}")])
    # Finished app contexts and their worker groups are pruned: a
    # long-lived server scans a constant-size context list.
    assert len(engine.runtime.machine.contexts) == 0
    assert engine.runtime._groups == {}


def test_batching_amortizes_fixed_costs(engine):
    """The whole point of the serve layer: per-op interpreter steps
    must not grow with batch size (the fixed per-drive costs are
    Python-side; steps/op should mildly *shrink* when batched)."""
    engine.execute([("set", "warm", b"x")] * 4)
    before = engine.steps
    engine.execute([("get", "warm")])
    single = engine.steps - before
    before = engine.steps
    engine.execute([("get", "warm")] * 16)
    batched = (engine.steps - before) / 16
    assert batched <= single


def test_empty_batch_is_a_noop(engine):
    assert engine.execute([]) == []
    assert engine.drives == 0


def test_unknown_op_is_rejected(engine):
    with pytest.raises(ValueError):
        engine.execute([("increment", "k")])


def test_digest_is_stable_nonzero_and_56bit():
    d1 = SecureKVEngine.digest(b"payload")
    assert d1 == SecureKVEngine.digest(b"payload")
    assert d1 != SecureKVEngine.digest(b"payload2")
    assert d1 % 2 == 1          # never the 0 miss reply
    assert 0 < d1 < (1 << 56)
    assert SecureKVEngine.digest("text") == \
        SecureKVEngine.digest(b"text")
