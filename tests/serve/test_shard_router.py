"""The shard router: ordering across shards, the cross-process
integrity ledger, and exact restart-and-replay recovery."""

import signal
import socket
import threading
import time

import pytest

from repro.apps.minicache import protocol
from repro.errors import EnclaveCrash, IagoFault, fault_exit_code
from repro.serve.engine import SecureKVEngine
from repro.serve.framing import RequestFramer
from repro.serve.loadgen import LoadClient, LoadError, run_load
from repro.serve.router import RouterConfig, RouterThread

pytestmark = pytest.mark.net


# -- fake shards: scripted worker endpoints -------------------------------------


class FakeShard:
    """A scripted shard endpoint: accepts the router's connection,
    frames requests like a real worker, and answers through a
    ``respond(request) -> response`` hook (honest dict-backed by
    default).  Lets the tests control reply timing and content
    without real worker processes."""

    def __init__(self, respond=None):
        self.listener = socket.socket(socket.AF_INET,
                                      socket.SOCK_STREAM)
        self.listener.bind(("127.0.0.1", 0))
        self.listener.listen(1)
        self.port = self.listener.getsockname()[1]
        self.store = {}
        self.respond = respond or self.honest
        self.conn = None
        self._stop = False
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def honest(self, request):
        if request.command == "set":
            self.store[request.key] = request.data
            return protocol.STORED
        if request.command == "get":
            value = self.store.get(request.key)
            if value is None:
                return protocol.END
            return protocol.encode_value(request.key, value)
        if request.command == "delete":
            return protocol.DELETED \
                if self.store.pop(request.key, None) is not None \
                else protocol.NOT_FOUND
        return protocol.ERROR

    def _run(self):
        # Loop-accept: a router reconnect (or replay stream) after a
        # dropped link gets a fresh session against the same store.
        self.listener.settimeout(0.2)
        while not self._stop:
            try:
                conn, _addr = self.listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self._serve(conn)

    def _serve(self, conn):
        self.conn = conn
        conn.settimeout(0.2)
        framer = RequestFramer()
        try:
            while not self._stop:
                try:
                    data = conn.recv(65536)
                except socket.timeout:
                    continue
                except OSError:
                    return
                if not data:
                    return
                framer.feed(data)
                frames, _error = framer.drain()
                for raw in frames:
                    response = self.respond(protocol.parse_request(raw))
                    if response is not None:
                        try:
                            conn.sendall(response.encode("latin-1"))
                        except OSError:
                            return
        finally:
            conn.close()

    def drop(self):
        """Reset the live connection (the listener keeps accepting):
        a link failure without endpoint death."""
        conn = self.conn
        if conn is not None:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def close(self):
        self._stop = True
        try:
            self.listener.close()
        except OSError:
            pass


def make_router(shards=2, fakes=None, **kwargs):
    if fakes is not None:
        kwargs["external_shards"] = [("127.0.0.1", fake.port)
                                     for fake in fakes]
        shards = len(fakes)
    config = RouterConfig(port=0, shards=shards, **kwargs)
    return RouterThread(config)


def keys_for_each_shard(router, count=1):
    """Deterministic keys owned by shard0, shard1, ... (``count``
    keys each), straight from the router's own ring."""
    wanted = {shard.name: [] for shard in router.shards}
    index = 0
    while any(len(keys) < count for keys in wanted.values()):
        key = f"user{index}"
        owner = router.ring.lookup(key)
        if len(wanted[owner]) < count:
            wanted[owner].append(key)
        index += 1
    return [wanted[shard.name] for shard in router.shards]


# -- ordering -------------------------------------------------------------------


def test_roundtrip_through_fake_shards():
    fakes = [FakeShard(), FakeShard()]
    with make_router(fakes=fakes) as rt:
        client = LoadClient("127.0.0.1", rt.router.port)
        assert client.set("k1", b"hello") == protocol.STORED
        assert protocol.parse_value_response(client.get("k1")) \
            == b"hello"
        assert client.get("missing") == protocol.END
        assert client.delete("k1") == protocol.DELETED
        assert client.delete("k1") == protocol.NOT_FOUND
        client.close()
        rt.stop()
    for fake in fakes:
        fake.close()
    assert rt.error is None
    assert rt.router.drained


def test_slow_shard_does_not_reorder_a_connection():
    # Shard 0 answers with a delay; a pipelined burst alternating
    # between the slow and fast shard must still come back in
    # request order — the fast shard's replies wait in their slots.
    delay = {"seconds": 0.05}
    fakes = [None, None]

    def slow(request):
        time.sleep(delay["seconds"])
        return fakes[0].honest(request)

    fakes[0] = FakeShard(respond=slow)
    fakes[1] = FakeShard()
    with make_router(fakes=fakes) as rt:
        (slow_keys,), (fast_keys,) = keys_for_each_shard(rt.router)
        client = LoadClient("127.0.0.1", rt.router.port)
        assert client.set(slow_keys, b"slowval") == protocol.STORED
        assert client.set(fast_keys, b"fastval") == protocol.STORED
        burst = "".join(
            protocol.encode_get(slow_keys if i % 2 == 0
                                else fast_keys)
            for i in range(8))
        client.sock.sendall(burst.encode("latin-1"))
        for i in range(8):
            value = protocol.parse_value_response(
                client._read_response())
            expected = b"slowval" if i % 2 == 0 else b"fastval"
            assert value == expected, f"reply {i} out of order"
        client.close()
        rt.stop()
    for fake in fakes:
        fake.close()
    assert rt.error is None


def test_two_connections_interleave_independently():
    fakes = [FakeShard(), FakeShard()]
    with make_router(fakes=fakes) as rt:
        a = LoadClient("127.0.0.1", rt.router.port)
        b = LoadClient("127.0.0.1", rt.router.port)
        assert a.set("shared", b"one") == protocol.STORED
        assert protocol.parse_value_response(b.get("shared")) == b"one"
        assert b.set("shared", b"two") == protocol.STORED
        assert protocol.parse_value_response(a.get("shared")) == b"two"
        a.close()
        b.close()
        rt.stop()
    for fake in fakes:
        fake.close()
    assert rt.error is None


# -- the integrity ledger -------------------------------------------------------


def test_lying_shard_get_is_an_iago_fault():
    def lying(request):
        if request.command == "get":
            return protocol.encode_value(request.key, b"forged!")
        return fake.honest(request)

    fake = FakeShard(respond=lying)
    with make_router(fakes=[fake]) as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        assert client.set("k", b"honest") == protocol.STORED
        with pytest.raises((LoadError, OSError)):
            client.get("k")
            client.get("k")     # in case the reply raced the abort
        client.close()
        rt.join()
    fake.close()
    assert isinstance(rt.error, IagoFault)
    assert fault_exit_code(rt.error) == 5


def test_lying_shard_miss_is_an_iago_fault():
    def denying(request):
        if request.command == "get":
            return protocol.END      # claims the key is gone
        return fake.honest(request)

    fake = FakeShard(respond=denying)
    with make_router(fakes=[fake]) as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        assert client.set("k", b"kept") == protocol.STORED
        with pytest.raises((LoadError, OSError)):
            client.get("k")
            client.get("k")
        client.close()
        rt.join()
    fake.close()
    assert isinstance(rt.error, IagoFault)


def test_unsolicited_shard_reply_is_an_iago_fault():
    def chatty(request):
        return fake.honest(request) + protocol.STORED

    fake = FakeShard(respond=chatty)
    with make_router(fakes=[fake]) as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        with pytest.raises((LoadError, OSError)):
            client.set("k", b"v")
            client.get("k")
        client.close()
        rt.join()
    fake.close()
    assert isinstance(rt.error, IagoFault)


def test_desynchronized_shard_stream_is_an_iago_fault():
    def garbage(request):
        return "VALUE k 0 notanumber\r\n"

    fake = FakeShard(respond=garbage)
    with make_router(fakes=[fake]) as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        with pytest.raises((LoadError, OSError)):
            client.get("k")
            client.get("k")
        client.close()
        rt.join()
    fake.close()
    assert isinstance(rt.error, IagoFault)


# -- recovery: real worker processes --------------------------------------------


@pytest.fixture
def expected_digest():
    return SecureKVEngine.digest


def test_sigkill_mid_run_recovers_with_exact_state(expected_digest):
    with make_router(shards=2, batch=8) as rt:
        client = LoadClient("127.0.0.1", rt.router.port)
        expected = {}
        for i in range(40):
            value = f"value{i}".encode()
            assert client.set(f"user{i}", value) == protocol.STORED
            expected[f"user{i}"] = value
        victim = rt.router.shards[0]
        victim.proc.send_signal(signal.SIGKILL)
        # Every key must still read back correctly through the
        # replayed worker — and every reply passes the ledger check.
        for i in range(40):
            response = client.get(f"user{i}")
            assert protocol.parse_value_response(response) \
                == expected[f"user{i}"]
        client.close()
        rt.stop()
    assert rt.error is None
    assert rt.router.drained
    assert sum(s.restarts for s in rt.router.shards) == 1
    assert rt.router.final_digests() == {
        key: expected_digest(value)
        for key, value in expected.items()}


def test_crash_after_fuse_recovers_in_flight_requests():
    # The chaos fuse kills shard 0 at a deterministic op count while
    # load is in flight; recovery must replay acked state and
    # re-forward the in-flight frames — clients see no errors.
    config = dict(shards=2, batch=8, crash_after={0: 50})
    with make_router(**config) as rt:
        report = run_load("127.0.0.1", rt.router.port, workload="A",
                          clients=4, ops=300, records=48, seed=11,
                          value_bytes=16)
        rt.stop()
    assert rt.error is None
    assert report["errors"] == 0
    assert report["dropped_connections"] == 0
    assert report["ops"] == 300
    registry = rt.router.registry
    assert registry.counter("router.shard_restarts").get() == 1
    assert registry.counter("router.replayed_keys").get() > 0


def test_crashed_run_converges_to_the_crash_free_state():
    # The differential gate: the same seeded lockstep load with and
    # without a mid-run shard kill must end in the same ledger —
    # exact replay, not approximately-recovered state.
    def final_state(crash_after):
        with make_router(shards=2, batch=8,
                         crash_after=crash_after) as rt:
            run_load("127.0.0.1", rt.router.port, workload="A",
                     clients=3, ops=240, records=32, seed=29,
                     value_bytes=16, lockstep=True)
            rt.stop()
        assert rt.error is None
        assert rt.router.drained
        return rt.router.final_digests()

    clean = final_state({})
    crashed = final_state({0: 60})
    assert clean == crashed


def test_no_recover_makes_a_shard_death_an_enclave_crash():
    with make_router(shards=2, batch=4, recover=False) as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        assert client.set("k", b"v") == protocol.STORED
        rt.router.shards[0].proc.send_signal(signal.SIGKILL)
        with pytest.raises((LoadError, OSError)):
            for i in range(50):
                client.set(f"fill{i}", b"v")
        client.close()
        rt.join()
    assert isinstance(rt.error, EnclaveCrash)
    assert fault_exit_code(rt.error) == 6


def test_external_shard_death_is_an_enclave_crash():
    # External endpoints cannot be respawned: death is typed, even
    # with recovery on.
    fake = FakeShard()
    with make_router(fakes=[fake], recover=True) as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        assert client.set("k", b"v") == protocol.STORED
        fake.close()
        with pytest.raises((LoadError, OSError)):
            for i in range(50):
                client.set(f"fill{i}", b"v")
        client.close()
        rt.join()
    assert isinstance(rt.error, EnclaveCrash)


# -- lifecycle ------------------------------------------------------------------


def test_max_requests_drains_and_stops():
    rt = make_router(shards=2, batch=2, max_requests=6)
    rt.start()
    client = LoadClient("127.0.0.1", rt.router.port)
    for i in range(6):
        assert client.set(f"k{i}", b"v") == protocol.STORED
    client.close()
    rt.join()
    assert rt.error is None
    assert rt.router.drained
    assert rt.router.registry.counter("router.requests").get() == 6


def test_loadgen_against_real_shards_all_workloads():
    with make_router(shards=2, batch=8) as rt:
        for name in ("A", "C", "F"):
            report = run_load("127.0.0.1", rt.router.port,
                              workload=name, clients=2, ops=30,
                              records=16, value_bytes=16, seed=3)
            assert report["dropped_connections"] == 0
            assert report["errors"] == 0
            assert report["ops"] == 30
        rt.stop()
    assert rt.error is None
    registry = rt.router.registry
    assert registry.counter("router.requests").get() > 0
    for shard in rt.router.shards:
        assert f"router.ring_share[{shard.index}]" in registry
