"""Failure-detection primitives: bounded-backoff connects, the
liveness monitor, and the per-shard circuit breaker — all driven
with explicit clocks, no sleeping."""

import socket
import threading

import pytest

from repro.errors import NetworkFault, fault_exit_code
from repro.serve.health import (
    CircuitBreaker,
    HealthMonitor,
    connect_with_backoff,
    probe_key,
)

# -- connect_with_backoff -------------------------------------------------------


def closed_port():
    """A loopback port with nothing listening on it."""
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


def test_connect_succeeds_first_try():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    try:
        sock = connect_with_backoff(
            ("127.0.0.1", listener.getsockname()[1]),
            timeout=2.0, retries=0, backoff_base=0.01,
            backoff_cap=0.1)
        sock.close()
    finally:
        listener.close()


def test_connect_exhaustion_is_a_typed_network_fault():
    port = closed_port()
    sleeps = []
    with pytest.raises(NetworkFault) as excinfo:
        connect_with_backoff(
            ("127.0.0.1", port), timeout=0.5, retries=3,
            backoff_base=0.01, backoff_cap=0.02,
            describe="shard 7", sleep=sleeps.append)
    # 1 + retries attempts; exponential backoff capped.
    assert sleeps == [0.01, 0.02, 0.02]
    assert "shard 7" in str(excinfo.value)
    assert "4 attempt(s)" in str(excinfo.value)
    assert fault_exit_code(excinfo.value) == 9


def test_connect_retries_until_a_listener_appears():
    port = closed_port()
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)

    def open_late(_pause):
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", port))
        listener.listen(1)

    try:
        sock = connect_with_backoff(
            ("127.0.0.1", port), timeout=2.0, retries=2,
            backoff_base=0.0, backoff_cap=0.0, sleep=open_late)
        sock.close()
    finally:
        listener.close()


def test_connect_applies_the_wrap_hook():
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    wrapped = []
    try:
        sock = connect_with_backoff(
            ("127.0.0.1", listener.getsockname()[1]),
            timeout=2.0, retries=0, backoff_base=0.01,
            backoff_cap=0.1,
            wrap=lambda s: wrapped.append(s) or s)
        assert wrapped == [sock]
        sock.close()
    finally:
        listener.close()


# -- CircuitBreaker -------------------------------------------------------------


def test_breaker_opens_at_budget_and_closes_on_reply():
    breaker = CircuitBreaker(budget=2)
    assert breaker.allow()
    breaker.trip()
    assert breaker.allow()          # 1 of 2
    breaker.trip()
    assert not breaker.allow()      # budget spent
    breaker.close()                 # any reply ends the streak
    assert breaker.allow()
    assert "OPEN" not in repr(breaker)


# -- HealthMonitor --------------------------------------------------------------


def test_monitor_disabled_without_either_timeout():
    monitor = HealthMonitor()
    assert not monitor.enabled
    assert HealthMonitor(probe_interval=1.0).enabled
    assert HealthMonitor(forward_timeout=1.0).enabled


def test_probe_only_after_the_idle_interval():
    monitor = HealthMonitor(probe_interval=5.0, probe_timeout=2.0)
    monitor.attach("shard0", now=100.0)
    assert not monitor.want_probe("shard0", idle=True, now=104.0)
    assert monitor.want_probe("shard0", idle=True, now=105.0)
    # Busy shards are never probed: their in-flight age is the
    # stronger signal.
    assert not monitor.want_probe("shard0", idle=False, now=110.0)


def test_outstanding_probe_suppresses_another():
    monitor = HealthMonitor(probe_interval=5.0, probe_timeout=2.0)
    monitor.attach("shard0", now=0.0)
    assert monitor.want_probe("shard0", idle=True, now=6.0)
    monitor.note_probe("shard0", now=6.0)
    assert monitor.probe_outstanding("shard0")
    assert not monitor.want_probe("shard0", idle=True, now=7.0)


def test_unanswered_probe_is_a_verdict():
    monitor = HealthMonitor(probe_interval=5.0, probe_timeout=2.0)
    monitor.attach("shard0", now=0.0)
    monitor.note_probe("shard0", now=6.0)
    assert monitor.verdict("shard0", None, now=7.9) is None
    verdict = monitor.verdict("shard0", None, now=8.1)
    assert verdict is not None and "probe" in verdict


def test_any_reply_resolves_the_probe():
    monitor = HealthMonitor(probe_interval=5.0, probe_timeout=2.0)
    monitor.attach("shard0", now=0.0)
    monitor.note_probe("shard0", now=6.0)
    monitor.note_reply("shard0", now=7.0)
    assert not monitor.probe_outstanding("shard0")
    assert monitor.verdict("shard0", None, now=100.0) is None \
        or "probe" not in monitor.verdict("shard0", None, now=100.0)


def test_old_inflight_request_is_a_verdict():
    monitor = HealthMonitor(forward_timeout=3.0)
    monitor.attach("shard0", now=0.0)
    assert monitor.verdict("shard0", 10.0, now=12.9) is None
    verdict = monitor.verdict("shard0", 10.0, now=13.1)
    assert verdict is not None and "in-flight" in verdict
    # Idle shards have no oldest request to age.
    assert monitor.verdict("shard0", None, now=1000.0) is None


def test_untracked_shard_has_no_verdict():
    monitor = HealthMonitor(probe_interval=1.0, forward_timeout=1.0)
    assert monitor.verdict("ghost", 0.0, now=100.0) is None
    assert not monitor.want_probe("ghost", idle=True, now=100.0)
    monitor.note_reply("ghost")          # must not raise
    monitor.note_probe("ghost")


def test_probe_key_namespace():
    assert probe_key("shard3") == "__probe__shard3"
