"""``repro serve`` / ``repro loadgen`` end-to-end: real subprocess,
real sockets, typed exit codes."""

import os
import subprocess
import sys

import pytest

from repro.cli import main
from repro.serve.loadgen import LoadClient, LoadError

pytestmark = pytest.mark.net

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def spawn_serve(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC)
    env.setdefault("PYTHONUNBUFFERED", "1")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, env=env)
    line = proc.stdout.readline()
    assert line.startswith("serve: listening on "), line
    port = int(line.split()[3].rsplit(":", 1)[1])
    return proc, port


def test_serve_loadgen_roundtrip(capsys):
    # Preload (32 records) + 200 workload-C reads = exactly 232
    # requests, after which the server drains itself and exits.
    proc, port = spawn_serve("--max-requests", "232", "--stats")
    try:
        code = main(["loadgen", "--port", str(port),
                     "--workload", "C", "--clients", "4",
                     "--ops", "200", "--records", "32",
                     "--value-bytes", "32"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dropped connections: 0" in out
        assert "throughput:" in out and "ops/s" in out
        stdout, stderr = proc.communicate(timeout=30)
    finally:
        proc.kill()
    assert proc.returncode == 0, stderr
    assert "serve: drained cleanly:" in stdout
    assert "serve.batch_size" in stdout      # --stats dump


def test_serve_loadgen_json_report(capsys):
    import json

    # Preload (16) + 30 workload-A ops (reads and updates are one
    # request each) = exactly 46 requests.
    proc, port = spawn_serve("--max-requests", "46")
    try:
        code = main(["loadgen", "--port", str(port),
                     "--workload", "A", "--clients", "2",
                     "--ops", "30", "--records", "16", "--json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 0
        assert report["workload"] == "A"
        assert report["dropped_connections"] == 0
        assert {"ops_per_s", "p50_ms", "p95_ms", "p99_ms"} \
            <= report.keys()
        proc.communicate(timeout=30)
    finally:
        proc.kill()
    assert proc.returncode == 0


def test_serve_chaos_over_tcp_exits_with_typed_code():
    proc, port = spawn_serve("--inject", "channel-drop:*:spawn:1")
    try:
        client = LoadClient("127.0.0.1", port, timeout=5.0)
        try:
            client.set("k", b"v")
        except (LoadError, OSError):
            pass
        client.close()
        stdout, stderr = proc.communicate(timeout=30)
    finally:
        proc.kill()
    assert proc.returncode == 4, (stdout, stderr)
    assert "chaos: injecting [channel-drop:*:spawn:1]" in stderr
    assert "fault[DeadlockFault] exit=4:" in stderr


def test_loadgen_unknown_workload_is_an_error(capsys):
    assert main(["loadgen", "--port", "1", "--workload",
                 "ycsb-z"]) == 1
    assert "unknown YCSB workload" in capsys.readouterr().err


def test_loadgen_connection_refused_is_oserror_exit(capsys):
    # Nothing listens on the discard port; exit code 2 is the OSError
    # lane of the CLI exit-code table.
    assert main(["loadgen", "--port", "9", "--ops", "4",
                 "--clients", "1"]) == 2
