"""Socket-level chaos: the net-* plan grammar, the deterministic
interposition layer, and the lockstep network-chaos differential."""

import socket
import time

import pytest

from repro.faults.netchaos import (
    HANG,
    IDENTICAL,
    SHORT_READ_BYTES,
    SILENTLY_WRONG,
    TYPED_FAULT,
    ChaosSocket,
    NetChaos,
    netchaos_sweep,
    summarize,
)
from repro.faults.plan import FaultPlan, FaultSpecError

# -- the net-* grammar ----------------------------------------------------------


def test_net_plan_parses_and_roundtrips():
    spec = ("net-reset:shard0:3,net-slow:*:2:50,"
            "net-short:shard1:1,net-garble:shard0:4")
    plan = FaultPlan.parse(spec)
    assert plan.spec() == spec
    reset, slow, short, garble = plan.entries
    assert (reset.action, reset.target, reset.nth) \
        == ("net-reset", "shard0", 3)
    assert (slow.target, slow.nth, slow.mode) == ("*", 2, "50")
    assert short.nth == 1
    assert garble.action == "net-garble"


def test_net_slow_defaults_to_25ms():
    plan = FaultPlan.parse("net-slow:shard0:1")
    assert plan.entries[0].mode == "25"
    assert plan.spec() == "net-slow:shard0:1:25"


@pytest.mark.parametrize("spec", [
    "net-reset:shard0",             # missing NTH
    "net-reset:shard0:0",           # occurrence below 1
    "net-reset:shard0:x",           # non-integer NTH
    "net-slow:shard0:1:0",          # non-positive delay
    "net-slow:shard0:1:fast",       # non-integer delay
    "net-short:shard0:1:extra",     # trailing field
    "net-wobble:shard0:1",          # unknown action
])
def test_bad_net_specs_are_typed_errors(spec):
    with pytest.raises(FaultSpecError):
        FaultPlan.parse(spec)


def test_random_net_plans_are_reproducible():
    one = FaultPlan.random_net(7, shards=2)
    two = FaultPlan.random_net(7, shards=2)
    assert one.spec() == two.spec()
    assert 1 <= len(one.entries) <= 3
    for entry in one.entries:
        assert entry.action.startswith("net-")
        # Shard-only plans never draw the ``*`` wildcard: at runtime
        # it would match the wrapped *client* streams too, making
        # client-visible connection errors look silently-wrong to
        # the ledger differential.
        assert entry.target in ("shard0", "shard1")
    assert FaultPlan.random_net(8, shards=2).spec() != one.spec() \
        or FaultPlan.random_net(9, shards=2).spec() != one.spec()


def test_random_net_can_target_the_client_side():
    specs = "".join(
        FaultPlan.random_net(seed, shards=1, include_client=True,
                             count=3).spec()
        for seed in range(40))
    assert "client" in specs


# -- the chaos engine -----------------------------------------------------------


def test_chaos_rejects_non_net_entries():
    plan = FaultPlan.parse("enclave-crash:red:1")
    with pytest.raises(ValueError):
        NetChaos(plan)


def test_pick_counts_per_entry_and_fires_once():
    chaos = NetChaos(FaultPlan.parse("net-reset:shard0:3"))
    assert chaos.pick("send", "shard0") is None
    assert chaos.pick("recv", "shard1") is None   # wrong endpoint
    assert chaos.pick("send", "shard0") is None
    entry = chaos.pick("recv", "shard0")          # 3rd shard0 op
    assert entry is not None and entry.fired
    assert chaos.pick("send", "shard0") is None   # single-shot
    assert chaos.injected == {"net-reset": 1}


def test_wildcard_entries_match_any_endpoint():
    chaos = NetChaos(FaultPlan.parse("net-slow:*:2:10"))
    assert chaos.pick("send", "shard0") is None
    assert chaos.pick("send", "client") is not None


def test_garble_only_fires_on_recv():
    chaos = NetChaos(FaultPlan.parse("net-garble:shard0:1"))
    # Sends never count against a recv-only action.
    for _ in range(5):
        assert chaos.pick("send", "shard0") is None
    assert chaos.pick("recv", "shard0") is not None


def test_garble_is_seeded_and_corrupting():
    data = b"VALUE user1 0 24\r\n"
    one = NetChaos(FaultPlan.parse("net-garble:*:1"), seed=5)
    two = NetChaos(FaultPlan.parse("net-garble:*:1"), seed=5)
    other = NetChaos(FaultPlan.parse("net-garble:*:1"), seed=6)
    mangled = [one.garble(data) for _ in range(8)]
    assert mangled == [two.garble(data) for _ in range(8)]
    assert any(item != data for item in mangled)
    assert mangled != [other.garble(data) for _ in range(8)]
    for item in mangled:
        # Truncated tail or a single flipped bit — never growth.
        assert 1 <= len(item) <= len(data)
    assert one.garble(b"") == b""


# -- the socket proxy -----------------------------------------------------------


def chaos_pair(spec, seed=0):
    left, right = socket.socketpair()
    chaos = NetChaos(FaultPlan.parse(spec), seed=seed)
    return chaos.wrap(left, "shard0"), right, chaos


def test_injected_reset_raises_connection_reset():
    wrapped, peer, _ = chaos_pair("net-reset:shard0:2")
    try:
        wrapped.sendall(b"one")
        with pytest.raises(ConnectionResetError) as excinfo:
            wrapped.sendall(b"two")
        assert "injected reset" in str(excinfo.value)
    finally:
        wrapped.close()
        peer.close()


def test_short_write_is_lossless():
    wrapped, peer, chaos = chaos_pair("net-short:shard0:1")
    try:
        wrapped.sendall(b"get user1\r\n")
        received = peer.recv(64)
        while len(received) < 11:
            received += peer.recv(64)
        assert received == b"get user1\r\n"
        assert chaos.injected == {"net-short": 1}
    finally:
        wrapped.close()
        peer.close()


def test_short_read_caps_the_buffer():
    wrapped, peer, _ = chaos_pair("net-short:shard0:1")
    try:
        peer.sendall(b"VALUE user1 0 4\r\nabcd\r\nEND\r\n")
        first = wrapped.recv(65536)
        assert len(first) == SHORT_READ_BYTES
        rest = b""
        while len(first) + len(rest) < 28:
            rest += wrapped.recv(65536)
        assert first + rest == b"VALUE user1 0 4\r\nabcd\r\nEND\r\n"
    finally:
        wrapped.close()
        peer.close()


def test_slow_op_stalls_for_the_plan_delay():
    wrapped, peer, _ = chaos_pair("net-slow:shard0:1:60")
    try:
        started = time.monotonic()
        wrapped.sendall(b"x")
        assert time.monotonic() - started >= 0.05
        assert peer.recv(16) == b"x"
    finally:
        wrapped.close()
        peer.close()


def test_proxy_delegates_everything_else():
    wrapped, peer, _ = chaos_pair("net-reset:shard0:9")
    try:
        assert wrapped.fileno() == wrapped._sock.fileno()
        wrapped.setblocking(False)
        assert not wrapped._sock.getblocking()
        assert "shard0" in repr(wrapped)
    finally:
        wrapped.close()
        peer.close()


# -- the lockstep differential --------------------------------------------------


@pytest.mark.net
def test_small_sweep_is_identical_or_typed():
    records = netchaos_sweep(
        seeds=[1, 2, 3], ops=60, clients=2, records=12,
        watchdog=60.0)
    summary = summarize(records)
    assert summary["runs"] == 3
    assert summary[SILENTLY_WRONG] == 0
    assert summary[HANG] == 0
    assert summary[IDENTICAL] + summary[TYPED_FAULT] == 3
    for record in records:
        assert record["plan"]
        if record["verdict"] == TYPED_FAULT:
            assert record["fault"]


@pytest.mark.chaos
def test_acceptance_sweep_100_seeds():
    records = netchaos_sweep(
        seeds=list(range(100)), ops=120, clients=2, records=16,
        watchdog=120.0)
    summary = summarize(records)
    assert summary[SILENTLY_WRONG] == 0
    assert summary[HANG] == 0
    assert summary[IDENTICAL] + summary[TYPED_FAULT] == 100
