"""RequestFramer: incremental framing + desync rejection."""

import pytest

from repro.serve.framing import FrameError, RequestFramer


def drain_all(framer):
    frames, error = framer.drain()
    assert error is None
    return frames


def test_single_line_frames():
    framer = RequestFramer()
    framer.feed(b"get user1\r\ndelete user2\r\n")
    assert drain_all(framer) == ["get user1\r\n", "delete user2\r\n"]
    assert framer.pending_bytes == 0


def test_partial_header_waits():
    framer = RequestFramer()
    framer.feed(b"get use")
    assert drain_all(framer) == []
    framer.feed(b"r1\r\n")
    assert drain_all(framer) == ["get user1\r\n"]


def test_set_waits_for_data_block():
    framer = RequestFramer()
    framer.feed(b"set k 0 0 5\r\nhel")
    assert drain_all(framer) == []
    framer.feed(b"lo\r\n")
    assert drain_all(framer) == ["set k 0 0 5\r\nhello\r\n"]


def test_set_data_may_contain_crlf():
    framer = RequestFramer()
    framer.feed(b"set k 0 0 6\r\na\r\nb!!\r\nget x\r\n")
    assert drain_all(framer) == ["set k 0 0 6\r\na\r\nb!!\r\n",
                                 "get x\r\n"]


def test_garbage_line_is_a_recoverable_frame():
    # Unknown commands still frame; the protocol layer answers ERROR
    # and the connection survives.
    framer = RequestFramer()
    framer.feed(b"bogus stuff here\r\nget k\r\n")
    assert drain_all(framer) == ["bogus stuff here\r\n", "get k\r\n"]


def test_empty_line_is_a_recoverable_frame():
    framer = RequestFramer()
    framer.feed(b"\r\n")
    assert drain_all(framer) == ["\r\n"]


def test_oversized_header_is_a_desync():
    framer = RequestFramer(max_line=64)
    framer.feed(b"g" * 100)
    frames, error = framer.drain()
    assert frames == []
    assert isinstance(error, FrameError)
    # Broken framer ignores further input.
    framer.feed(b"get k\r\n")
    assert framer.drain() == ([], None)


def test_set_bad_byte_count_is_a_desync():
    for count in (b"abc", b"-3"):
        framer = RequestFramer()
        framer.feed(b"set k 0 0 " + count + b"\r\n")
        frames, error = framer.drain()
        assert frames == []
        assert isinstance(error, FrameError)


def test_set_oversized_data_is_a_desync():
    framer = RequestFramer(max_data=16)
    framer.feed(b"set k 0 0 1000\r\n")
    _frames, error = framer.drain()
    assert isinstance(error, FrameError)


def test_set_unterminated_data_is_a_desync():
    framer = RequestFramer()
    framer.feed(b"set k 0 0 5\r\nhelloXXget k\r\n")
    frames, error = framer.drain()
    assert frames == []
    assert isinstance(error, FrameError)


def test_set_with_wrong_arity_frames_as_one_line():
    # No byte count to trust: treated as a single-line frame the
    # protocol layer rejects (ERROR), not a desync.
    framer = RequestFramer()
    framer.feed(b"set k 0 0\r\nget x\r\n")
    assert drain_all(framer) == ["set k 0 0\r\n", "get x\r\n"]


def test_frames_yielded_before_a_desync_survive():
    framer = RequestFramer()
    framer.feed(b"get a\r\nset k 0 0 zz\r\n")
    frames, error = framer.drain()
    assert frames == ["get a\r\n"]
    assert isinstance(error, FrameError)
