"""RequestFramer: incremental framing + desync rejection."""

import pytest

from repro.serve.framing import (
    FrameError,
    RequestFramer,
    ResponseFramer,
)


def drain_all(framer):
    frames, error = framer.drain()
    assert error is None
    return frames


def test_single_line_frames():
    framer = RequestFramer()
    framer.feed(b"get user1\r\ndelete user2\r\n")
    assert drain_all(framer) == ["get user1\r\n", "delete user2\r\n"]
    assert framer.pending_bytes == 0


def test_partial_header_waits():
    framer = RequestFramer()
    framer.feed(b"get use")
    assert drain_all(framer) == []
    framer.feed(b"r1\r\n")
    assert drain_all(framer) == ["get user1\r\n"]


def test_set_waits_for_data_block():
    framer = RequestFramer()
    framer.feed(b"set k 0 0 5\r\nhel")
    assert drain_all(framer) == []
    framer.feed(b"lo\r\n")
    assert drain_all(framer) == ["set k 0 0 5\r\nhello\r\n"]


def test_set_data_may_contain_crlf():
    framer = RequestFramer()
    framer.feed(b"set k 0 0 6\r\na\r\nb!!\r\nget x\r\n")
    assert drain_all(framer) == ["set k 0 0 6\r\na\r\nb!!\r\n",
                                 "get x\r\n"]


def test_garbage_line_is_a_recoverable_frame():
    # Unknown commands still frame; the protocol layer answers ERROR
    # and the connection survives.
    framer = RequestFramer()
    framer.feed(b"bogus stuff here\r\nget k\r\n")
    assert drain_all(framer) == ["bogus stuff here\r\n", "get k\r\n"]


def test_empty_line_is_a_recoverable_frame():
    framer = RequestFramer()
    framer.feed(b"\r\n")
    assert drain_all(framer) == ["\r\n"]


def test_oversized_header_is_a_desync():
    framer = RequestFramer(max_line=64)
    framer.feed(b"g" * 100)
    frames, error = framer.drain()
    assert frames == []
    assert isinstance(error, FrameError)
    # Broken framer ignores further input.
    framer.feed(b"get k\r\n")
    assert framer.drain() == ([], None)


def test_set_bad_byte_count_is_a_desync():
    for count in (b"abc", b"-3"):
        framer = RequestFramer()
        framer.feed(b"set k 0 0 " + count + b"\r\n")
        frames, error = framer.drain()
        assert frames == []
        assert isinstance(error, FrameError)


def test_set_oversized_data_is_a_desync():
    framer = RequestFramer(max_data=16)
    framer.feed(b"set k 0 0 1000\r\n")
    _frames, error = framer.drain()
    assert isinstance(error, FrameError)


def test_set_unterminated_data_is_a_desync():
    framer = RequestFramer()
    framer.feed(b"set k 0 0 5\r\nhelloXXget k\r\n")
    frames, error = framer.drain()
    assert frames == []
    assert isinstance(error, FrameError)


def test_set_with_wrong_arity_frames_as_one_line():
    # No byte count to trust: treated as a single-line frame the
    # protocol layer rejects (ERROR), not a desync.
    framer = RequestFramer()
    framer.feed(b"set k 0 0\r\nget x\r\n")
    assert drain_all(framer) == ["set k 0 0\r\n", "get x\r\n"]


def test_frames_yielded_before_a_desync_survive():
    framer = RequestFramer()
    framer.feed(b"get a\r\nset k 0 0 zz\r\n")
    frames, error = framer.drain()
    assert frames == ["get a\r\n"]
    assert isinstance(error, FrameError)


# -- ResponseFramer: the router's client-side framing ---------------------------


def test_response_single_line_stream():
    framer = ResponseFramer()
    framer.feed(b"STORED\r\nDELETED\r\nNOT_FOUND\r\nEND\r\n")
    assert framer.drain() == ["STORED\r\n", "DELETED\r\n",
                              "NOT_FOUND\r\n", "END\r\n"]
    assert framer.pending_bytes == 0


def test_response_value_with_data_and_trailer():
    framer = ResponseFramer()
    framer.feed(b"VALUE k 0 5\r\nhello\r\nEND\r\nSTORED\r\n")
    assert framer.drain() == ["VALUE k 0 5\r\nhello\r\nEND\r\n",
                              "STORED\r\n"]


def test_response_partial_reads_across_hops():
    # A VALUE reply trickling in byte-sized pieces (the shard hop
    # fragmenting writes) must assemble exactly once.
    full = b"VALUE k 0 6\r\nab\r\ncd\r\nEND\r\nSTORED\r\n"
    for cut in range(1, len(full)):
        framer = ResponseFramer()
        framer.feed(full[:cut])
        first = framer.drain()
        framer.feed(full[cut:])
        responses = first + framer.drain()
        assert responses == ["VALUE k 0 6\r\nab\r\ncd\r\nEND\r\n",
                             "STORED\r\n"], cut


def test_response_data_may_contain_value_like_lines():
    framer = ResponseFramer()
    payload = b"VALUE fake 0 3\r\n"
    framer.feed(b"VALUE k 0 %d\r\n%s\r\nEND\r\n"
                % (len(payload), payload))
    responses = framer.drain()
    assert len(responses) == 1
    assert payload.decode("latin-1") in responses[0]


def test_response_oversized_line_is_a_desync():
    framer = ResponseFramer(max_line=32)
    framer.feed(b"X" * 64)
    with pytest.raises(FrameError):
        framer.drain()


def test_response_oversized_value_is_a_desync():
    framer = ResponseFramer(max_data=16)
    framer.feed(b"VALUE k 0 100000\r\n")
    with pytest.raises(FrameError):
        framer.drain()


def test_response_bad_value_count_is_a_desync():
    for count in (b"abc", b"-3"):
        framer = ResponseFramer()
        framer.feed(b"VALUE k 0 " + count + b"\r\n")
        with pytest.raises(FrameError):
            framer.drain()


def test_response_malformed_value_header_is_a_desync():
    framer = ResponseFramer()
    framer.feed(b"VALUE k 0\r\n")
    with pytest.raises(FrameError):
        framer.drain()


def test_response_missing_end_trailer_is_a_desync():
    framer = ResponseFramer()
    framer.feed(b"VALUE k 0 2\r\nab\r\nSTORED\r\n")
    with pytest.raises(FrameError):
        framer.drain()


def test_response_unterminated_data_is_a_desync():
    framer = ResponseFramer()
    framer.feed(b"VALUE k 0 5\r\nhelloXXEND\r\nzz")
    with pytest.raises(FrameError):
        framer.drain()


# -- net-chaos edge cases: short reads, boundary splits, empty payloads ----------


def test_request_byte_at_a_time_reassembly():
    # The worst net-short stream: every recv delivers one byte.
    full = b"set k 0 0 6\r\na\r\nb!!\r\nget k\r\ndelete k\r\n"
    framer = RequestFramer()
    frames = []
    for i in range(len(full)):
        framer.feed(full[i:i + 1])
        frames += drain_all(framer)
    assert frames == ["set k 0 0 6\r\na\r\nb!!\r\n", "get k\r\n",
                      "delete k\r\n"]
    assert framer.pending_bytes == 0


def test_request_split_exactly_at_the_crlf_boundary():
    # The header's CRLF itself can straddle two recvs — including a
    # split *between* CR and LF.
    framer = RequestFramer()
    framer.feed(b"get user1\r")
    assert drain_all(framer) == []
    framer.feed(b"\n")
    assert drain_all(framer) == ["get user1\r\n"]

    framer = RequestFramer()
    framer.feed(b"set k 0 0 2\r\nab\r")
    assert drain_all(framer) == []
    framer.feed(b"\n")
    assert drain_all(framer) == ["set k 0 0 2\r\nab\r\n"]


def test_request_zero_length_set_payload():
    framer = RequestFramer()
    framer.feed(b"set empty 0 0 0\r\n\r\nget empty\r\n")
    assert drain_all(framer) == ["set empty 0 0 0\r\n\r\n",
                                 "get empty\r\n"]


def test_request_zero_length_payload_split_before_terminator():
    framer = RequestFramer()
    framer.feed(b"set empty 0 0 0\r\n")
    assert drain_all(framer) == []      # CRLF terminator still owed
    framer.feed(b"\r\n")
    assert drain_all(framer) == ["set empty 0 0 0\r\n\r\n"]


def test_request_empty_feed_is_harmless():
    framer = RequestFramer()
    framer.feed(b"")
    assert drain_all(framer) == []
    framer.feed(b"get k")
    framer.feed(b"")
    framer.feed(b"\r\n")
    assert drain_all(framer) == ["get k\r\n"]


def test_response_byte_at_a_time_reassembly():
    full = b"VALUE k 0 6\r\nab\r\ncd\r\nEND\r\nSTORED\r\nEND\r\n"
    framer = ResponseFramer()
    responses = []
    for i in range(len(full)):
        framer.feed(full[i:i + 1])
        responses += framer.drain()
    assert responses == ["VALUE k 0 6\r\nab\r\ncd\r\nEND\r\n",
                         "STORED\r\n", "END\r\n"]
    assert framer.pending_bytes == 0


def test_response_zero_length_value_payload():
    framer = ResponseFramer()
    framer.feed(b"VALUE empty 0 0\r\n\r\nEND\r\n")
    assert framer.drain() == ["VALUE empty 0 0\r\n\r\nEND\r\n"]


def test_response_zero_length_value_split_across_reads():
    full = b"VALUE empty 0 0\r\n\r\nEND\r\n"
    for cut in range(1, len(full)):
        framer = ResponseFramer()
        framer.feed(full[:cut])
        first = framer.drain()
        framer.feed(full[cut:])
        assert first + framer.drain() == [full.decode("latin-1")], cut


def test_request_partial_reads_across_hops():
    # Mirror of the response-side sweep: every split point of a mixed
    # request stream produces the same frames.
    full = b"set k 0 0 4\r\nwxyz\r\nget k\r\n"
    for cut in range(1, len(full)):
        framer = RequestFramer()
        framer.feed(full[:cut])
        first = drain_all(framer)
        framer.feed(full[cut:])
        frames = first + drain_all(framer)
        assert frames == ["set k 0 0 4\r\nwxyz\r\n", "get k\r\n"], cut
