"""Consistent hashing: determinism, spread, minimal churn."""

import pytest

from repro.serve.hashring import HashRing, _point


def test_lookup_is_deterministic_across_instances():
    nodes = [f"shard{i}" for i in range(4)]
    ring_a = HashRing(nodes)
    ring_b = HashRing(list(reversed(nodes)))
    keys = [f"user{i}" for i in range(500)]
    assert [ring_a.lookup(k) for k in keys] == \
        [ring_b.lookup(k) for k in keys]


def test_points_do_not_depend_on_pythonhashseed():
    # blake2b, not hash(): the placement must agree across processes.
    assert _point("shard0#0") == 0x8700D5995A3E4C64
    assert _point("user1") != _point("user2")


def test_ownership_sums_to_one_and_spreads():
    ring = HashRing([f"shard{i}" for i in range(8)], replicas=64)
    shares = ring.ownership()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    assert min(shares.values()) > 0.0
    # 64 virtual points keep the imbalance bounded.
    assert max(shares.values()) / min(shares.values()) < 4.0


def test_every_node_owns_some_keys():
    ring = HashRing([f"shard{i}" for i in range(8)])
    owners = {ring.lookup(f"user{i}") for i in range(2000)}
    assert owners == set(ring.nodes)


def test_adding_a_node_moves_only_its_arcs():
    nodes = [f"shard{i}" for i in range(4)]
    before = HashRing(nodes)
    after = HashRing(nodes)
    after.add("shard4")
    keys = [f"user{i}" for i in range(2000)]
    moved = sum(before.lookup(k) != after.lookup(k) for k in keys)
    # Expectation is 1/5 of the keyspace; allow generous slack.
    assert 0 < moved < len(keys) * 0.4
    # Every moved key moved *to* the new node, never between
    # survivors.
    for key in keys:
        if before.lookup(key) != after.lookup(key):
            assert after.lookup(key) == "shard4"


def test_remove_is_the_inverse_of_add():
    ring = HashRing(["shard0", "shard1"])
    ring.add("shard2")
    ring.remove("shard2")
    reference = HashRing(["shard0", "shard1"])
    keys = [f"user{i}" for i in range(300)]
    assert [ring.lookup(k) for k in keys] == \
        [reference.lookup(k) for k in keys]


def test_membership_errors():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(["a", "a"])
    with pytest.raises(ValueError):
        HashRing(["a"], replicas=0)
    ring = HashRing(["a", "b"])
    with pytest.raises(ValueError):
        ring.add("a")
    with pytest.raises(ValueError):
        ring.remove("zzz")
    ring.remove("b")
    with pytest.raises(ValueError):
        ring.remove("a")
    assert len(ring) == 1


def test_membership_change_moves_at_most_2_over_n():
    """The serving claim: one shard joining or leaving remaps at most
    ~2/N of the keyspace (expectation is 1/(N+1) on add, 1/N on
    remove; 2/N is the honest bound with 64 virtual points)."""
    keys = [f"user{i}" for i in range(4000)]
    for n in (4, 8):
        nodes = [f"shard{i}" for i in range(n)]
        before = HashRing(nodes)
        grown = HashRing(nodes)
        grown.add(f"shard{n}")
        moved = sum(before.lookup(k) != grown.lookup(k) for k in keys)
        assert moved / len(keys) <= 2.0 / n, (
            f"add to {n} shards moved {moved}/{len(keys)}")
        shrunk = HashRing(nodes)
        shrunk.remove("shard0")
        moved = sum(before.lookup(k) != shrunk.lookup(k) for k in keys)
        assert moved / len(keys) <= 2.0 / n, (
            f"remove from {n} shards moved {moved}/{len(keys)}")


def test_lookup_never_returns_an_unowned_node():
    """Through an add/remove churn sequence, every lookup lands on a
    current member — a departed shard never owns a key."""
    ring = HashRing([f"shard{i}" for i in range(4)])
    keys = [f"user{i}" for i in range(1000)]
    for step in (("add", "shard4"), ("remove", "shard1"),
                 ("add", "shard5"), ("remove", "shard0")):
        getattr(ring, step[0])(step[1])
        members = set(ring.nodes)
        for key in keys:
            assert ring.lookup(key) in members


def test_assignments_maps_every_key_to_its_owner():
    ring = HashRing(["shard0", "shard1", "shard2"])
    keys = [f"user{i}" for i in range(50)]
    table = ring.assignments(keys)
    assert set(table) == set(keys)
    assert table == {key: ring.lookup(key) for key in keys}
    assert set(table.values()) <= {"shard0", "shard1", "shard2"}


def test_remove_then_readd_restores_the_exact_assignment_map():
    """The self-healing re-add claim: because the ring is rebuilt
    from sorted membership, removing a shard and adding it back by
    name restores the byte-identical ownership map — so the inverse
    migration returns every key to its original home."""
    keys = [f"user{i}" for i in range(2000)]
    for n in (2, 3, 8):
        ring = HashRing([f"shard{i}" for i in range(n)])
        before = ring.assignments(keys)
        victim = f"shard{n // 2}"
        ring.remove(victim)
        assert victim not in set(ring.assignments(keys).values())
        ring.add(victim)
        assert ring.assignments(keys) == before


def test_remove_moves_keys_only_to_survivors():
    nodes = [f"shard{i}" for i in range(4)]
    before = HashRing(nodes)
    after = HashRing(nodes)
    after.remove("shard2")
    keys = [f"user{i}" for i in range(2000)]
    for key in keys:
        if before.lookup(key) == "shard2":
            assert after.lookup(key) != "shard2"
        else:
            # Survivors' keys never move on a remove.
            assert after.lookup(key) == before.lookup(key)


def test_readd_movement_is_bounded_by_2_over_n():
    """Both halves of the self-healing cycle respect the movement
    bound: the keys migrated away on remove and the keys migrated
    back on re-add are the same ≤2/N slice."""
    keys = [f"user{i}" for i in range(4000)]
    for n in (4, 8):
        ring = HashRing([f"shard{i}" for i in range(n)])
        before = ring.assignments(keys)
        ring.remove("shard1")
        moved_away = {key for key in keys
                      if ring.lookup(key) != before[key]}
        assert len(moved_away) / len(keys) <= 2.0 / n
        ring.add("shard1")
        moved_back = {key for key in keys
                      if ring.assignments([key])[key] != before[key]}
        assert moved_back == set()
        assert moved_away == {key for key in keys
                              if before[key] == "shard1"}
