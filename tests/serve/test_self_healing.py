"""Self-healing sharded serving: probe/timeout failure detection,
link reconnection, circuit breakers, ring rebalancing, degraded
mode, and shard re-add with inverse migration."""

import signal
import socket
import time

import pytest

from repro.apps.minicache import protocol
from repro.errors import NetworkFault, fault_exit_code
from repro.serve.engine import SecureKVEngine
from repro.serve.loadgen import LoadClient, LoadError, run_load
from repro.serve.router import RouterConfig, RouterThread, ShardRouter
from repro.serve.server import ServeConfig, ServerThread

from tests.serve.test_shard_router import (
    FakeShard,
    keys_for_each_shard,
    make_router,
)

pytestmark = pytest.mark.net


def wait_until(predicate, timeout=10.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- typed connect failures -----------------------------------------------------


def test_connect_refused_is_a_typed_network_fault():
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    dead_port = probe.getsockname()[1]
    probe.close()
    config = RouterConfig(
        port=0, shards=1,
        external_shards=[("127.0.0.1", dead_port)],
        connect_timeout=0.5, connect_retries=1,
        backoff_base=0.01, backoff_cap=0.02)
    rt = RouterThread(config)
    rt.start()
    rt.join(timeout=30.0)
    assert isinstance(rt.error, NetworkFault)
    assert fault_exit_code(rt.error) == 9
    assert "connect" in str(rt.error)


# -- link failures: reconnect, probes, breakers ---------------------------------


def test_link_reset_reconnects_with_exact_state():
    # Dropping the TCP link (endpoint stays alive) is a *network*
    # failure: the router reconnects, replays the acked log, and the
    # client never sees an error.
    fakes = [FakeShard(), FakeShard()]
    with make_router(fakes=fakes, external_reconnect=True,
                     connect_timeout=2.0, connect_retries=2,
                     backoff_base=0.01, backoff_cap=0.05) as rt:
        client = LoadClient("127.0.0.1", rt.router.port)
        expected = {}
        for i in range(20):
            value = f"v{i}".encode()
            assert client.set(f"user{i}", value) == protocol.STORED
            expected[f"user{i}"] = value
        fakes[0].drop()
        for i in range(20):
            assert protocol.parse_value_response(
                client.get(f"user{i}")) == expected[f"user{i}"]
        client.close()
        rt.stop()
    for fake in fakes:
        fake.close()
    assert rt.error is None
    stats = rt.router.stats()
    assert stats["reconnects"] == 1
    assert stats["restarts"] == 0


def test_unanswered_probes_open_the_circuit_breaker():
    # The shard answers real traffic but swallows liveness probes:
    # the router must detect the wedge while idle, reconnect once,
    # and surface a typed NetworkFault when the breaker's budget is
    # spent — never hang.
    def deaf_to_probes(request):
        if request.key.startswith("__probe__"):
            return None
        return fake.honest(request)

    fake = FakeShard(respond=deaf_to_probes)
    with make_router(fakes=[fake], external_reconnect=True,
                     probe_interval=0.15, probe_timeout=0.4,
                     max_restarts=2, replay_timeout=2.0,
                     connect_timeout=2.0, connect_retries=1,
                     backoff_base=0.01, backoff_cap=0.02) as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        assert client.set("k", b"v") == protocol.STORED
        rt.join(timeout=30.0)
        client.close()
    fake.close()
    assert isinstance(rt.error, NetworkFault)
    assert fault_exit_code(rt.error) == 9
    assert "circuit breaker" in str(rt.error)
    stats = rt.router.stats()
    assert stats["deaths"] == 2
    assert stats["reconnects"] == 1
    assert rt.router.registry.counter("router.probes").get() >= 1


def test_forward_timeout_detects_a_wedged_busy_shard():
    # A shard that accepts requests and never answers: the oldest
    # in-flight request's age is the death signal.
    fake = FakeShard(respond=lambda request: None)
    with make_router(fakes=[fake], external_reconnect=True,
                     forward_timeout=0.3, max_restarts=1,
                     connect_timeout=2.0, connect_retries=1,
                     backoff_base=0.01, backoff_cap=0.02) as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        client.sock.sendall(
            protocol.encode_get("k").encode("latin-1"))
        rt.join(timeout=30.0)
        client.close()
    fake.close()
    assert isinstance(rt.error, NetworkFault)
    assert "circuit breaker" in str(rt.error)


# -- rebalancing ----------------------------------------------------------------


def test_rebalance_after_kill_serves_every_key():
    with make_router(shards=2, batch=8, on_death="rebalance") as rt:
        client = LoadClient("127.0.0.1", rt.router.port)
        expected = {}
        for i in range(30):
            value = f"value{i}".encode()
            assert client.set(f"user{i}", value) == protocol.STORED
            expected[f"user{i}"] = value
        rt.router.shards[0].proc.send_signal(signal.SIGKILL)
        # Every key keeps serving through the survivor — the dead
        # shard's acked state was migrated, not lost.
        for i in range(30):
            assert protocol.parse_value_response(
                client.get(f"user{i}")) == expected[f"user{i}"]
        client.close()
        rt.stop()
    assert rt.error is None
    assert rt.router.drained
    stats = rt.router.stats()
    assert stats["rebalances"] == 1
    assert len(stats["ring_nodes"]) == 1
    assert stats["lost_keys"] == 0
    registry = rt.router.registry
    assert registry.value("router.migrated_keys") > 0
    assert rt.router.final_digests() == {
        key: SecureKVEngine.digest(value)
        for key, value in expected.items()}


def test_rebalanced_run_converges_to_the_clean_ledger():
    # The acceptance differential: a mid-run kill answered by ring
    # rebalancing must end in the byte-identical digest ledger of
    # the kill-free run.
    def final_state(crash_after, on_death):
        with make_router(shards=2, batch=8, on_death=on_death,
                         crash_after=crash_after) as rt:
            run_load("127.0.0.1", rt.router.port, workload="A",
                     clients=3, ops=240, records=32, seed=29,
                     value_bytes=16, lockstep=True)
            rt.stop()
        assert rt.error is None
        assert rt.router.drained
        return rt.router.final_digests()

    clean = final_state({}, "restart")
    rebalanced = final_state({0: 60}, "rebalance")
    assert clean == rebalanced


# -- degraded mode and re-add ---------------------------------------------------


def test_degrade_types_lost_keys_and_serves_survivors():
    with make_router(shards=2, batch=8, on_death="degrade") as rt:
        (shard0_keys,), (shard1_keys,) = \
            keys_for_each_shard(rt.router, count=1)
        client = LoadClient("127.0.0.1", rt.router.port)
        assert client.set(shard0_keys, b"doomed") == protocol.STORED
        assert client.set(shard1_keys, b"alive") == protocol.STORED
        rt.router.shards[0].proc.send_signal(signal.SIGKILL)
        # First request after the kill triggers detection; keys owned
        # by the dead shard answer SHARD_UNAVAILABLE — typed, not a
        # stall — while the survivor's keyspace serves on.
        assert wait_until(
            lambda: client.get(shard0_keys)
            == protocol.SHARD_UNAVAILABLE)
        assert client.delete(shard0_keys) \
            == protocol.SHARD_UNAVAILABLE
        assert protocol.parse_value_response(
            client.get(shard1_keys)) == b"alive"
        # A set of a lost key re-homes it on the survivor.
        assert client.set(shard0_keys, b"rehomed") == protocol.STORED
        assert protocol.parse_value_response(
            client.get(shard0_keys)) == b"rehomed"
        client.close()
        rt.stop()
    assert rt.error is None
    stats = rt.router.stats()
    assert len(stats["ring_nodes"]) == 1
    assert stats["lost_keys"] == 0       # re-homed by the set
    assert rt.router.registry.value("router.unavailable") >= 2


def test_readd_after_degrade_restores_lost_keys():
    with make_router(shards=2, batch=8, on_death="degrade") as rt:
        client = LoadClient("127.0.0.1", rt.router.port)
        expected = {}
        for i in range(30):
            value = f"value{i}".encode()
            assert client.set(f"user{i}", value) == protocol.STORED
            expected[f"user{i}"] = value
        before = rt.router.ring.assignments(sorted(expected))
        rt.router.shards[0].proc.send_signal(signal.SIGKILL)
        # Touch the router until the death is detected and the ring
        # has shrunk.
        assert wait_until(
            lambda: client.get("user0") is not None
            and len(rt.router.stats()["ring_nodes"]) == 1)
        assert rt.router.stats()["lost_keys"] > 0
        rt.router.request_readd(0)
        assert wait_until(
            lambda: len(rt.router.stats()["ring_nodes"]) == 2)
        # The sorted ring rebuild restores the exact pre-removal
        # ownership, and the inverse migration repopulates the
        # returning shard — every key reads back, none unavailable.
        assert wait_until(
            lambda: rt.router.stats()["lost_keys"] == 0)
        for i in range(30):
            assert protocol.parse_value_response(
                client.get(f"user{i}")) == expected[f"user{i}"]
        assert rt.router.ring.assignments(sorted(expected)) == before
        client.close()
        rt.stop()
    assert rt.error is None
    assert rt.router.drained
    assert rt.router.registry.value("router.readds") == 1
    assert rt.router.final_digests() == {
        key: SecureKVEngine.digest(value)
        for key, value in expected.items()}


def test_readd_after_rebalance_restores_ownership():
    with make_router(shards=3, batch=8, on_death="rebalance") as rt:
        client = LoadClient("127.0.0.1", rt.router.port)
        expected = {}
        for i in range(36):
            value = f"value{i}".encode()
            assert client.set(f"user{i}", value) == protocol.STORED
            expected[f"user{i}"] = value
        before = rt.router.ring.assignments(sorted(expected))
        rt.router.shards[1].proc.send_signal(signal.SIGKILL)
        assert wait_until(
            lambda: client.get("user0") is not None
            and len(rt.router.stats()["ring_nodes"]) == 2)
        rt.router.request_readd(1)
        assert wait_until(
            lambda: len(rt.router.stats()["ring_nodes"]) == 3)
        for i in range(36):
            assert protocol.parse_value_response(
                client.get(f"user{i}")) == expected[f"user{i}"]
        assert rt.router.ring.assignments(sorted(expected)) == before
        client.close()
        rt.stop()
    assert rt.error is None
    assert rt.router.drained
    assert rt.router.final_digests() == {
        key: SecureKVEngine.digest(value)
        for key, value in expected.items()}


def test_last_shard_death_cannot_rebalance():
    from repro.errors import EnclaveCrash

    with make_router(shards=1, batch=4, on_death="rebalance") as rt:
        client = LoadClient("127.0.0.1", rt.router.port, timeout=5.0)
        assert client.set("k", b"v") == protocol.STORED
        rt.router.shards[0].proc.send_signal(signal.SIGKILL)
        with pytest.raises((LoadError, OSError)):
            for i in range(50):
                client.set(f"fill{i}", b"v")
        client.close()
        rt.join()
    assert isinstance(rt.error, EnclaveCrash)


# -- worker orphan backstop -----------------------------------------------------


def test_orphaned_server_exits_after_its_last_connection():
    thread = ServerThread(ServeConfig(port=0, orphan_timeout=0.2))
    port = thread.start()
    client = LoadClient("127.0.0.1", port)
    assert client.set("k", b"v") == protocol.STORED
    client.close()
    # No request_stop(): the server notices it is orphaned and
    # drains on its own.
    thread.join(timeout=10.0)
    assert thread.error is None
    assert thread.server.drained
    assert thread.server.registry.value("serve.orphan_exits") == 1


def test_server_without_orphan_timeout_keeps_waiting():
    thread = ServerThread(ServeConfig(port=0))
    port = thread.start()
    client = LoadClient("127.0.0.1", port)
    assert client.set("k", b"v") == protocol.STORED
    client.close()
    time.sleep(0.3)
    assert thread._thread.is_alive()
    thread.stop()
