"""The TCP server over real loopback sockets: sessions, batching,
backpressure, integrity cross-checks, graceful drain, chaos."""

import socket
import time

import pytest

from repro.apps.minicache import protocol
from repro.errors import (
    DeadlockFault,
    IagoFault,
    fault_exit_code,
)
from repro.serve.engine import SecureKVEngine, compile_secure_kv
from repro.serve.loadgen import LoadClient, LoadError, run_load
from repro.serve.server import ServeConfig, ServerThread

pytestmark = pytest.mark.net


@pytest.fixture(scope="module")
def program():
    return compile_secure_kv()


def make_server(program, **config_kwargs):
    config = ServeConfig(port=0, **config_kwargs)
    return ServerThread(config,
                        engine=SecureKVEngine(program=program))


def test_set_get_delete_roundtrip(program):
    with make_server(program, batch=4) as st:
        client = LoadClient("127.0.0.1", st.server.port)
        assert client.set("k1", b"hello") == protocol.STORED
        value = protocol.parse_value_response(client.get("k1"))
        assert value == b"hello"
        assert client.get("missing") == protocol.END
        assert client.delete("k1") == protocol.DELETED
        assert client.delete("k1") == protocol.NOT_FOUND
        assert client.get("k1") == protocol.END
        client.close()
    assert st.error is None
    assert st.server.drained


def test_malformed_line_gets_error_and_connection_survives(program):
    with make_server(program) as st:
        client = LoadClient("127.0.0.1", st.server.port)
        assert client.request("bogus command\r\n") == protocol.ERROR
        assert client.request("\r\n") == protocol.ERROR
        # Still serving afterwards.
        assert client.set("k", b"v") == protocol.STORED
        client.close()
    assert st.error is None


def test_desync_gets_error_then_close(program):
    with make_server(program) as st:
        client = LoadClient("127.0.0.1", st.server.port)
        assert client.request("set k 0 0 zz\r\n") == protocol.ERROR
        # The connection is cut: the next request never answers.
        with pytest.raises((LoadError, OSError)):
            client.sock.settimeout(2.0)
            client.request("get k\r\n")
        client.close()
        assert st.server.registry.counter("serve.bad_frames").get() \
            == 1
    assert st.error is None


def test_pipelined_requests_are_batched(program):
    with make_server(program, batch=8) as st:
        client = LoadClient("127.0.0.1", st.server.port)
        # One write carrying many requests: the server's scheduling
        # round should batch them into few drives.
        burst = "".join(protocol.encode_set(f"k{i}", b"v")
                        for i in range(8))
        client.sock.sendall(burst.encode("latin-1"))
        for _ in range(8):
            assert client._read_response() == protocol.STORED
        client.close()
        st.stop()
        hist = st.server.registry.histogram("serve.batch_size")
        assert hist.count < 8           # fewer drives than requests
        assert hist.max > 1             # real batching happened
        assert "serve.queue_depth" in st.server.registry
    assert st.error is None


def test_backpressure_sheds_with_server_busy(program):
    # queue_depth=1 and a burst from one socket: the surplus must be
    # answered SERVER_BUSY and counted, not queued without bound.
    with make_server(program, batch=1, queue_depth=1) as st:
        client = LoadClient("127.0.0.1", st.server.port)
        burst = "".join(protocol.encode_get(f"k{i}")
                        for i in range(12))
        client.sock.sendall(burst.encode("latin-1"))
        responses = [client._read_response() for _ in range(12)]
        shed = [r for r in responses if r == protocol.SERVER_BUSY]
        served = [r for r in responses if r == protocol.END]
        assert len(shed) + len(served) == 12
        assert shed                      # some were shed...
        assert served                    # ...but not all
        client.close()
        st.stop()
        assert st.server.registry.counter("serve.shed").get() \
            == len(shed)
    assert st.error is None


def test_graceful_drain_serves_queued_requests(program):
    with make_server(program, batch=4) as st:
        client = LoadClient("127.0.0.1", st.server.port)
        burst = "".join(protocol.encode_set(f"k{i}", b"v")
                        for i in range(6))
        client.sock.sendall(burst.encode("latin-1"))
        # Stop immediately: already-queued requests must still be
        # answered before the socket closes.
        time.sleep(0.05)
        st.stop()
        responses = []
        client.sock.settimeout(5.0)
        try:
            for _ in range(6):
                responses.append(client._read_response())
        except (LoadError, OSError):
            pass
        assert responses and all(
            r in (protocol.STORED, protocol.SERVER_BUSY)
            for r in responses)
        client.close()
    assert st.error is None
    assert st.server.drained


def test_eviction_keeps_enclave_index_consistent(program):
    # A tiny LRU forces evictions; the on_evict hook must retire the
    # victims from the enclave index too, or later gets would be
    # flagged as integrity violations.
    with make_server(program, batch=4, capacity_bytes=128) as st:
        client = LoadClient("127.0.0.1", st.server.port)
        for i in range(12):
            assert client.set(f"key{i}", b"x" * 32) == protocol.STORED
        for i in range(12):
            response = client.get(f"key{i}")
            assert response == protocol.END or \
                protocol.parse_value_response(response) == b"x" * 32
        client.close()
        st.stop()
        assert st.server.cache.stats.evictions > 0
    assert st.error is None


def test_lying_store_is_detected_as_iago(program):
    # Corrupt the untrusted store behind the server's back: the next
    # get must cross-check against the enclave digest and fault.
    with make_server(program, batch=4) as st:
        client = LoadClient("127.0.0.1", st.server.port)
        assert client.set("k", b"honest") == protocol.STORED
        st.server.cache.map.put("k", b"forged")
        with pytest.raises((LoadError, OSError)):
            client.sock.settimeout(5.0)
            client.get("k")
            client.get("k")      # in case the reply raced the abort
        client.close()
        st.join()
    assert isinstance(st.error, IagoFault)
    assert fault_exit_code(st.error) == 5


def test_chaos_over_tcp_ends_with_typed_fault(program):
    from repro.faults import FaultInjector, FaultPlan

    st = make_server(program, batch=4)
    injector = FaultInjector(FaultPlan.parse(
        "channel-drop:*:spawn:1", seed=0))
    injector.attach(st.server.engine.runtime)
    st.start()
    client = LoadClient("127.0.0.1", st.server.port, timeout=5.0)
    with pytest.raises((LoadError, OSError)):
        client.set("k", b"v")
    client.close()
    st.join()
    assert isinstance(st.error, DeadlockFault)
    assert fault_exit_code(st.error) == 4
    assert injector.injected_total() == 1


def test_max_requests_drains_and_stops(program):
    st = make_server(program, batch=2, max_requests=3)
    st.start()
    client = LoadClient("127.0.0.1", st.server.port)
    for i in range(3):
        assert client.set(f"k{i}", b"v") == protocol.STORED
    client.close()
    st.join()
    assert st.error is None
    assert st.server.drained
    assert st.server.registry.counter("serve.requests").get() == 3


def test_loadgen_run_load_all_workloads(program):
    with make_server(program, batch=8) as st:
        for name in ("A", "B", "C", "D", "F"):
            report = run_load("127.0.0.1", st.server.port,
                              workload=name, clients=2, ops=30,
                              records=16, value_bytes=16,
                              seed=3)
            assert report["dropped_connections"] == 0
            assert report["errors"] == 0
            assert report["ops"] == 30
            assert report["ops_per_s"] > 0
            assert report["p99_ms"] >= report["p50_ms"] >= 0
        st.stop()
    assert st.error is None


def test_serve_tracer_spans(program):
    from repro.obs.export import validate_chrome_trace
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    config = ServeConfig(port=0, batch=4)
    st = ServerThread(config, tracer=tracer,
                      engine=SecureKVEngine(program=program))
    with st:
        client = LoadClient("127.0.0.1", st.server.port)
        client.set("k", b"v")
        client.get("k")
        client.close()
        st.stop()
    assert st.error is None
    names = {event.get("name") for event in tracer.events}
    # The request lifecycle: accept -> enqueue -> execute -> reply.
    for expected in ("accept", "enqueue", "queued", "execute",
                     "reply", "close"):
        assert expected in names, expected
    validate_chrome_trace(tracer.chrome_trace())
