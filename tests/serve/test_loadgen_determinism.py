"""Loadgen determinism: per-client streams, payload bytes, and (in
lockstep mode) the exact server-observed interleaving are pure
functions of the seed."""

import selectors
import socket
import threading

import pytest

from repro.apps.minicache import protocol
from repro.serve.framing import RequestFramer
from repro.serve.loadgen import (
    _client_seed,
    _record_bytes,
    run_load,
)

pytestmark = pytest.mark.net


class RecordingServer:
    """A trivially honest multi-connection protocol server that
    records the global arrival order of (command, key) — the ground
    truth a deterministic interleaving must reproduce."""

    def __init__(self):
        self.trace = []
        self.store = {}
        self._stop = False
        self.selector = selectors.DefaultSelector()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(64)
        listener.setblocking(False)
        self.port = listener.getsockname()[1]
        self.selector.register(listener, selectors.EVENT_READ, None)
        self.listener = listener
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _respond(self, request):
        if request.command == "set":
            self.store[request.key] = request.data
            return protocol.STORED
        if request.command == "get":
            value = self.store.get(request.key)
            return protocol.END if value is None \
                else protocol.encode_value(request.key, value)
        if request.command == "delete":
            return protocol.DELETED \
                if self.store.pop(request.key, None) is not None \
                else protocol.NOT_FOUND
        return protocol.ERROR

    def _run(self):
        while not self._stop:
            for key, _mask in self.selector.select(0.05):
                if key.data is None:
                    try:
                        conn, _addr = self.listener.accept()
                    except OSError:
                        continue
                    conn.setblocking(True)
                    self.selector.register(conn, selectors.EVENT_READ,
                                           RequestFramer())
                    continue
                conn, framer = key.fileobj, key.data
                try:
                    data = conn.recv(65536)
                except OSError:
                    data = b""
                if not data:
                    self.selector.unregister(conn)
                    conn.close()
                    continue
                framer.feed(data)
                frames, _error = framer.drain()
                for raw in frames:
                    request = protocol.parse_request(raw)
                    self.trace.append((request.command, request.key))
                    conn.sendall(self._respond(request)
                                 .encode("latin-1"))

    def close(self):
        self._stop = True
        self._thread.join(5.0)
        self.selector.close()
        try:
            self.listener.close()
        except OSError:
            pass


def observed_trace(seed, lockstep=True, clients=3, ops=90):
    server = RecordingServer()
    try:
        report = run_load("127.0.0.1", server.port, workload="A",
                          clients=clients, ops=ops, records=16,
                          seed=seed, value_bytes=8,
                          lockstep=lockstep)
        assert report["errors"] == 0
        assert report["dropped_connections"] == 0
        return list(server.trace)
    finally:
        server.close()


def test_client_seeds_are_stable_and_collision_free():
    assert _client_seed(42, 0) == _client_seed(42, 0)
    seeds = {_client_seed(seed, index)
             for seed in range(50) for index in range(8)}
    assert len(seeds) == 50 * 8
    # The old linear rule collided across runs:
    # seed 42 / client 1 replayed seed 7961 / client 0.
    assert _client_seed(42, 1) != _client_seed(42 + 7919, 0)


def test_record_bytes_deterministic_and_seed_keyed():
    assert _record_bytes(64, seed=7) == _record_bytes(64, seed=7)
    assert _record_bytes(64, seed=7) != _record_bytes(64, seed=8)
    payload = _record_bytes(100, seed=3)
    assert len(payload) == 100
    assert all(ord("a") <= byte <= ord("z") for byte in payload)
    assert _record_bytes(0) == b""


def test_lockstep_interleaving_is_a_pure_function_of_the_seed():
    first = observed_trace(seed=17)
    second = observed_trace(seed=17)
    assert first == second
    assert len(first) == 16 + 90       # preload + ops (A: no rmw)


def test_different_seeds_produce_different_interleavings():
    assert observed_trace(seed=17) != observed_trace(seed=18)


def test_free_running_streams_are_still_seed_stable():
    # Without lockstep the *global* order may vary, but the multiset
    # of operations each run issues is fixed by the seed.
    first = sorted(observed_trace(seed=5, lockstep=False))
    second = sorted(observed_trace(seed=5, lockstep=False))
    assert first == second
