"""End-to-end tests: compile, partition and execute on the runtime.

These tests follow paper Figures 6 and 7: the partitioned program must
compute the same results as the unpartitioned one, with chunks running
on per-enclave workers connected by spawn/cont messages.
"""

import pytest

from repro.core.colors import HARDENED, RELAXED
from repro.core.compiler import compile_and_partition
from repro.frontend import compile_source
from repro.ir.interp import Machine, enclave_region
from repro.runtime import run_partitioned


def run_both(source: str, entry: str = "main", args=(),
             mode: str = RELAXED):
    """Run the program unpartitioned and partitioned; return both
    results plus the runtime for inspection."""
    plain = Machine(compile_source(source))
    expected = plain.run_function(entry, list(args))
    program = compile_and_partition(source, mode=mode)
    result, runtime = run_partitioned(program, entry, list(args))
    return expected, result, plain, runtime


def test_single_color_computation():
    source = """
        int color(blue) counter = 0;
        entry int main() {
            counter = counter + 5;
            counter = counter * 2;
            return 7;
        }
    """
    expected, result, plain, runtime = run_both(source, mode=RELAXED)
    assert expected == result == 7
    # The blue store really happened inside the blue enclave region.
    gv_addr = _global_addr(runtime, "counter")
    assert runtime.machine.memory.read(gv_addr) == 10
    assert runtime.machine.memory.region_of(gv_addr) == \
        enclave_region("blue")


def test_single_color_hardened():
    source = """
        int color(blue) counter = 0;
        entry int main() {
            counter = counter + 5;
            return 3;
        }
    """
    program = compile_and_partition(source, mode=HARDENED)
    result, runtime = run_partitioned(program, "main")
    assert result == 3
    assert runtime.machine.memory.read(
        _global_addr(runtime, "counter")) == 5


def test_paper_fig6_example():
    """The running example of §7.3 (Figures 6 and 7)."""
    source = """
        int color(U) unsafe_g = 0;
        int color(blue) blue_g = 10;
        int color(red) red_g = 0;

        void g(int n) {
            blue_g = n;
            red_g = n;
            printf("Hello\\n");
        }

        int f(int y) {
            g(21);
            return 42;
        }

        entry int main() {
            unsafe_g = 1;
            int x = f(blue_g);
            return x;
        }
    """
    program = compile_and_partition(source, mode=RELAXED)
    assert set(program.modules) == {"blue", "red", "S"}
    result, runtime = run_partitioned(program, "main")
    assert result == 42
    machine = runtime.machine
    assert machine.stdout == "Hello\n"
    assert machine.memory.read(_global_addr(runtime, "unsafe_g")) == 1
    assert machine.memory.read(_global_addr(runtime, "blue_g")) == 21
    assert machine.memory.read(_global_addr(runtime, "red_g")) == 21
    # Figure 7's protocol: spawns started the missing chunks, cont
    # messages carried the F argument 21 and the return value 42.
    assert runtime.stats.spawns >= 3
    assert runtime.stats.values >= 2
    assert runtime.stats.boundary_crossings > 0


def test_colored_condition_branches():
    """Control flow on a colored value exists only in that chunk;
    other chunks jump to the join (Rule 4 payoff, §7.3.1)."""
    source = """
        int color(blue) secret = 7;
        int color(blue) out = 0;
        entry int main() {
            if (secret > 5)
                out = 1;
            else
                out = 2;
            return 9;
        }
    """
    expected, result, plain, runtime = run_both(source, mode=RELAXED)
    assert expected == result == 9
    assert runtime.machine.memory.read(
        _global_addr(runtime, "out")) == 1


def test_loop_with_colored_data():
    source = """
        long color(red) total = 0;
        entry int main() {
            for (int i = 1; i <= 10; i++)
                total = total + i;
            return 1;
        }
    """
    expected, result, plain, runtime = run_both(source, mode=RELAXED)
    assert expected == result == 1
    assert runtime.machine.memory.read(
        _global_addr(runtime, "total")) == 55


def test_declassification_via_ignore():
    """The §6.4 pattern: an ignore function declassifies an enclave
    value so unsafe code can observe it."""
    source = """
        ignore long declass(long v);
        long color(red) secret = 33;
        long out = 0;
        entry int main() {
            out = declass(secret);
            return 0;
        }
    """

    def declass(machine, ctx, args):
        return args[0]

    program = compile_and_partition(source, mode=RELAXED)
    result, runtime = _run_with_externals(program, {"declass": declass})
    assert runtime.machine.memory.read(
        _global_addr(runtime, "out")) == 33


def test_specialized_callee_runs_in_right_enclave():
    source = """
        int color(blue) b = 4;
        int color(red) r = 5;
        int twice(int v) { return v + v; }
        entry int main() {
            b = twice(b);
            r = twice(r);
            return 2;
        }
    """
    expected, result, plain, runtime = run_both(source, mode=RELAXED)
    assert result == 2
    machine = runtime.machine
    assert machine.memory.read(_global_addr(runtime, "b")) == 8
    assert machine.memory.read(_global_addr(runtime, "r")) == 10


def test_f_value_messaging_relaxed():
    """An F value produced in the untrusted chunk (a load from S) is
    cont-messaged to the enclave chunk that consumes it."""
    source = """
        int shared_in = 5;
        int color(blue) sink = 0;
        entry int main() {
            sink = shared_in + 1;
            return 0;
        }
    """
    program = compile_and_partition(source, mode=RELAXED)
    result, runtime = run_partitioned(program, "main")
    assert runtime.machine.memory.read(
        _global_addr(runtime, "sink")) == 6
    assert runtime.stats.values >= 1


def test_multicolor_struct_two_enclaves():
    """Figure 1: a struct with blue and red fields; §7.2 indirection
    places the shell in unsafe memory and each field in its enclave."""
    source = """
        struct account {
            long color(blue) owner;
            double color(red) balance;
        };
        long color(blue) owner_out = 0;
        entry int main() {
            struct account* a = malloc(sizeof(struct account));
            a->owner = 1234;
            a->balance = 2.5;
            owner_out = a->owner;
            return 0;
        }
    """
    program = compile_and_partition(source, mode=RELAXED)
    result, runtime = run_partitioned(program, "main")
    machine = runtime.machine
    assert machine.memory.read(_global_addr(runtime, "owner_out")) == 1234
    # The colored fields live in their enclaves.
    regions = {a.region for a in machine.memory.live_allocations()}
    assert enclave_region("blue") in regions
    assert enclave_region("red") in regions


def test_multicolor_struct_rejected_in_hardened_mode():
    from repro.errors import PartitionError
    source = """
        struct account {
            long color(blue) owner;
            double color(red) balance;
        };
        entry int main() {
            struct account* a = malloc(sizeof(struct account));
            a->owner = 1;
            return 0;
        }
    """
    with pytest.raises(PartitionError):
        compile_and_partition(source, mode=HARDENED)


def test_tcb_is_smaller_than_whole_program():
    """The point of partitioning (§9.2.2): the enclave's user code is a
    fraction of the application."""
    source = """
        int color(blue) secret = 1;
        int bulk(int x) {
            int t = 0;
            for (int i = 0; i < x; i++) t += i * i - i / 2;
            return t;
        }
        entry int main() {
            secret = secret + 1;
            int a = bulk(10);
            int b = bulk(20);
            printf("%d %d\\n", a, b);
            return 0;
        }
    """
    program = compile_and_partition(source, mode=RELAXED)
    blue = program.tcb_instructions("blue")
    untrusted = program.tcb_instructions(program.untrusted)
    assert blue < untrusted


def _global_addr(runtime, name: str) -> int:
    for module in runtime.machine.modules:
        gv = module.globals.get(name)
        if gv is not None:
            return runtime.machine.global_address(gv)
    raise AssertionError(f"global {name} not found")


def _run_with_externals(program, externals, entry="main", args=()):
    from repro.runtime import PrivagicRuntime
    runtime = PrivagicRuntime(program, externals)
    result = runtime.run(entry, list(args))
    return result, runtime
