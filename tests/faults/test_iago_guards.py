"""Iago postcondition guards (tentpole b): hostile return values from
untrusted externals must be detected at the boundary, and the
injector's corruption must go through the same checks."""

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import IagoFault
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.executor import PrivagicRuntime
from repro.runtime.iago import GUARDS, verify_external_result

SOURCE = """
    int color(blue) blue_g = 10;
    void g(int n) { blue_g = n; }
    entry int main() { g(21); return 42; }
"""

PRINTING = """
    int color(blue) blue_g = 10;
    void g(int n) { blue_g = n; }
    entry int main() { g(21); printf("ok\\n"); return 42; }
"""


@pytest.fixture
def runtime():
    program = compile_and_partition(SOURCE, mode=RELAXED)
    return PrivagicRuntime(program)


def test_guards_installed_on_runtime_machines(runtime):
    for name in GUARDS:
        handler = runtime.machine.externals[name]
        assert getattr(handler, "_iago_guard", False), name


def _app_ctx(runtime):
    return runtime.start("main")


def test_honest_malloc_passes(runtime):
    ctx = _app_ctx(runtime)
    base = runtime.machine.externals["malloc"](
        runtime.machine, ctx, [8])
    assert isinstance(base, int) and base > 0


def test_malloc_wild_pointer_is_detected(runtime):
    ctx = _app_ctx(runtime)
    with pytest.raises(IagoFault, match="wild pointer"):
        verify_external_result(runtime, "malloc", runtime.machine,
                               ctx, [8], 0x7FFF0000)


def test_malloc_interior_pointer_is_detected(runtime):
    machine = runtime.machine
    ctx = _app_ctx(runtime)
    base = machine.externals["malloc"](machine, ctx, [8])
    with pytest.raises(IagoFault, match="interior pointer"):
        verify_external_result(runtime, "malloc", machine, ctx, [8],
                               base + 2)


def test_malloc_undersized_allocation_is_detected(runtime):
    machine = runtime.machine
    ctx = _app_ctx(runtime)
    # Allocate below the guard so the base is not in the freshness
    # set — the size check is what must trip.
    base = machine.memory.alloc(4, machine.stack_region(ctx), "heap")
    with pytest.raises(IagoFault, match="smaller"):
        verify_external_result(runtime, "malloc", machine, ctx, [64],
                               base)


def test_malloc_replayed_pointer_is_detected(runtime):
    """Handing out the same allocation twice would alias live enclave
    memory — the freshness set catches the replay."""
    machine = runtime.machine
    ctx = _app_ctx(runtime)
    base = machine.externals["malloc"](machine, ctx, [8])
    with pytest.raises(IagoFault, match="previously allocated"):
        verify_external_result(runtime, "malloc", machine, ctx, [8],
                               base)


def test_strlen_wrong_length_is_detected(runtime):
    machine = runtime.machine
    ctx = _app_ctx(runtime)
    addr = machine.intern_string("hello")
    honest = machine.externals["strlen"](machine, ctx, [addr])
    assert honest == 5
    for bad in (3, 4, 6):
        with pytest.raises(IagoFault):
            verify_external_result(runtime, "strlen", machine, ctx,
                                   [addr], bad)


def test_memcpy_wrong_return_is_detected(runtime):
    machine = runtime.machine
    ctx = _app_ctx(runtime)
    dst = machine.externals["malloc"](machine, ctx, [4])
    src = machine.externals["malloc"](machine, ctx, [4])
    assert machine.externals["memcpy"](machine, ctx,
                                       [dst, src, 4]) == dst
    with pytest.raises(IagoFault, match="destination"):
        verify_external_result(runtime, "memcpy", machine, ctx,
                               [dst, src, 4], src)


# -- injected Iago corruption -------------------------------------------------


@pytest.mark.parametrize("mode", ["offset", "huge", "negative",
                                  "zero", "replay"])
def test_injected_malloc_corruption_is_always_detected(mode):
    """Every corruption mode on a guarded external must raise
    IagoFault at the call, before the program consumes the pointer."""
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    injector = FaultInjector(
        FaultPlan.parse(f"iago-retval:malloc:2:{mode}"))
    injector.attach(runtime)
    machine = runtime.machine
    ctx = runtime.start("main")
    machine.externals["malloc"](machine, ctx, [8])  # honest: cached
    with pytest.raises(IagoFault, match="iago check failed"):
        machine.externals["malloc"](machine, ctx, [8])
    assert injector.injected == {"iago-retval": 1}
    assert injector.detected.get("iago-retval") == 1


@pytest.mark.parametrize("engine", ["decoded", "legacy"])
def test_corrupting_an_unused_return_is_harmless(engine):
    """printf's return value is unused: corrupting it must leave the
    run identical — the 'identical' arm of the chaos contract."""
    program = compile_and_partition(PRINTING, mode=RELAXED)
    runtime = PrivagicRuntime(program, engine=engine)
    injector = FaultInjector(
        FaultPlan.parse("iago-retval:printf:1:huge")).attach(runtime)
    result = runtime.run("main")
    assert result == 42
    assert runtime.machine.stdout == "ok\n"
    assert injector.injected == {"iago-retval": 1}


def test_wildcard_iago_only_reaches_guarded_externals():
    program = compile_and_partition(PRINTING, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    injector = FaultInjector(FaultPlan.parse("iago-retval:*:1"))
    injector.attach(runtime)
    assert set(injector._wrapped) == set(GUARDS) & \
        set(runtime.machine.externals)
    # printf is not guarded, so the wildcard never corrupts it.
    result = runtime.run("main")
    assert result == 42 and runtime.machine.stdout == "ok\n"
    injector.detach()
    for name in GUARDS:
        handler = runtime.machine.externals.get(name)
        if handler is not None:
            assert not getattr(handler, "_iago_injector", False)
