"""FaultPlan grammar and seeded-plan determinism."""

import pytest

from repro.faults.plan import (
    FaultEntry,
    FaultPlan,
    FaultSpecError,
    RANDOM_IAGO_TARGETS,
)


def test_parse_channel_entry():
    plan = FaultPlan.parse("channel-drop:U->green:spawn:2")
    (entry,) = plan.entries
    assert entry.action == "channel-drop"
    assert (entry.src, entry.dst) == ("U", "green")
    assert entry.msg_kind == "spawn"
    assert entry.nth == 2


def test_parse_wildcard_route_and_kind():
    plan = FaultPlan.parse("channel-corrupt:*:*:1")
    (entry,) = plan.entries
    assert (entry.src, entry.dst, entry.msg_kind) == ("*", "*", "*")


def test_parse_iago_entry_with_and_without_mode():
    plan = FaultPlan.parse("iago-retval:malloc:1:replay,"
                           "iago-retval:strlen:3")
    first, second = plan.entries
    assert first.target == "malloc" and first.mode == "replay"
    assert second.target == "strlen" and second.mode == "offset"
    assert second.nth == 3


def test_parse_enclave_entries():
    plan = FaultPlan.parse("enclave-crash:green:1,enclave-restart:*:2")
    crash, restart = plan.entries
    assert crash.action == "enclave-crash" and crash.target == "green"
    assert restart.action == "enclave-restart" and restart.nth == 2


def test_spec_roundtrips():
    spec = ("channel-drop:U->green:spawn:2,channel-corrupt:*:value:1,"
            "iago-retval:malloc:1:replay,enclave-crash:green:1")
    assert FaultPlan.parse(spec).spec() == spec


@pytest.mark.parametrize("bad,fragment", [
    ("flip-bits:x:1", "unknown fault action"),
    ("channel-drop:U->green:spawn", "expected"),
    ("channel-drop:Ugreen:spawn:1", "route"),
    ("channel-drop:U->green:mail:1", "unknown message kind"),
    ("channel-drop:U->green:spawn:zero", "not an integer"),
    ("channel-drop:U->green:spawn:0", ">= 1"),
    ("iago-retval:malloc:1:sideways", "unknown mode"),
    ("enclave-crash:green", "expected"),
    ("", "empty fault spec"),
])
def test_bad_specs_raise(bad, fragment):
    with pytest.raises(FaultSpecError, match=fragment):
        FaultPlan.parse(bad)


def test_random_plans_are_deterministic_per_seed():
    colors = ["blue", "red"]
    a = FaultPlan.random(7, colors)
    b = FaultPlan.random(7, colors)
    assert a.spec() == b.spec()
    assert any(FaultPlan.random(s, colors).spec() != a.spec()
               for s in range(8, 16))


def test_random_iago_targets_are_guarded_only():
    """Random plans must only corrupt guarded externals, where the
    corruption is detectable by construction."""
    for seed in range(64):
        for entry in FaultPlan.random(seed, ["blue"]).entries:
            if entry.action == "iago-retval":
                assert entry.target in RANDOM_IAGO_TARGETS


def test_entry_fires_once_and_reset_rearms():
    plan = FaultPlan.parse("channel-drop:*:value:2")
    (entry,) = plan.entries
    entry.matched = 2
    entry.fired = True
    assert plan.fired() == [entry]
    plan.reset()
    assert entry.matched == 0 and not entry.fired
    assert plan.fired() == []


def test_entry_rejects_nonpositive_nth():
    with pytest.raises(FaultSpecError):
        FaultEntry("channel-drop", nth=0)
