"""The chaos differential suite (acceptance criterion): across
hundreds of seeded fault schedules, on all three engines, every run either
matches the fault-free run exactly or raises a typed RuntimeFault —
zero silently-wrong outcomes, and injected corruption of colored data
is always detected, never absorbed."""

import os

import pytest

from repro.core.compiler import compile_and_partition
from repro.errors import RuntimeFault
from repro.faults import FaultPlan
from repro.faults.differential import (
    SILENTLY_WRONG,
    chaos_sweep,
    classify,
    run_outcome,
    summarize,
)

FIG7_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                         "examples", "fig7.c")

#: The typed taxonomy a chaos run may end in — a bare RuntimeFault
#: (or an untyped exception, which run_outcome lets propagate) fails
#: the suite.
TYPED_FAULTS = {"DeadlockFault", "IagoFault", "EnclaveCrash",
                "WatchdogTimeout"}


@pytest.fixture(scope="module")
def fig7_program():
    with open(FIG7_PATH) as handle:
        return compile_and_partition(handle.read(), mode="relaxed")


def test_fig7_300_seeded_schedules_never_silently_wrong(fig7_program):
    """100 seeds x 3 engines = 300 schedules: the headline gate."""
    records = chaos_sweep(fig7_program, range(100))
    summary = summarize(records)
    assert summary["runs"] == 300
    assert summary[SILENTLY_WRONG] == 0, [
        r for r in records if r["verdict"] == SILENTLY_WRONG]
    # The sweep must actually exercise faults, not dodge them.
    assert summary["fired"] >= 40
    assert summary["typed-fault"] >= 20
    for record in records:
        if record["fault"]:
            assert record["fault"] in TYPED_FAULTS, record


def test_fig7_engines_agree_on_every_verdict(fig7_program):
    """Fault handling is engine-independent: the same seed yields the
    same verdict and the same fault class on both engines."""
    records = chaos_sweep(fig7_program, range(60))
    by_seed = {}
    for record in records:
        by_seed.setdefault(record["seed"], set()).add(
            (record["verdict"], record["fault"]))
    disagreements = {seed: sorted(v) for seed, v in by_seed.items()
                     if len(v) > 1}
    assert not disagreements


@pytest.mark.parametrize("engine", ["decoded", "traced", "legacy"])
@pytest.mark.parametrize("kind", ["spawn", "value", "token"])
def test_corruption_of_colored_data_is_always_detected(fig7_program,
                                                       kind, engine):
    """Corrupting the n-th message of each kind must never be
    absorbed: when the corruption lands, the run faults; when no
    message matched, the run is identical."""
    baseline = run_outcome(fig7_program, None, engine=engine)
    for nth in range(1, 5):
        plan = FaultPlan.parse(f"channel-corrupt:*:{kind}:{nth}")
        outcome = run_outcome(fig7_program, plan, engine=engine)
        verdict = classify(baseline, outcome)
        assert verdict != SILENTLY_WRONG, (kind, nth, outcome)
        if outcome.injected:
            # The corruption landed on a live message: the run must
            # not have completed with the honest result AND a wrong
            # message absorbed — either fault, or the typed check
            # removed it from the run entirely.
            assert outcome.status == "fault", (kind, nth, outcome)
            assert outcome.fault in TYPED_FAULTS
        else:
            assert verdict == "identical"


def test_restart_and_replay_is_exact(fig7_program):
    """An enclave crash recovered at the spawn-delivery boundary
    replays the spawn exactly: result and stdout identical."""
    baseline = run_outcome(fig7_program, None)
    for nth in (1, 2):
        plan = FaultPlan.parse(f"enclave-restart:*:{nth}")
        outcome = run_outcome(fig7_program, plan)
        if outcome.injected:
            assert classify(baseline, outcome) == "identical"


def test_minicache_seeded_schedules():
    """The §9.2 application under chaos, hardened mode: same
    contract as fig7."""
    from repro.apps.minicache.minic_source import (
        ANNOTATED_SOURCE, DECLASSIFY_EXTERNALS)

    program = compile_and_partition(ANNOTATED_SOURCE, mode="hardened")
    records = chaos_sweep(
        program, range(10), entry="run_cache", args=[40],
        externals=DECLASSIFY_EXTERNALS, max_steps=30_000_000)
    summary = summarize(records)
    assert summary[SILENTLY_WRONG] == 0, [
        r for r in records if r["verdict"] == SILENTLY_WRONG]
    assert summary["fired"] >= 5
    for record in records:
        if record["fault"]:
            assert record["fault"] in TYPED_FAULTS, record


@pytest.mark.chaos
def test_long_chaos_sweep(fig7_program):
    """The out-of-band randomized sweep (pytest -m chaos): an order
    of magnitude more seeds than the tier-1 gate."""
    records = chaos_sweep(fig7_program, range(1000))
    summary = summarize(records)
    assert summary[SILENTLY_WRONG] == 0, [
        r for r in records if r["verdict"] == SILENTLY_WRONG]
    assert summary["fired"] >= 300

    from repro.apps.minicache.minic_source import (
        ANNOTATED_SOURCE, DECLASSIFY_EXTERNALS)
    program = compile_and_partition(ANNOTATED_SOURCE, mode="hardened")
    records = chaos_sweep(
        program, range(100), entry="run_cache", args=[40],
        externals=DECLASSIFY_EXTERNALS, max_steps=30_000_000)
    assert summarize(records)[SILENTLY_WRONG] == 0

def test_kl_optimized_partition_keeps_the_chaos_contract():
    """The placement optimizer must not weaken fault detection: the
    kl-optimized fig7 partition runs the same fixed-seed sweep and
    still ends every run identical or typed-fault — elided barrier
    tokens are dead synchronization weight, not a lost detection."""
    with open(FIG7_PATH) as handle:
        source = handle.read()
    program = compile_and_partition(source, mode="relaxed",
                                    optimize="kl")
    records = chaos_sweep(program, range(30))
    summary = summarize(records)
    assert summary["runs"] == 90
    assert summary[SILENTLY_WRONG] == 0, [
        r for r in records if r["verdict"] == SILENTLY_WRONG]
    assert summary["fired"] >= 10
    for record in records:
        if record["fault"]:
            assert record["fault"] in TYPED_FAULTS, record
