"""The channel adversary (tentpole a): drop, duplicate, reorder and
corrupt in-flight messages, and prove each manipulation is either
harmless or detected — at the channel layer and through full runs."""

import pytest

from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import (
    DeadlockFault,
    EnclaveCrash,
    IagoFault,
    RuntimeFault,
    WatchdogTimeout,
)
from repro.faults import FaultInjector, FaultPlan
from repro.runtime.channel import Channel, Message
from repro.runtime.executor import PrivagicRuntime

TYPED = (DeadlockFault, IagoFault, EnclaveCrash, WatchdogTimeout)

SOURCE = """
    int unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;
    void g(int n) { blue_g = n; red_g = n; }
    int f(int y) { g(21); return 42; }
    entry int main() { unsafe_g = 1; int x = f(blue_g); return x; }
"""


def _injected_channel(spec):
    injector = FaultInjector(FaultPlan.parse(spec))
    channel = Channel("U", "green")
    channel.adversary = injector
    return channel, injector


# -- channel-layer semantics --------------------------------------------------


def test_drop_removes_the_message():
    channel, injector = _injected_channel("channel-drop:U->green:value:1")
    channel.push(Message("value", 1))
    assert channel.pending() == 0
    assert injector.injected == {"channel-drop": 1}
    # Single-shot: the next message sails through ...
    channel.push(Message("value", 2))
    assert channel.pending() == 1
    # ... but its sequence number betrays the earlier drop.
    with pytest.raises(IagoFault, match="dropped or reordered"):
        channel.pop("value")
    assert injector.detected.get("channel-gap") == 1


def test_duplicate_is_detected_as_replay():
    channel, injector = _injected_channel("channel-dup:U->green:value:1")
    channel.push(Message("value", 7))
    assert channel.pending() == 2
    assert channel.pop("value").value == 7
    with pytest.raises(IagoFault, match="replayed"):
        channel.pop("value")
    assert injector.detected.get("channel-replay") == 1


def test_corrupt_fails_authentication():
    channel, injector = _injected_channel(
        "channel-corrupt:U->green:value:1")
    channel.push(Message("value", 41))
    with pytest.raises(IagoFault, match="failed authentication"):
        channel.pop("value")
    assert injector.injected == {"channel-corrupt": 1}
    assert injector.detected.get("channel-corrupt") == 1


def test_reorder_swaps_with_the_next_send():
    channel, injector = _injected_channel(
        "channel-reorder:U->green:value:1")
    channel.push(Message("value", 1))
    assert channel.pending() == 0  # withheld
    channel.push(Message("value", 2))
    assert channel.pending() == 2
    # Physical delivery order is swapped: the newer message is at the
    # head of the deque (the `queue` debug view re-sorts by seq).
    assert [m.value for m in channel._queues["value"]] == [2, 1]
    with pytest.raises(IagoFault, match="dropped or reordered"):
        channel.pop("value")


def test_nth_counts_matching_messages_only():
    channel, injector = _injected_channel("channel-drop:*:token:2")
    channel.push(Message("value", 1))  # kind mismatch: not counted
    channel.push(Message("token"))
    channel.push(Message("token"))    # the 2nd token: dropped
    channel.push(Message("token"))
    assert channel.pending("value") == 1
    assert channel.pending("token") == 2
    assert injector.injected == {"channel-drop": 1}


# -- full-run outcomes --------------------------------------------------------


def _run_injected(spec, engine=None):
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program, engine=engine)
    injector = FaultInjector(FaultPlan.parse(spec)).attach(runtime)
    try:
        return runtime.run("main"), injector
    finally:
        injector.detach()


@pytest.mark.parametrize("engine", ["decoded", "legacy"])
@pytest.mark.parametrize("action", ["drop", "dup", "corrupt",
                                    "reorder"])
def test_every_channel_manipulation_is_typed_or_identical(action,
                                                          engine):
    """The chaos contract on each primitive: a manipulated spawn
    either leaves the result identical or raises a typed fault."""
    spec = f"channel-{action}:*:spawn:1"
    try:
        result, injector = _run_injected(spec, engine)
    except RuntimeFault as fault:
        assert isinstance(fault, TYPED), \
            f"untyped fault for {spec}: {fault!r}"
    else:
        assert result == 42
        assert injector.injected_total() == 1


def test_dropped_spawn_deadlocks_with_diagnostics():
    with pytest.raises(DeadlockFault) as excinfo:
        _run_injected("channel-drop:*:spawn:1")
    assert "parked on" in str(excinfo.value)


def test_corrupted_spawn_is_never_executed():
    """A corrupted spawn must be rejected by authentication before
    the chunk runs — the colored globals keep their initial values."""
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    injector = FaultInjector(
        FaultPlan.parse("channel-corrupt:*:spawn:1")).attach(runtime)
    with pytest.raises(IagoFault, match="failed authentication"):
        runtime.run("main")
    assert injector.detected.get("channel-corrupt") == 1


# -- enclave faults -----------------------------------------------------------


def test_enclave_crash_is_typed():
    with pytest.raises(EnclaveCrash, match="crashed \\(AEX\\)"):
        _run_injected("enclave-crash:*:1")


def test_enclave_restart_replays_exactly():
    result, injector = _run_injected("enclave-restart:*:1")
    assert result == 42
    assert injector.injected == {"enclave-restart": 1}
    assert sum(injector.model.restarts.values()) == 1


def test_enclave_restart_budget_exhaustion_crashes():
    """Crashing the same color more often than max_restarts allows
    must end in EnclaveCrash, not an infinite crash loop."""
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    plan = FaultPlan([
        # One restart entry per delivery of the blue chunk; the model
        # allows 0 restarts, so the first crash is final.
        *(FaultPlan.parse("enclave-restart:blue:1").entries),
    ])
    from repro.sgx.enclave import EnclaveFaultModel
    injector = FaultInjector(
        plan, fault_model=EnclaveFaultModel(max_restarts=0))
    injector.attach(runtime)
    with pytest.raises(EnclaveCrash):
        runtime.run("main")
    assert injector.model.crashes.get("blue") == 1
    assert not injector.model.restarts
