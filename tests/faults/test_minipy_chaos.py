"""MiniPy arm of the chaos differential suite (satellite of the
frontend-neutral contract): the runtime fault story is frontend
independent, so a MiniPy secure program under the same seeded fault
schedules obeys the same contract — every run identical to the
fault-free baseline or a typed RuntimeFault, zero silently-wrong."""

import os

import pytest

from repro.core.compiler import compile_and_partition
from repro.faults.differential import (
    SILENTLY_WRONG,
    chaos_sweep,
    summarize,
)

MINIPY_PATH = os.path.join(os.path.dirname(__file__), "..", "..",
                           "examples", "secure_counter.mpy")

TYPED_FAULTS = {"DeadlockFault", "IagoFault", "EnclaveCrash",
                "WatchdogTimeout"}


@pytest.fixture(scope="module")
def minipy_program():
    with open(MINIPY_PATH) as handle:
        return compile_and_partition(handle.read(), mode="hardened",
                                     frontend="minipy")


def test_minipy_seeded_schedules_never_silently_wrong(minipy_program):
    """30 seeds on the decoded and traced engines: the MiniPy gate."""
    records = chaos_sweep(minipy_program, range(30),
                          engines=("decoded", "traced"))
    summary = summarize(records)
    assert summary["runs"] == 60
    assert summary[SILENTLY_WRONG] == 0, [
        r for r in records if r["verdict"] == SILENTLY_WRONG]
    assert summary["fired"] >= 10
    for record in records:
        if record["fault"]:
            assert record["fault"] in TYPED_FAULTS, record


def test_minipy_engines_agree_on_every_verdict(minipy_program):
    records = chaos_sweep(minipy_program, range(20),
                          engines=("decoded", "traced"))
    by_seed = {}
    for record in records:
        by_seed.setdefault(record["seed"], set()).add(
            (record["verdict"], record["fault"]))
    disagreements = {seed: sorted(v) for seed, v in by_seed.items()
                     if len(v) > 1}
    assert not disagreements
