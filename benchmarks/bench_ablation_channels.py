"""Ablation — boundary-crossing mechanisms (DESIGN.md §6).

§9.3.2 attributes the Privagic/Intel-SDK gap to the communication
mechanism: a lock-free SPSC queue versus a lock-based switchless call.
This ablation sweeps the enclave-side work per operation and reports
the crossing overhead of each mechanism, showing the crossover the
paper describes: the gap matters for cheap operations (hashmap) and
washes out for expensive ones (linked list).
"""

from repro.baselines.intelsdk import SdkCallModel
from repro.bench import Report
from repro.sgx.costmodel import MACHINE_A


def regenerate_channel_ablation() -> Report:
    report = Report("ablation_channels",
                    "Ablation: lock-free queue vs lock-based "
                    "switchless call")
    sdk = SdkCallModel()
    privagic_roundtrip = 2 * MACHINE_A.privagic_message_cycles
    rows = []
    for enclave_cycles in (1_000, 10_000, 100_000, 1_000_000,
                           10_000_000):
        sdk_overhead = sdk.call_overhead(enclave_cycles)
        total_privagic = enclave_cycles + privagic_roundtrip
        total_sdk = enclave_cycles + sdk_overhead
        rows.append((enclave_cycles, privagic_roundtrip, sdk_overhead,
                     total_sdk / total_privagic))
    report.table(("enclave cycles/op", "privagic overhead",
                  "sdk overhead", "sdk/privagic total"), rows)
    report.add()
    report.add("Shape: the advantage is largest for cheap operations "
               "(the hashmap's 'few memory accesses', §9.3.2) and "
               "amortizes for long ones (the linked list's 50 000 "
               "node scan).")
    cheap = rows[0][3]
    expensive = rows[-1][3]
    assert cheap > 2.0
    assert expensive < 1.25
    return report


def bench_ablation_channels(benchmark):
    report = benchmark(regenerate_channel_ablation)
    report.write()
