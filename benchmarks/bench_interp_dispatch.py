"""Dispatch micro-benchmark — legacy isinstance dispatch vs the
pre-decoded closure engine vs the trace/superinstruction tier.

Measures interpreted steps/sec on three workloads:

* ``litmus``          — a tight arithmetic loop on a bare Machine
                        (pure dispatch, no runtime protocol);
* ``fig7``            — the Figure 6/7 example with a representative
                        enclave computation in ``g`` (the partitioned
                        protocol the paper's Figure 7 traces, scaled
                        so the enclaves do real work per round);
* ``fig7_protocol``   — the strict Figure 6 protocol loop with no
                        compute, isolating the message-bound floor
                        (Amdahl: the spawn/cont protocol is shared by
                        both engines, so the speedup here is smaller).

Results go to ``BENCH_interp.json`` at the repo root so future PRs
have a perf trajectory, and to the usual benchmark report.  Smoke
mode (``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the workloads
to run in well under a second for CI.
"""

import json
import os
import platform
import sys

import pytest

from repro.bench import Report, capture_trace, measure, speedup
from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.frontend import compile_source
from repro.ir.interp import ENGINES, Machine
from repro.runtime import run_partitioned

pytestmark = pytest.mark.slow

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

LITMUS_ITERS = 500 if SMOKE else 20_000
FIG7_INNER, FIG7_OUTER = (20, 5) if SMOKE else (300, 80)
PROTOCOL_ROUNDS = 10 if SMOKE else 300

LITMUS_SOURCE = """
    int main() {
        int acc = 1;
        for (int i = 0; i < %d; i = i + 1) {
            acc = acc + i * 3 - (acc / 7);
        }
        return acc;
    }
""" % LITMUS_ITERS

FIG7_SOURCE = """
    int color(U) unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        int acc = 0;
        for (int i = 0; i < %d; i = i + 1) {
            acc = acc + i * n;
        }
        blue_g = acc;
        red_g = n;
    }

    int f(int y) {
        g(21);
        return 42;
    }

    entry int main() {
        unsafe_g = 1;
        int x = 0;
        for (int i = 0; i < %d; i = i + 1) {
            x = f(blue_g);
        }
        return x;
    }
""" % (FIG7_INNER, FIG7_OUTER)

PROTOCOL_SOURCE = """
    int color(U) unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        blue_g = n;
        red_g = n;
    }

    int f(int y) {
        g(21);
        return 42;
    }

    entry int main() {
        unsafe_g = 1;
        int x = 0;
        for (int i = 0; i < %d; i = i + 1) {
            x = f(blue_g);
        }
        return x;
    }
""" % PROTOCOL_ROUNDS


def _litmus_thunk(module, engine):
    def thunk():
        machine = Machine(module, engine=engine)
        ctx = machine.spawn("main")
        machine.run()
        assert ctx.result is not None
        return machine.total_steps
    return thunk


def _partitioned_thunk(program, engine):
    def thunk():
        result, runtime = run_partitioned(program, engine=engine)
        assert result == 42
        return runtime.machine.total_steps
    return thunk


def run_dispatch_comparison(repeat: int = 3):
    """Measure every workload under both engines; returns the
    machine-readable results dict."""
    litmus_module = compile_source(LITMUS_SOURCE)
    fig7_program = compile_and_partition(FIG7_SOURCE, mode=RELAXED)
    proto_program = compile_and_partition(PROTOCOL_SOURCE,
                                          mode=RELAXED)
    workloads = {
        "litmus": lambda engine: _litmus_thunk(litmus_module, engine),
        "fig7": lambda engine: _partitioned_thunk(fig7_program,
                                                  engine),
        "fig7_protocol": lambda engine: _partitioned_thunk(
            proto_program, engine),
    }
    results = {
        "meta": {
            "python": platform.python_version(),
            "smoke": SMOKE,
            "engines": list(ENGINES),
            "litmus_iters": LITMUS_ITERS,
            "fig7_inner": FIG7_INNER,
            "fig7_outer": FIG7_OUTER,
            "protocol_rounds": PROTOCOL_ROUNDS,
        },
        "workloads": {},
    }
    for name, make in workloads.items():
        timings = {engine: measure(make(engine), repeat=repeat)
                   for engine in ("legacy", "decoded", "traced")}
        for engine in ("decoded", "traced"):
            if timings["legacy"].steps != timings[engine].steps:
                raise RuntimeError(
                    f"{name}: engines disagree on step count "
                    f"(legacy {timings['legacy'].steps} vs {engine} "
                    f"{timings[engine].steps})")
        entry = {engine: t.as_dict() for engine, t in timings.items()}
        entry["speedup"] = round(speedup(timings["legacy"],
                                         timings["decoded"]), 2)
        entry["traced_speedup"] = round(speedup(timings["legacy"],
                                                timings["traced"]), 2)
        entry["traced_vs_decoded"] = round(speedup(timings["decoded"],
                                                   timings["traced"]),
                                           2)
        results["workloads"][name] = entry
    return results


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_json(results) -> str:
    # Smoke runs are for CI plumbing, not perf numbers — keep them
    # from clobbering the committed trajectory file.
    name = ("BENCH_interp.smoke.json" if results["meta"]["smoke"]
            else "BENCH_interp.json")
    path = os.path.join(_repo_root(), name)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def regenerate_dispatch_report() -> Report:
    report = Report("interp_dispatch",
                    "Dispatch: legacy vs pre-decoded vs traced")
    results = run_dispatch_comparison()
    rows = []
    for name, entry in results["workloads"].items():
        rows.append((name,
                     entry["legacy"]["steps"],
                     entry["legacy"]["steps_per_sec"],
                     entry["decoded"]["steps_per_sec"],
                     entry["traced"]["steps_per_sec"],
                     f"{entry['speedup']:.2f}x",
                     f"{entry['traced_speedup']:.2f}x"))
    report.table(("workload", "steps", "legacy steps/s",
                  "decoded steps/s", "traced steps/s", "decoded x",
                  "traced x"), rows)
    report.add()
    fig7 = results["workloads"]["fig7"]["speedup"]
    fig7_traced = results["workloads"]["fig7"]["traced_vs_decoded"]
    proto = results["workloads"]["fig7_protocol"]["speedup"]
    report.add(f"Fig 7 workload speedup: {fig7:.2f}x decoded, "
               f"traced {fig7_traced:.2f}x on top "
               f"(protocol-only floor: {proto:.2f}x — the spawn/cont "
               f"message protocol is engine-independent work)")
    path = write_json(results)
    report.add(f"machine-readable results: {os.path.basename(path)}")
    trace_path = os.environ.get("REPRO_TRACE")
    if trace_path:
        # One extra instrumented fig7 run (the timed loops above ran
        # unobserved): leaves a Chrome trace next to the JSON.
        program = compile_and_partition(FIG7_SOURCE, mode=RELAXED)
        capture_trace(program, trace_path)
        report.add(f"chrome trace: {trace_path}")
    if not SMOKE:
        assert fig7 >= 5.0, \
            f"pre-decoded engine below 5x on fig7: {fig7:.2f}x"
        assert fig7_traced >= 2.5, \
            f"trace tier below 2.5x decoded on fig7: {fig7_traced:.2f}x"
    return report


def bench_interp_dispatch(benchmark):
    report = benchmark(regenerate_dispatch_report)
    report.write()


if __name__ == "__main__":
    if "--smoke" in sys.argv and not SMOKE:
        # Sizes are baked into the sources at import time, so flip
        # the env var and start over.
        os.environ["REPRO_BENCH_SMOKE"] = "1"
        os.execv(sys.executable, [sys.executable, __file__])
    report = regenerate_dispatch_report()
    report.write()
    print(report.text())
