"""Ablation — hardened versus relaxed mode (paper §5, §6.1).

The same program compiled in both modes: hardened refuses untrusted
inputs to enclaves (Iago protection) and multi-color structures;
relaxed admits both at the price of the Iago guarantee.  The ablation
reports what each mode accepts and the message traffic of the
partitioned runs.
"""

from repro.bench import Report
from repro.core.colors import HARDENED, RELAXED
from repro.core.compiler import compile_and_partition
from repro.errors import PartitionError, SecureTypeError
from repro.runtime import run_partitioned

CLEAN = """
    long color(blue) total = 0;
    entry int main() {
        for (int i = 0; i < 10; i++) total = total + i;
        return 0;
    }
"""

IAGO = """
    int knob = 4;
    int color(blue) state = 10;
    entry int main() { state = state + knob; return 0; }
"""

MULTICOLOR = """
    struct account {
        long color(blue) owner;
        double color(red) balance;
    };
    entry int main() {
        struct account* a = malloc(sizeof(struct account));
        a->owner = 7;
        return 0;
    }
"""

PROGRAMS = {"clean": CLEAN, "iago-input": IAGO,
            "multi-color struct": MULTICOLOR}


def _try(source: str, mode: str):
    try:
        program = compile_and_partition(source, mode=mode)
    except (SecureTypeError, PartitionError) as error:
        return f"rejected ({error.args[0][:40]}...)", None
    result, runtime = run_partitioned(program, "main")
    return "runs", runtime.stats.messages


def regenerate_mode_ablation() -> Report:
    report = Report("ablation_modes",
                    "Ablation: hardened vs relaxed mode")
    rows = []
    outcomes = {}
    for name, source in PROGRAMS.items():
        for mode in (HARDENED, RELAXED):
            verdict, messages = _try(source, mode)
            outcomes[(name, mode)] = verdict
            rows.append((name, mode, verdict,
                         messages if messages is not None else "-"))
    report.table(("program", "mode", "outcome", "messages"), rows)
    report.add()
    report.add("Paper: hardened mode enforces confidentiality, "
               "integrity AND Iago protection; relaxed mode drops the "
               "Iago protection but supports multi-color structures "
               "(§5, §8).")
    assert outcomes[("clean", HARDENED)] == "runs"
    assert outcomes[("clean", RELAXED)] == "runs"
    assert outcomes[("iago-input", HARDENED)].startswith("rejected")
    assert outcomes[("iago-input", RELAXED)] == "runs"
    assert outcomes[("multi-color struct",
                     HARDENED)].startswith("rejected")
    assert outcomes[("multi-color struct", RELAXED)] == "runs"
    return report


def bench_ablation_modes(benchmark):
    report = benchmark(regenerate_mode_ablation)
    report.write()
