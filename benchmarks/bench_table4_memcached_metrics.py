"""Table 4 — memcached metrics (paper §9.2.1 / §9.2.2).

Reproduces the three columns for our minicache stand-in:

* **Modified (C locs)** — diff between the pristine and annotated
  MiniC sources (paper: Scone 0, Privagic 9);
* **TCB** — what is loaded in the enclave: with Scone the whole
  application + musl + libOS (51 271 KiB), with Privagic the Privagic
  runtime + Intel SDK runtime plus only the partitioned user code;
* **User code (LLVM)** — IR lines of the user code inside the
  enclave versus the whole application (paper: 1 238 vs 78 106).
"""

from repro.apps.minicache.minic_source import (
    FULL_ANNOTATED,
    FULL_PRISTINE,
    modified_lines,
)
from repro.baselines.scone import (
    SCONE_TCB_KIB,
    SCONE_USER_CODE_LLVM_LINES,
)
from repro.bench import Report
from repro.core.compiler import compile_and_partition
from repro.frontend import compile_source
from repro.ir.printer import print_module
from repro.sgx.enclave import Enclave

#: Fixed runtime sizes inside the enclave with Privagic (Intel SDK
#: runtime + Privagic runtime; paper: 268 KiB total).
PRIVAGIC_RUNTIME_KIB = 268


def _ir_lines(module) -> int:
    return sum(1 for line in print_module(module).splitlines()
               if line.strip() and not line.lstrip().startswith(";"))


def regenerate_table4() -> Report:
    report = Report("table4_memcached_metrics",
                    "Table 4: minicache metrics (memcached stand-in)")
    count, lines = modified_lines()

    # Whole application, as a Scone-style full embed would load it.
    whole = compile_source(FULL_PRISTINE)
    whole_lines = _ir_lines(whole)

    # Privagic partition: only the store-enclave module is trusted.
    program = compile_and_partition(FULL_ANNOTATED, mode="hardened")
    enclave = Enclave("store", program.modules["store"])
    enclave_lines = enclave.code_lines()
    untrusted_lines = _ir_lines(program.modules[program.untrusted])

    report.table(
        ("", "Modified (locs)", "TCB (KiB)", "User code (IR lines)"),
        [
            ("Scone (model)", 0, SCONE_TCB_KIB,
             f"{whole_lines} (+ libraries)"),
            ("Privagic", count, PRIVAGIC_RUNTIME_KIB,
             str(enclave_lines)),
        ])
    report.add()
    report.add(f"Paper: Scone 51,271 KiB / 78,106 LLVM lines; "
               f"Privagic 9 modified lines, 268 KiB, 1,238 LLVM lines.")
    report.add(f"Enclave user code is {whole_lines / enclave_lines:.1f}x "
               f"smaller than the whole application "
               f"(untrusted partition: {untrusted_lines} lines).")
    report.add(f"Annotation effort: {count} modified lines "
               f"(2 colors on the central map's fields + "
               f"{count - 2} classify/declassify boundary lines).")
    report.add()
    report.add("Modified lines:")
    for line in lines:
        report.add(f"    {line}")

    assert count <= 20, "annotation effort must stay modest (§9.2.1)"
    assert enclave_lines < whole_lines / 2, \
        "the enclave must hold a fraction of the application (§9.2.2)"
    # Attestation sanity: the enclave has a stable measurement.
    assert len(enclave.measurement) == 64
    return report


def bench_table4(benchmark):
    report = benchmark(regenerate_table4)
    report.write()
