"""Figure 8 — memcached (minicache) with YCSB (paper §9.2.3).

Machine B, YCSB 6 clients x 6 threads over loopback, 1024-byte
records, 8 000 000 operations, datasets from 1 MiB to 32 GiB.
Configurations: Unprotected, Scone (full embed), Privagic (central
map colored, hardened mode).

Expected shapes (paper):
* small datasets (< 200 MiB): Privagic 8.5-10x Scone's throughput and
  within 5-20% of Unprotected;
* 32 GiB: Privagic degrades (enclave LLC misses + EPC) but stays
  >= 2.3x Scone.
"""

from repro.apps.deployments import CacheExperiment
from repro.bench import Report
from repro.sgx.costmodel import GIB, MIB
from repro.workloads import WORKLOAD_A

DEPLOYMENTS = ("Unprotected", "Scone", "Privagic")
DATASETS_MIB = (1, 4, 16, 64, 200, 512, 1024, 4096, 8192, 16384, 32768)


def regenerate_figure8() -> Report:
    report = Report("fig8_memcached",
                    "Figure 8: memcached with YCSB (machine B, "
                    "workload A)")
    rows = []
    by_size = {}
    for size_mib in DATASETS_MIB:
        n_records = max(1, size_mib * MIB // 1024)
        experiment = CacheExperiment(n_records, WORKLOAD_A)
        results = {d: experiment.run(d) for d in DEPLOYMENTS}
        by_size[size_mib] = results
        for d in DEPLOYMENTS:
            r = results[d]
            rows.append((f"{size_mib} MiB", d, r.throughput_ops,
                         r.mean_latency_us))
    report.table(("dataset", "deployment", "ops/s", "latency_us"),
                 rows)
    report.add()
    small = by_size[64]
    report.band("small dataset: Privagic/Scone throughput",
                small["Privagic"].throughput_ops
                / small["Scone"].throughput_ops, (8.5, 10.0))
    report.band("small dataset: Unprotected/Privagic throughput",
                small["Unprotected"].throughput_ops
                / small["Privagic"].throughput_ops, (1.05, 1.20))
    large = by_size[32768]
    ratio = (large["Privagic"].throughput_ops
             / large["Scone"].throughput_ops)
    report.add(f"[{'OK ' if ratio >= 2.3 else 'OUT'}] 32 GiB: "
               f"Privagic/Scone = {ratio:.2f} (paper: >= 2.3)")
    # Monotone degradation of Privagic with dataset size (cache
    # effects, §9.2.3).
    privagic_curve = [by_size[s]["Privagic"].throughput_ops
                      for s in DATASETS_MIB]
    assert privagic_curve[0] >= privagic_curve[-1] * 2
    return report


def bench_fig8(benchmark):
    report = benchmark(regenerate_figure8)
    report.write()
    assert not any(line.startswith("[OUT") for line in report.lines)
