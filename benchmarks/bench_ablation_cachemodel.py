"""Ablation — analytic access profiles vs instrumented structures.

The Figure 8-10 experiments use analytic per-operation access counts
(8M-operation runs cannot be simulated node by node).  This ablation
validates those profiles against the real, instrumented data
structures at a feasible scale.
"""

from repro.apps.deployments import PROFILES
from repro.bench import Report
from repro.datastructures import (
    AccessCounter,
    ChainingHashMap,
    LinkedListMap,
    RedBlackTreeMap,
)
from repro.workloads import UniformGenerator

STRUCTURES = {
    "linkedlist": LinkedListMap,
    "rbtree": RedBlackTreeMap,
    "hashmap": ChainingHashMap,
}

N_ITEMS = 2_000
N_OPS = 400


def measured_accesses(name: str) -> float:
    counter = AccessCounter()
    cls = STRUCTURES[name]
    structure = cls(counter=counter) if name == "hashmap" else \
        cls(counter)
    for key in range(N_ITEMS):
        structure.put(key, key)
    counter.reset()
    chooser = UniformGenerator(N_ITEMS, seed=17)
    for _ in range(N_OPS):
        structure.get(chooser.next())
    return counter.mean_accesses_per_op()


def regenerate_cachemodel_ablation() -> Report:
    report = Report("ablation_cachemodel",
                    "Ablation: analytic access profiles vs "
                    "instrumented structures (n=2000, reads)")
    rows = []
    for name in STRUCTURES:
        measured = measured_accesses(name)
        predicted = PROFILES[name].expected_accesses("read", N_ITEMS)
        error = abs(measured - predicted) / max(measured, 1.0)
        rows.append((name, f"{predicted:.1f}", f"{measured:.1f}",
                     f"{100 * error:.0f}%"))
        assert error < 0.5, (name, predicted, measured)
    report.table(("structure", "analytic", "measured", "error"), rows)
    report.add()
    report.add("The analytic profiles (n/2 for the list, 1.39*log2 n "
               "for the tree, ~2.5 for the hashmap) are the inputs of "
               "the Figure 8-10 cost model.")
    return report


def bench_ablation_cachemodel(benchmark):
    report = benchmark(regenerate_cachemodel_ablation)
    report.write()
