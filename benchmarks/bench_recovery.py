"""Recovery benchmark — the measured cost of each death policy.

A fixed seeded lockstep load (workload A, 2 shards) runs four times:
with no failure, and with a deterministic mid-run shard kill (the
``--kill-shard`` AEX fuse) answered by each recovery policy —
``restart`` (respawn + exact replay), ``rebalance`` (ring removal +
acked-log migration to the survivor) and ``degrade`` followed by a
shard re-add (the inverse migration).  Every arm must finish with
zero client-visible errors, and the restart/rebalance/readd arms
must converge to the digest ledger of the clean run — the benchmark
measures what exactness *costs*, it never trades it away.

Reported per arm: end-to-end ops/s, client p99, and the recovery
work actually performed (keys replayed / migrated, requests
reissued).  The headline ratios are each policy's throughput
against the clean run at identical load — i.e. the price of one
mid-run shard death under that policy.

Results go to ``BENCH_recovery.json`` at the repo root plus the
usual benchmark report.  Smoke mode (``REPRO_BENCH_SMOKE=1`` or
``--smoke``) shrinks the op counts for CI.
"""

import json
import os
import platform
import sys

import pytest

from repro.bench import Report
from repro.serve.router import RouterConfig, RouterThread

pytestmark = [pytest.mark.slow, pytest.mark.net]

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

CLIENTS = 3
OPS = 180 if SMOKE else 900
RECORDS = 32 if SMOKE else 128
VALUE_BYTES = 24 if SMOKE else 64
KILL_AT = 40 if SMOKE else 200     # shard0 op count before the AEX
SEED = 29


def _one_arm(kill, on_death, readd=False):
    """One measured run: fresh 2-shard router, the same seeded
    lockstep load, an optional deterministic shard0 kill answered by
    ``on_death`` (and an optional re-add request queued right after
    the load so the inverse migration is part of the measured
    drain)."""
    from repro.serve.loadgen import run_load

    config = RouterConfig(
        port=0, shards=2, batch=8, on_death=on_death,
        crash_after={0: KILL_AT} if kill else {})
    with RouterThread(config) as rt:
        report = run_load("127.0.0.1", rt.router.port, workload="A",
                          clients=CLIENTS, ops=OPS, records=RECORDS,
                          value_bytes=VALUE_BYTES, seed=SEED,
                          lockstep=True)
        if readd:
            import time
            rt.router.request_readd(0)
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline \
                    and len(rt.router.ring.nodes) < 2:
                time.sleep(0.02)
            if len(rt.router.ring.nodes) < 2:
                raise RuntimeError("re-add did not complete")
        rt.stop()
    if rt.error is not None:
        raise rt.error
    if report["dropped_connections"] or report["errors"] \
            or report.get("abandoned"):
        raise RuntimeError(f"{on_death} arm saw client failures: "
                           f"{report}")
    registry = rt.router.registry
    return {
        "ops_per_s": report["ops_per_s"],
        "p50_ms": report["p50_ms"],
        "p99_ms": report["p99_ms"],
        "unavailable": report.get("unavailable", 0),
        "replayed_keys": registry.value("router.replayed_keys"),
        "migrated_keys": registry.value("router.migrated_keys"),
        "reissued_requests":
            registry.value("router.reissued_requests"),
        "lost_keys": rt.router.stats()["lost_keys"],
        "digests": rt.router.final_digests(),
    }


def run_recovery_comparison():
    results = {
        "meta": {
            "python": platform.python_version(),
            "smoke": SMOKE,
            "clients": CLIENTS,
            "ops": OPS,
            "records": RECORDS,
            "value_bytes": VALUE_BYTES,
            "kill_at": KILL_AT,
            "seed": SEED,
        },
        "arms": {},
    }
    # Warm once so the clean arm is not paying import costs.
    _one_arm(kill=False, on_death="restart")
    arms = results["arms"]
    arms["clean"] = _one_arm(kill=False, on_death="restart")
    arms["restart"] = _one_arm(kill=True, on_death="restart")
    arms["rebalance"] = _one_arm(kill=True, on_death="rebalance")
    arms["degrade_readd"] = _one_arm(kill=True, on_death="degrade",
                                     readd=True)
    clean_digests = arms["clean"].pop("digests")
    for name in ("restart", "rebalance", "degrade_readd"):
        arm = arms[name]
        exact = arm.pop("digests") == clean_digests
        arm["ledger_identical"] = exact
        if not exact:
            raise RuntimeError(
                f"{name} arm diverged from the clean ledger")
        arm["vs_clean"] = round(
            arm["ops_per_s"] / arms["clean"]["ops_per_s"], 3)
    return results


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_json(results) -> str:
    name = ("BENCH_recovery.smoke.json" if results["meta"]["smoke"]
            else "BENCH_recovery.json")
    path = os.path.join(_repo_root(), name)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def regenerate_recovery_report() -> Report:
    report = Report("recovery",
                    "Recovery: the cost of one mid-run shard death")
    results = run_recovery_comparison()
    arms = results["arms"]
    rows = [("clean", arms["clean"]["ops_per_s"],
             arms["clean"]["p99_ms"], 0, 0, "1.000x", "-")]
    for name in ("restart", "rebalance", "degrade_readd"):
        arm = arms[name]
        rows.append((name, arm["ops_per_s"], arm["p99_ms"],
                     arm["replayed_keys"], arm["migrated_keys"],
                     f"{arm['vs_clean']:.3f}x",
                     "yes" if arm["ledger_identical"] else "NO"))
    report.table(("policy", "ops/s", "p99 ms", "replayed",
                  "migrated", "vs clean", "ledger identical"), rows)
    report.add()
    report.add(f"load: YCSB-A, {CLIENTS} lockstep clients, "
               f"{OPS} ops, {RECORDS} records, shard0 killed at "
               f"op {KILL_AT}")
    report.add("every arm finished with zero client-visible errors; "
               "all recovery ledgers byte-identical to the clean run")
    path = write_json(results)
    report.add(f"machine-readable results: {os.path.basename(path)}")
    if not SMOKE:
        for name in ("restart", "rebalance", "degrade_readd"):
            # Exactness is asserted above; the perf gate is loose on
            # purpose — restart pays a full process respawn, so the
            # floor only catches pathological recovery stalls.
            assert arms[name]["vs_clean"] >= 0.2, \
                f"{name}: one shard death cost more than 5x " \
                f"throughput ({arms[name]['vs_clean']}x)"
        assert arms["rebalance"]["migrated_keys"] > 0
        assert arms["restart"]["replayed_keys"] > 0
    return report


def bench_recovery(benchmark):
    report = benchmark(regenerate_recovery_report)
    report.write()


if __name__ == "__main__":
    if "--smoke" in sys.argv and not SMOKE:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
        os.execv(sys.executable, [sys.executable, __file__])
    report = regenerate_recovery_report()
    report.write()
    print(report.text())
