"""Figure 9 — data structures with YCSB, one color (paper §9.3.2).

Machine A, 100 000 pre-loaded keys, 8-byte keys / 1024-byte values.
Configurations: Unprotected, Privagic-1 (whole structure colored,
hardened mode), Intel-sdk-1 (EDL map interface).  Workloads A, B, C.

Expected shapes (paper):
* Privagic-1 multiplies Intel-sdk-1's throughput by 2.2-2.7 (treemap),
  1.6-2.7 (hashmap), 1.1-1.2 (linked list);
* Unprotected divides by Privagic-1: 19.5-26.7 (treemap), 3.6-6.1
  (hashmap), 1.2-1.7 (linked list).
"""

from repro.apps.deployments import MapExperiment, PROFILES
from repro.bench import Report
from repro.workloads import WORKLOAD_A, WORKLOAD_B, WORKLOAD_C

N_ITEMS = 100_000
DEPLOYMENTS = ("Unprotected", "Privagic-1", "Intel-sdk-1")
BANDS = {
    "rbtree": ((19.5, 26.7), (2.2, 2.7)),
    "hashmap": ((3.6, 6.1), (1.6, 2.7)),
    "linkedlist": ((1.2, 1.7), (1.0, 1.3)),
}


def regenerate_figure9() -> Report:
    report = Report("fig9_datastructures",
                    "Figure 9: data structures with YCSB (1 color, "
                    "machine A, 100k keys)")
    rows = []
    ratios = {}
    for structure in ("linkedlist", "rbtree", "hashmap"):
        for spec in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C):
            experiment = MapExperiment(PROFILES[structure], N_ITEMS,
                                       spec)
            results = {d: experiment.run(d) for d in DEPLOYMENTS}
            for d in DEPLOYMENTS:
                r = results[d]
                rows.append((structure, spec.name, d,
                             r.throughput_ops, r.mean_latency_us))
            if spec is WORKLOAD_A:
                ratios[structure] = (
                    results["Unprotected"].throughput_ops
                    / results["Privagic-1"].throughput_ops,
                    results["Privagic-1"].throughput_ops
                    / results["Intel-sdk-1"].throughput_ops)
    report.table(("structure", "wl", "deployment", "ops/s",
                  "latency_us"), rows)
    report.add()
    for structure, (unprot_ratio, sdk_ratio) in ratios.items():
        report.band(f"{structure}: Unprotected/Privagic-1",
                    unprot_ratio, BANDS[structure][0])
        report.band(f"{structure}: Privagic-1/Intel-sdk-1",
                    sdk_ratio, BANDS[structure][1])
    return report


def bench_fig9(benchmark):
    report = benchmark(regenerate_figure9)
    report.write()
    assert all(line.startswith(("[OK", "==")) or True
               for line in report.lines)
    assert not any(line.startswith("[OUT") for line in report.lines)
