"""Compiler-pipeline benchmark: wall-clock cost of each Privagic
stage (frontend, mem2reg, analysis, partitioning) on the full
minicache application — the repository's own performance regression
guard."""

from repro.apps.minicache.minic_source import FULL_ANNOTATED
from repro.core.analysis import analyze_module
from repro.core.colors import HARDENED
from repro.core.compiler import compile_and_partition
from repro.core.partition import partition
from repro.core.structs import rewrite_multicolor_structs
from repro.frontend import compile_source
from repro.ir.passes import mem2reg


def bench_frontend(benchmark):
    module = benchmark(compile_source, FULL_ANNOTATED)
    assert module.defined_functions()


def bench_mem2reg(benchmark):
    def run():
        module = compile_source(FULL_ANNOTATED)
        return mem2reg(module)
    promoted = benchmark(run)
    assert promoted > 10


def bench_analysis(benchmark):
    def run():
        module = compile_source(FULL_ANNOTATED)
        mem2reg(module)
        rewrite_multicolor_structs(module, HARDENED)
        return analyze_module(module, HARDENED)
    analysis = benchmark(run)
    assert not analysis.errors


def bench_full_pipeline(benchmark):
    program = benchmark(compile_and_partition, FULL_ANNOTATED,
                        HARDENED)
    assert "store" in program.modules


def bench_partitioned_execution(benchmark):
    """End-to-end: run 20 requests through the partitioned program on
    the worker/channel runtime."""
    from repro.apps.minicache.minic_source import DECLASSIFY_EXTERNALS
    from repro.runtime import PrivagicRuntime

    program = compile_and_partition(FULL_ANNOTATED, HARDENED)

    def run():
        runtime = PrivagicRuntime(program, DECLASSIFY_EXTERNALS,
                                  max_steps=50_000_000)
        return runtime.run("serve", [20])

    result = benchmark(run)
    assert result == 20
