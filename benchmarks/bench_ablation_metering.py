"""Ablation — IR-level metering cross-check.

The Figure 8-10 results come from the analytic cost model; this
ablation runs the *same program* through the IR interpreter in three
deployments and meters its actual memory traffic, checking that the
orderings agree with the analytic model: unprotected is cheapest,
Privagic pays messages plus enclave accesses for the colored part
only, full-in-enclave pays enclave prices on everything.
"""

from repro.bench import Report
from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.runtime import PrivagicRuntime
from repro.sgx.metering import MachineMeter

SOURCE = """
    long color(blue) total = 0;
    long scratch[64];
    entry long main() {
        for (long i = 0; i < 64; i++) scratch[i] = i;
        for (long i = 0; i < 64; i++) total = total + scratch[i];
        return 0;
    }
"""


def _unprotected() -> MachineMeter:
    machine = Machine(compile_source(SOURCE))
    meter = MachineMeter(machine, resident_slots=16)
    machine.run_function("main")
    return meter


def _full_in_enclave() -> MachineMeter:
    machine = Machine(compile_source(SOURCE))
    meter = MachineMeter(machine, resident_slots=16)
    machine.spawn("main", [], mode="blue")
    machine.run()
    return meter


def _privagic() -> MachineMeter:
    program = compile_and_partition(SOURCE, mode=RELAXED)
    runtime = PrivagicRuntime(program)
    meter = MachineMeter(runtime.machine, resident_slots=16)
    runtime.run("main")
    meter.charge_runtime_messages(runtime)
    return meter


def regenerate_metering_ablation() -> Report:
    report = Report("ablation_metering",
                    "Ablation: metered IR runs vs the analytic model")
    meters = {
        "Unprotected": _unprotected(),
        "Privagic (partitioned)": _privagic(),
        "Full-in-enclave (Scone-like)": _full_in_enclave(),
    }
    rows = []
    for name, meter in meters.items():
        rows.append((name, f"{meter.cycles:,.0f}",
                     f"{meter.enclave_access_fraction():.2f}"))
    report.table(("deployment", "metered cycles",
                  "enclave access share"), rows)
    report.add()
    report.add("Orderings match the analytic model: unprotected < "
               "partitioned < full embed; the partitioned run keeps "
               "only the colored accumulator's traffic in enclave "
               "mode.")
    unprot = meters["Unprotected"].cycles
    privagic = meters["Privagic (partitioned)"].cycles
    full = meters["Full-in-enclave (Scone-like)"].cycles
    assert unprot < privagic
    assert meters["Privagic (partitioned)"].enclave_access_fraction() \
        < meters["Full-in-enclave (Scone-like)"].enclave_access_fraction()
    return report


def bench_ablation_metering(benchmark):
    report = benchmark(regenerate_metering_ablation)
    report.write()
