"""Figure 3 — the motivating experiment (paper §3).

Quantifies the hidden-pointer-modification failure: over many thread
interleavings of Figure 3a, how often does the Glamdring-style
(flow-sensitive, sequential) partition leak the sensitive value into
unsafe memory, and what does Privagic do with the same program?
"""

from repro.baselines import AbstractInterpTaint
from repro.bench import Report
from repro.core import analyze_module
from repro.core.colors import HARDENED
from repro.errors import SecureTypeError
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.sgx import Attacker

SECRET = 6700417

SOURCE = """
    long a;
    long b;
    long* x;
    void f(long s) { x = &a; *x = s; }
    void g(long unused) { x = &b; }
"""

COLORED_SOURCE = """
    long color(blue) a;
    long b;
    long color(blue)* x;
    void f(long color(blue) s) { x = &a; *x = s; }
    void g(long unused) { x = &b; }
    entry void run(long color(blue) s) { f(s); g(0); }
"""


def regenerate_figure3() -> Report:
    report = Report("fig3_dataflow_failure",
                    "Figure 3: hidden pointer modification vs "
                    "data flow analysis")
    module = compile_source(SOURCE)
    analysis = AbstractInterpTaint(module,
                                   sensitive_params=[("f", "s")])
    protected = sorted(analysis.partition.protected_globals)
    report.add(f"Glamdring-style analysis protects: {protected}")

    leaks = 0
    total = 0
    leaking_prefixes = []
    for prefix in range(1, 40):
        m = compile_source(SOURCE)
        for name in protected:
            gv = m.get_global(name)
            gv.value_type = gv.value_type.with_color("dfenclave")
        machine = Machine(m)
        ctx_f = machine.spawn("f", [SECRET], mode="dfenclave")
        ctx_g = machine.spawn("g", [0], mode=None)
        for _ in range(prefix):
            if ctx_f.finished:
                break
            ctx_f.step()
        while not ctx_g.finished:
            ctx_g.step()
        while not ctx_f.finished:
            ctx_f.step()
        total += 1
        if Attacker(machine).scan_for(SECRET):
            leaks += 1
            leaking_prefixes.append(prefix)
    report.add(f"Interleavings explored: {total}; leaking: {leaks} "
               f"(prefixes {leaking_prefixes[:6]}...)")
    assert leaks > 0, "the Figure 3 race must be reproducible"

    try:
        analyze_module(compile_source(COLORED_SOURCE), HARDENED)
        privagic = "accepted (BUG)"
    except SecureTypeError as error:
        privagic = f"rejected at compile time: {error}"
    report.add(f"Privagic on the same program: {privagic}")
    assert privagic.startswith("rejected")
    report.add()
    report.add("Paper §3: sequential data flow analysis cannot see "
               "the pointer mutation of the second thread; explicit "
               "secure typing reports the type error at line 20.")
    return report


def bench_fig3(benchmark):
    report = benchmark(regenerate_figure3)
    report.write()
