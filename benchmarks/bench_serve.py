"""Serve benchmark — the batching payoff over real sockets.

For every YCSB workload (A/B/C/D/F) at 1, 4 and 16 concurrent
clients, runs the load generator against two servers that differ only
in ``batch``: 16 (the default scheduling round) vs 1 (one interpreter
drive per request).  The fixed per-drive costs — app context spawn,
worker-group creation, scheduler warmup/drain — are paid per *batch*
in the first server and per *request* in the second, so the ratio is
the direct measurement of the amortization the serve layer exists
for.

Results go to ``BENCH_serve.json`` at the repo root (ops/s and
p50/p95/p99 per cell) plus the usual benchmark report.  Smoke mode
(``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the op counts and
the client matrix for CI.
"""

import json
import os
import platform
import sys

import pytest

from repro.bench import Report
from repro.serve.engine import SecureKVEngine, compile_secure_kv
from repro.serve.loadgen import run_load
from repro.serve.server import ServeConfig, ServerThread

pytestmark = [pytest.mark.slow, pytest.mark.net]

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

WORKLOADS = ("A", "B", "C", "D", "F")
CLIENTS = (1, 4) if SMOKE else (1, 4, 16)
OPS_PER_CLIENT = 20 if SMOKE else 120
RECORDS = 32 if SMOKE else 64
VALUE_BYTES = 64 if SMOKE else 128
BATCHES = (16, 1)


def _run_cell(program, workload, clients, batch, seed):
    """One (workload, clients, batch) measurement: fresh server,
    fresh cache, shared compiled program."""
    config = ServeConfig(port=0, batch=batch, queue_depth=256)
    with ServerThread(config,
                      engine=SecureKVEngine(program=program)) as st:
        report = run_load("127.0.0.1", st.server.port,
                          workload=workload, clients=clients,
                          ops=OPS_PER_CLIENT * clients,
                          records=RECORDS, value_bytes=VALUE_BYTES,
                          seed=seed)
        st.stop()
    if st.error is not None:
        raise st.error
    if report["dropped_connections"] or report["errors"]:
        raise RuntimeError(
            f"{workload}x{clients} batch={batch}: "
            f"{report['dropped_connections']} dropped, "
            f"{report['errors']} errors")
    return {
        "ops_per_s": report["ops_per_s"],
        "p50_ms": report["p50_ms"],
        "p95_ms": report["p95_ms"],
        "p99_ms": report["p99_ms"],
        "shed_retries": report["shed_retries"],
    }


def run_serve_comparison():
    program = compile_secure_kv()
    # Warm the lanes once (imports, socket setup, code paths) so the
    # first measured cell is not paying one-time costs.
    _run_cell(program, "C", CLIENTS[0], BATCHES[0], seed=99)
    results = {
        "meta": {
            "python": platform.python_version(),
            "smoke": SMOKE,
            "clients": list(CLIENTS),
            "ops_per_client": OPS_PER_CLIENT,
            "records": RECORDS,
            "value_bytes": VALUE_BYTES,
        },
        "workloads": {},
    }
    for workload in WORKLOADS:
        per_clients = {}
        for clients in CLIENTS:
            cell = {}
            for batch in BATCHES:
                key = "batched" if batch == 16 else "batch1"
                cell[key] = _run_cell(program, workload, clients,
                                      batch, seed=7)
            cell["speedup"] = round(
                cell["batched"]["ops_per_s"]
                / cell["batch1"]["ops_per_s"], 2)
            per_clients[str(clients)] = cell
        results["workloads"][workload] = per_clients
    return results


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_json(results) -> str:
    name = ("BENCH_serve.smoke.json" if results["meta"]["smoke"]
            else "BENCH_serve.json")
    path = os.path.join(_repo_root(), name)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def regenerate_serve_report() -> Report:
    report = Report("serve",
                    "Serve: request batching vs one drive/request")
    results = run_serve_comparison()
    rows = []
    for workload, per_clients in results["workloads"].items():
        for clients, cell in per_clients.items():
            rows.append((workload, clients,
                         cell["batched"]["ops_per_s"],
                         cell["batch1"]["ops_per_s"],
                         cell["batched"]["p99_ms"],
                         f"{cell['speedup']:.2f}x"))
    report.table(("workload", "clients", "batched ops/s",
                  "batch-1 ops/s", "batched p99 ms", "speedup"),
                 rows)
    report.add()
    top = str(max(CLIENTS))
    gains = [per_clients[top]["speedup"]
             for per_clients in results["workloads"].values()]
    report.add(f"batching speedup at {top} clients: "
               f"min {min(gains):.2f}x / max {max(gains):.2f}x "
               f"(fixed per-drive costs amortized over the batch)")
    path = write_json(results)
    report.add(f"machine-readable results: {os.path.basename(path)}")
    if not SMOKE:
        worst = results["workloads"]["C"]["16"]["speedup"]
        assert worst >= 1.5, \
            f"batching below 1.5x on C@16: {worst:.2f}x"
    return report


def bench_serve(benchmark):
    report = benchmark(regenerate_serve_report)
    report.write()


if __name__ == "__main__":
    if "--smoke" in sys.argv and not SMOKE:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
        os.execv(sys.executable, [sys.executable, __file__])
    report = regenerate_serve_report()
    report.write()
    print(report.text())
