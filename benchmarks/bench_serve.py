"""Serve benchmark — the batching payoff over real sockets.

For every YCSB workload (A/B/C/D/F) at 1, 4 and 16 concurrent
clients, runs the load generator against two servers that differ only
in ``batch``: 16 (the default scheduling round) vs 1 (one interpreter
drive per request).  The fixed per-drive costs — app context spawn,
worker-group creation, scheduler warmup/drain — are paid per *batch*
in the first server and per *request* in the second, so the ratio is
the direct measurement of the amortization the serve layer exists
for.

The second half is the shard sweep: workload C at a serving-scale
keyspace (``SHARD_RECORDS`` resident keys) against the single-process
batched server and against ``repro serve --shards N`` for N in 2/4/8,
at 16/64/256 concurrent clients.  The enclave KV index walks its full
bucket chain on every operation, so per-op interpreter cost grows
linearly with resident keys — sharding divides the resident set, and
each shard's enclave walks a chain ~N times shorter.  That
algorithmic division (not process parallelism; the reference host has
one CPU) is where the order-of-magnitude ops/s jump comes from, and
the sweep measures it honestly: same workload, same total ops, same
keyspace, only the shard count varies.

The last section is the engine comparison: the same single-process
batched server on the ``decoded`` vs ``traced`` interpreter tiers
(workload C, 16 clients) — the measured serve-path p50/p99 payoff of
the trace tier the engine defaults to.

Results go to ``BENCH_serve.json`` at the repo root (ops/s and
p50/p95/p99 per cell) plus the usual benchmark report.  Smoke mode
(``REPRO_BENCH_SMOKE=1`` or ``--smoke``) shrinks the op counts and
the client matrix for CI.
"""

import json
import os
import platform
import sys

import pytest

from repro.bench import Report
from repro.serve.engine import SecureKVEngine, compile_secure_kv
from repro.serve.loadgen import run_load
from repro.serve.router import RouterConfig, RouterThread
from repro.serve.server import ServeConfig, ServerThread

pytestmark = [pytest.mark.slow, pytest.mark.net]

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

WORKLOADS = ("A", "B", "C", "D", "F")
CLIENTS = (1, 4) if SMOKE else (1, 4, 16)
OPS_PER_CLIENT = 20 if SMOKE else 120
RECORDS = 32 if SMOKE else 64
VALUE_BYTES = 64 if SMOKE else 128
BATCHES = (16, 1)

# The shard sweep: full-scale keyspace, fixed total load per cell.
SHARD_COUNTS = (2,) if SMOKE else (2, 4, 8)
SHARD_CLIENTS = (8,) if SMOKE else (16, 64, 256)
SHARD_RECORDS = 128 if SMOKE else 16384
SHARD_OPS_TOTAL = 96 if SMOKE else 1600
SHARD_WORKLOAD = "C"

# The engine comparison: traced vs decoded, single shard.
ENGINE_COMPARE_CLIENTS = 4 if SMOKE else 16


def _run_cell(program, workload, clients, batch, seed, engine=None):
    """One (workload, clients, batch) measurement: fresh server,
    fresh cache, shared compiled program.  ``engine`` picks the
    interpreter tier (None = the serving default, traced)."""
    config = ServeConfig(port=0, batch=batch, queue_depth=256)
    with ServerThread(config,
                      engine=SecureKVEngine(program=program,
                                            engine=engine)) as st:
        report = run_load("127.0.0.1", st.server.port,
                          workload=workload, clients=clients,
                          ops=OPS_PER_CLIENT * clients,
                          records=RECORDS, value_bytes=VALUE_BYTES,
                          seed=seed)
        st.stop()
    if st.error is not None:
        raise st.error
    if report["dropped_connections"] or report["errors"]:
        raise RuntimeError(
            f"{workload}x{clients} batch={batch}: "
            f"{report['dropped_connections']} dropped, "
            f"{report['errors']} errors")
    return {
        "ops_per_s": report["ops_per_s"],
        "p50_ms": report["p50_ms"],
        "p95_ms": report["p95_ms"],
        "p99_ms": report["p99_ms"],
        "shed_retries": report["shed_retries"],
    }


def run_serve_comparison():
    program = compile_secure_kv()
    # Warm the lanes once (imports, socket setup, code paths) so the
    # first measured cell is not paying one-time costs.
    _run_cell(program, "C", CLIENTS[0], BATCHES[0], seed=99)
    results = {
        "meta": {
            "python": platform.python_version(),
            "smoke": SMOKE,
            "clients": list(CLIENTS),
            "ops_per_client": OPS_PER_CLIENT,
            "records": RECORDS,
            "value_bytes": VALUE_BYTES,
        },
        "workloads": {},
    }
    for workload in WORKLOADS:
        per_clients = {}
        for clients in CLIENTS:
            cell = {}
            for batch in BATCHES:
                key = "batched" if batch == 16 else "batch1"
                cell[key] = _run_cell(program, workload, clients,
                                      batch, seed=7)
            cell["speedup"] = round(
                cell["batched"]["ops_per_s"]
                / cell["batch1"]["ops_per_s"], 2)
            per_clients[str(clients)] = cell
        results["workloads"][workload] = per_clients
    results["shard_sweep"] = run_shard_sweep(program)
    results["engine_compare"] = run_engine_comparison(program)
    return results


def run_engine_comparison(program):
    """Traced vs decoded on the live serve path: one single-process
    batched server per engine tier, workload C at
    ``ENGINE_COMPARE_CLIENTS`` concurrent clients.  The serve drive
    loop re-enters the same hot KV chunks on every batch — exactly
    the re-entry pattern the trace tier amortizes — so this is the
    measured (not modeled) payoff of serving on ``traced``."""
    cells = {}
    for engine in ("decoded", "traced"):
        cells[engine] = _run_cell(program, "C",
                                  ENGINE_COMPARE_CLIENTS, 16,
                                  seed=31, engine=engine)
    return {
        "meta": {
            "workload": "C",
            "clients": ENGINE_COMPARE_CLIENTS,
            "shards": 1,
            "batch": 16,
            "ops": OPS_PER_CLIENT * ENGINE_COMPARE_CLIENTS,
        },
        "decoded": cells["decoded"],
        "traced": cells["traced"],
        "traced_speedup": round(cells["traced"]["ops_per_s"]
                                / cells["decoded"]["ops_per_s"], 2),
    }


def _measure_load(port, clients, preload):
    report = run_load("127.0.0.1", port, workload=SHARD_WORKLOAD,
                      clients=clients,
                      ops=SHARD_OPS_TOTAL, records=SHARD_RECORDS,
                      value_bytes=VALUE_BYTES, seed=7,
                      preload=preload)
    if report["dropped_connections"] or report["errors"]:
        raise RuntimeError(
            f"shard sweep @{clients} clients: "
            f"{report['dropped_connections']} dropped, "
            f"{report['errors']} errors")
    return {
        "ops_per_s": report["ops_per_s"],
        "p50_ms": report["p50_ms"],
        "p95_ms": report["p95_ms"],
        "p99_ms": report["p99_ms"],
        "shed_retries": report["shed_retries"],
    }


def _sweep_server(start_thread, get_port):
    """Preload once, then measure every client count against the
    same live server (workload C is read-only, so cells share state
    safely and the expensive keyspace load is paid once)."""
    cells = {}
    thread = start_thread()
    with thread:
        port = get_port(thread)
        first = True
        for clients in SHARD_CLIENTS:
            cells[str(clients)] = _measure_load(
                port, clients, preload=first)
            first = False
        thread.stop()
    if thread.error is not None:
        raise thread.error
    return cells


def run_shard_sweep(program):
    """Single-process batched baseline vs 2/4/8-shard routing, at a
    serving-scale resident keyspace."""
    sweep = {
        "meta": {
            "workload": SHARD_WORKLOAD,
            "records": SHARD_RECORDS,
            "ops_total": SHARD_OPS_TOTAL,
            "clients": list(SHARD_CLIENTS),
            "shards": list(SHARD_COUNTS),
            "value_bytes": VALUE_BYTES,
            "cpus": os.cpu_count(),
            "note": "single-CPU host: the sharded gain is "
                    "algorithmic (the enclave index walks chains "
                    "~N times shorter per shard), not process "
                    "parallelism",
        },
    }
    sweep["single"] = _sweep_server(
        lambda: ServerThread(
            ServeConfig(port=0, batch=16, queue_depth=512),
            engine=SecureKVEngine(program=program)),
        lambda thread: thread.server.port)
    sharded = {}
    for shards in SHARD_COUNTS:
        sharded[str(shards)] = _sweep_server(
            lambda: RouterThread(RouterConfig(
                port=0, shards=shards, batch=16, queue_depth=256)),
            lambda thread: thread.router.port)
    sweep["sharded"] = sharded
    sweep["speedup_vs_single"] = {
        shards: {
            clients: round(cells[clients]["ops_per_s"]
                           / sweep["single"][clients]["ops_per_s"],
                           2)
            for clients in cells
        }
        for shards, cells in sharded.items()
    }
    return sweep


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_json(results) -> str:
    name = ("BENCH_serve.smoke.json" if results["meta"]["smoke"]
            else "BENCH_serve.json")
    path = os.path.join(_repo_root(), name)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def regenerate_serve_report() -> Report:
    report = Report("serve",
                    "Serve: request batching vs one drive/request")
    results = run_serve_comparison()
    rows = []
    for workload, per_clients in results["workloads"].items():
        for clients, cell in per_clients.items():
            rows.append((workload, clients,
                         cell["batched"]["ops_per_s"],
                         cell["batch1"]["ops_per_s"],
                         cell["batched"]["p99_ms"],
                         f"{cell['speedup']:.2f}x"))
    report.table(("workload", "clients", "batched ops/s",
                  "batch-1 ops/s", "batched p99 ms", "speedup"),
                 rows)
    report.add()
    top = str(max(CLIENTS))
    gains = [per_clients[top]["speedup"]
             for per_clients in results["workloads"].values()]
    report.add(f"batching speedup at {top} clients: "
               f"min {min(gains):.2f}x / max {max(gains):.2f}x "
               f"(fixed per-drive costs amortized over the batch)")
    sweep = results["shard_sweep"]
    report.add()
    report.add(f"shard sweep: workload {SHARD_WORKLOAD}, "
               f"{SHARD_RECORDS} resident keys, "
               f"{SHARD_OPS_TOTAL} ops per cell")
    rows = [("single", clients,
             sweep["single"][clients]["ops_per_s"],
             sweep["single"][clients]["p99_ms"], "1.00x")
            for clients in sweep["single"]]
    for shards, cells in sweep["sharded"].items():
        for clients, cell in cells.items():
            ratio = sweep["speedup_vs_single"][shards][clients]
            rows.append((f"{shards} shards", clients,
                         cell["ops_per_s"], cell["p99_ms"],
                         f"{ratio:.2f}x"))
    report.table(("server", "clients", "ops/s", "p99 ms",
                  "vs single"), rows)
    compare = results["engine_compare"]
    report.add()
    report.add(f"engine compare: workload C, single shard, "
               f"{compare['meta']['clients']} clients")
    report.table(("engine", "ops/s", "p50 ms", "p99 ms"),
                 [(engine, compare[engine]["ops_per_s"],
                   compare[engine]["p50_ms"],
                   compare[engine]["p99_ms"])
                  for engine in ("decoded", "traced")])
    report.add(f"traced vs decoded: "
               f"{compare['traced_speedup']:.2f}x ops/s")
    path = write_json(results)
    report.add(f"machine-readable results: {os.path.basename(path)}")
    if not SMOKE:
        worst = results["workloads"]["C"]["16"]["speedup"]
        assert worst >= 1.5, \
            f"batching below 1.5x on C@16: {worst:.2f}x"
        # The tentpole gates: >=4x ops/s at 64 clients with 8
        # shards, p99 no worse at equal load; and any sharded
        # config at 16 clients beats the single-process server.
        gate = sweep["speedup_vs_single"]["8"]["64"]
        assert gate >= 4.0, \
            f"8-shard speedup below 4x at 64 clients: {gate:.2f}x"
        assert sweep["sharded"]["8"]["64"]["p99_ms"] <= \
            sweep["single"]["64"]["p99_ms"], "sharded p99 regressed"
        at16 = max(cells["16"]["ops_per_s"]
                   for cells in sweep["sharded"].values())
        single16 = sweep["single"]["16"]["ops_per_s"]
        assert at16 > single16, \
            f"sharding loses at 16 clients: {at16} <= {single16}"
    return report


def bench_serve(benchmark):
    report = benchmark(regenerate_serve_report)
    report.write()


if __name__ == "__main__":
    if "--smoke" in sys.argv and not SMOKE:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
        os.execv(sys.executable, [sys.executable, __file__])
    report = regenerate_serve_report()
    report.write()
    print(report.text())
