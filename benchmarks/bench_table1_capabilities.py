"""Table 1 — automatic partitioning tools and multi-threading
(paper §3).

The paper's Table 1 classifies partitioning techniques; its key
columns are "Multiple threads" and "Language coverage".  This bench
reproduces the *behavioral* content of those columns: each analysis
technique partitions a suite of litmus programs, and an adversarial
interleaving search decides whether the resulting partition is
correct.  Secure typing (Privagic) is evaluated by whether it accepts
(and then correctly partitions) or rejects the program at compile
time.
"""

import pytest

from repro.baselines import (
    AbstractInterpTaint,
    AndersenTaint,
    UseDefTaint,
)
from repro.bench import Report
from repro.core import analyze_module
from repro.core.colors import HARDENED
from repro.errors import SecureTypeError
from repro.frontend import compile_source
from repro.ir.interp import Machine
from repro.sgx import Attacker

SECRET = 990017

#: Litmus 1: sequential flow through a pointer (no threads).
SEQ_POINTER = """
    long a;
    long* p;
    void f(long s) {
        p = &a;
        *p = s;
    }
"""

#: Litmus 2: Figure 3 — hidden pointer modification by another thread.
HIDDEN_MUTATION = """
    long a;
    long b;
    long* x;
    void f(long s) {
        x = &a;
        *x = s;
    }
    void g(long unused) {
        x = &b;
    }
"""

#: Litmus 3: no pointers at all (the only case use-def chains handle).
NO_POINTERS = """
    long a;
    void f(long s) {
        a = s;
    }
"""

LITMUS = {
    "seq-pointer": (SEQ_POINTER, ["f"], None),
    "hidden-mutation": (HIDDEN_MUTATION, ["f"], "g"),
    "no-pointers": (NO_POINTERS, ["f"], None),
}

TOOLS = {
    "use-def chains (Privtrans)": UseDefTaint,
    "abstract interp. (Glamdring)": AbstractInterpTaint,
    "points-to (Montsalvat-style)": AndersenTaint,
}


def _leaks(source: str, protected, mutator) -> bool:
    """Adversarial check: does some schedule leak the secret into
    unsafe memory under the given placement?"""
    for prefix in range(1, 40):
        module = compile_source(source)
        for name in protected:
            gv = module.get_global(name)
            gv.value_type = gv.value_type.with_color("dfenclave")
        machine = Machine(module)
        ctx_f = machine.spawn("f", [SECRET], mode="dfenclave")
        ctx_g = (machine.spawn(mutator, [0], mode=None)
                 if mutator else None)
        for _ in range(prefix):
            if ctx_f.finished:
                break
            ctx_f.step()
        if ctx_g is not None:
            while not ctx_g.finished:
                ctx_g.step()
        while not ctx_f.finished:
            ctx_f.step()
        if Attacker(machine).scan_for(SECRET):
            return True
        if ctx_g is None:
            break  # sequential: one schedule suffices
    return False


def regenerate_table1() -> Report:
    report = Report("table1_capabilities",
                    "Table 1: partitioning techniques vs litmus suite "
                    "(leak = partition defeated at runtime)")
    rows = []
    verdicts = {}
    for litmus_name, (source, entries, mutator) in LITMUS.items():
        for tool_name, tool_cls in TOOLS.items():
            module = compile_source(source)
            analysis = tool_cls(module,
                                sensitive_params=[("f", "s")])
            protected = analysis.partition.protected_globals
            leaked = _leaks(source, protected, mutator)
            verdict = "LEAK" if leaked else "protected"
            verdicts[(litmus_name, tool_name)] = verdict
            rows.append((litmus_name, tool_name,
                         ",".join(sorted(protected)) or "-", verdict))
        # Privagic: explicit secure typing on the same program.
        verdict = _privagic_verdict(litmus_name)
        verdicts[(litmus_name, "secure typing (Privagic)")] = verdict
        rows.append((litmus_name, "secure typing (Privagic)",
                     "typed", verdict))
    report.table(("litmus", "technique", "protects", "verdict"), rows)
    report.add()
    report.add("Paper's Table 1 claim: no data-flow tool handles "
               "multi-threaded C in the general case; secure typing "
               "does (by rejecting the unsound program).")
    # The headline cell: flow-sensitive analysis is defeated by the
    # hidden mutation; Privagic is not.
    assert verdicts[("hidden-mutation",
                     "abstract interp. (Glamdring)")] == "LEAK"
    assert verdicts[("hidden-mutation",
                     "secure typing (Privagic)")] == "rejected (safe)"
    assert verdicts[("seq-pointer",
                     "abstract interp. (Glamdring)")] == "protected"
    assert verdicts[("seq-pointer",
                     "use-def chains (Privtrans)")] == "LEAK"
    return report


def _privagic_verdict(litmus_name: str) -> str:
    colored = {
        "seq-pointer": """
            long color(blue) a;
            long color(blue)* p;
            entry void f(long color(blue) s) { p = &a; *p = s; }
        """,
        "hidden-mutation": """
            long color(blue) a;
            long b;
            long color(blue)* x;
            void f(long color(blue) s) { x = &a; *x = s; }
            void g(long unused) { x = &b; }
            entry void run(long color(blue) s) { f(s); g(0); }
        """,
        "no-pointers": """
            long color(blue) a;
            entry void f(long color(blue) s) { a = s; }
        """,
    }[litmus_name]
    try:
        analyze_module(compile_source(colored), HARDENED)
        return "accepted (typed)"
    except SecureTypeError:
        return "rejected (safe)"


def bench_table1(benchmark):
    report = benchmark(regenerate_table1)
    report.write()
