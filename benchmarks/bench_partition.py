"""Partition-quality report — what each placement policy buys.

For three workloads — the paper's Figure 6/7 running example
(relaxed), the minicache application (hardened, ``run_cache(50)``)
and the served KV engine (hardened, a deterministic op trace through
``secure_batch``) — this benchmark compiles the program once per
placement policy (``none`` / ``kl`` / ``profile``) and measures what
the optimizer actually changed:

* **messages** — runtime protocol messages observed on the channel
  matrix (spawn + value + token),
* **cross-enclave transitions** — measured messages on channels that
  touch an enclave partition,
* **TCB instructions** — instructions resident in enclave modules
  after partitioning (barrier elision shrinks the protocol code the
  enclave must carry),
* **modeled cost** — the SGX cost model's cycle estimate for the
  static protocol traffic (``repro.core.placement.PartitionGraph``).

The ``profile`` arm closes the loop the CLI exposes as
``--profile-out`` / ``--profile-in``: the fault-free ``none`` run's
measured channel traffic becomes the profile the policy consumes.

The hard safety rail rides along: for every workload, every optimized
arm must produce byte-identical results and stdout on all three
interpreter engines (decoded / traced / legacy) — a placement that
changes observable behavior is a bug, not an optimization.

Results go to ``BENCH_partition.json`` at the repo root (smoke mode:
``BENCH_partition.smoke.json``), which ``scripts/check.sh`` gates on:
``kl`` must never model worse than ``none``, and the best measured
message reduction must clear the 20% bar.
"""

import json
import os
import platform
import random
import sys

import pytest

from repro.apps.minicache.minic_source import (DECLASSIFY_EXTERNALS,
                                               FULL_ANNOTATED)
from repro.bench import Report
from repro.core.colors import HARDENED, RELAXED
from repro.core.compiler import PrivagicCompiler
from repro.core.placement import (optimize_placement, partition_stats,
                                  placement_report,
                                  profile_from_runtime)
from repro.runtime import run_partitioned
from repro.serve.engine import SecureKVEngine

pytestmark = pytest.mark.slow

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"

POLICY_ARMS = ("none", "kl", "profile")
ENGINES = ("decoded", "traced", "legacy")

MINICACHE_OPS = 50
SERVE_OPS = 32 if SMOKE else 96
SERVE_BATCH = 16


def _fig7_source() -> str:
    path = os.path.join(_repo_root(), "examples", "fig7.c")
    with open(path) as handle:
        return handle.read()


def _kv_ops(count, seed=11):
    """A deterministic mixed get/set/delete trace over a small
    keyspace (sets dominate so the enclave index actually grows)."""
    rng = random.Random(seed)
    keys = [f"key-{i}" for i in range(16)]
    ops = []
    for i in range(count):
        key = rng.choice(keys)
        roll = rng.random()
        if roll < 0.5:
            ops.append(("set", key, f"value-{i}"))
        elif roll < 0.9:
            ops.append(("get", key))
        else:
            ops.append(("delete", key))
    return ops


def _run_simple(entry, args, externals=None):
    def run(program, engine):
        result, runtime = run_partitioned(program, entry, args,
                                          externals, engine=engine)
        return {"result": result, "stdout": runtime.machine.stdout,
                "runtime": runtime}
    return run


def _run_served(ops):
    def run(program, engine):
        kv = SecureKVEngine(program=program, engine=engine)
        replies = []
        for i in range(0, len(ops), SERVE_BATCH):
            replies.extend(kv.execute(ops[i:i + SERVE_BATCH]))
        return {"result": tuple(replies),
                "stdout": kv.runtime.machine.stdout,
                "runtime": kv.runtime}
    return run


def _transitions(runtime, untrusted) -> int:
    """Measured messages on channels that touch an enclave color."""
    total = 0
    for channel, kinds in runtime.channel_traffic().items():
        src, dst = channel.split("->", 1)
        if src != untrusted or dst != untrusted:
            total += sum(kinds.values())
    return total


def _pct(before, after) -> float:
    return round(100.0 * (before - after) / before, 2) if before else 0.0


def _measure_workload(name, mode, source, run_fn):
    """Compile ``source`` once per policy, run every arm on every
    engine, assert the differential rail, and collect the metrics."""
    arms = {}
    baselines = None
    profile = None
    for policy in POLICY_ARMS:
        compiler = PrivagicCompiler(
            mode, optimize=None if policy == "none" else policy,
            profile=profile if policy == "profile" else None)
        program = compiler.compile_source(source)
        runs = {engine: run_fn(program, engine) for engine in ENGINES}
        for engine in ENGINES:
            run = runs[engine]
            if baselines is None:
                continue
            base = baselines[engine]
            assert run["result"] == base["result"], (
                f"{name}/{policy}@{engine}: result diverged from "
                f"the none-policy baseline")
            assert run["stdout"] == base["stdout"], (
                f"{name}/{policy}@{engine}: stdout diverged from "
                f"the none-policy baseline")
        if policy == "none":
            baselines = runs
            # The profile arm consumes the traffic this run measured
            # (the --profile-out / --profile-in round trip).
            profile = profile_from_runtime(runs["decoded"]["runtime"])
            _, graph, decisions = optimize_placement(
                compiler.analysis, "none")
            report = placement_report(graph, decisions)
        else:
            report = compiler.context.placement_report
        runtime = runs["decoded"]["runtime"]
        arms[policy] = {
            "messages": runtime.stats.messages,
            "cross_enclave_transitions": _transitions(
                runtime, program.untrusted),
            "tcb_instructions": sum(
                row["tcb_instructions"]
                for row in partition_stats(program)),
            "modeled_cost_cycles": report["modeled_cost_cycles"][policy],
            "static_messages": report["static_messages"],
            "moves": report["decisions"]["moves"],
            "gain_cycles": report["decisions"]["gain_cycles"],
        }
    none = arms["none"]
    reductions = {}
    for policy in POLICY_ARMS[1:]:
        arm = arms[policy]
        assert arm["modeled_cost_cycles"] <= \
            none["modeled_cost_cycles"], (
                f"{name}/{policy}: modeled cost regressed vs none")
        reductions[policy] = {
            "messages_pct": _pct(none["messages"], arm["messages"]),
            "transitions_pct": _pct(
                none["cross_enclave_transitions"],
                arm["cross_enclave_transitions"]),
            "modeled_cost_pct": _pct(none["modeled_cost_cycles"],
                                     arm["modeled_cost_cycles"]),
        }
    return {
        "mode": mode,
        "policies": arms,
        "reduction_vs_none": reductions,
        "differential": {"engines": list(ENGINES), "identical": True},
    }


def run_partition_comparison():
    results = {
        "meta": {
            "python": platform.python_version(),
            "smoke": SMOKE,
            "policies": list(POLICY_ARMS),
            "engines": list(ENGINES),
            "minicache_ops": MINICACHE_OPS,
            "serve_ops": SERVE_OPS,
        },
        "workloads": {},
    }
    from repro.serve.secure_source import SECURE_KV_SOURCE
    specs = (
        ("fig7", RELAXED, _fig7_source(),
         _run_simple("main", [])),
        ("minicache", HARDENED, FULL_ANNOTATED,
         _run_simple("run_cache", [MINICACHE_OPS],
                     DECLASSIFY_EXTERNALS)),
        ("served_kv", HARDENED, SECURE_KV_SOURCE,
         _run_served(_kv_ops(SERVE_OPS))),
    )
    for name, mode, source, run_fn in specs:
        results["workloads"][name] = _measure_workload(
            name, mode, source, run_fn)
    # The acceptance gate: kl clears a 20% measured message reduction
    # on fig7 or minicache (with byte-identical behavior, asserted
    # per-arm above).
    best = max(
        results["workloads"][w]["reduction_vs_none"]["kl"]["messages_pct"]
        for w in ("fig7", "minicache"))
    results["meta"]["best_kl_message_reduction_pct"] = best
    assert best >= 20.0, (
        f"kl best message reduction below 20%: {best:.2f}%")
    return results


def _repo_root() -> str:
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def write_json(results) -> str:
    name = ("BENCH_partition.smoke.json" if results["meta"]["smoke"]
            else "BENCH_partition.json")
    path = os.path.join(_repo_root(), name)
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def regenerate_partition_report() -> Report:
    report = Report("partition_quality",
                    "Partition quality: placement policies vs none")
    results = run_partition_comparison()
    for name, workload in results["workloads"].items():
        report.add(f"{name} ({workload['mode']} mode):")
        rows = []
        for policy in POLICY_ARMS:
            arm = workload["policies"][policy]
            red = workload["reduction_vs_none"].get(policy)
            rows.append((
                policy, arm["messages"],
                arm["cross_enclave_transitions"],
                arm["tcb_instructions"],
                arm["modeled_cost_cycles"],
                f"-{red['messages_pct']:.1f}%" if red else "-",
            ))
        report.table(("policy", "messages", "transitions",
                      "tcb instrs", "modeled cycles", "msg delta"),
                     rows)
        report.add()
    report.add("differential rail: every optimized arm byte-identical "
               "to none on decoded/traced/legacy engines")
    best = results["meta"]["best_kl_message_reduction_pct"]
    report.add(f"best kl message reduction (fig7/minicache): "
               f"{best:.1f}% (gate: >= 20%)")
    path = write_json(results)
    report.add(f"machine-readable results: {os.path.basename(path)}")
    return report


def bench_partition(benchmark):
    report = benchmark(regenerate_partition_report)
    report.write()


if __name__ == "__main__":
    if "--smoke" in sys.argv and not SMOKE:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
        os.execv(sys.executable, [sys.executable, __file__])
    report = regenerate_partition_report()
    report.write()
    print(report.text())
