"""Ablation — F replication and dead-code elimination (paper §7.3.1).

Privagic replicates F computation into every chunk so using an F
value inside an enclave is always safe, then relies on dead-code
elimination to erase the useless replicas.  This ablation measures
the enclave TCB with and without the DCE pass, quantifying how much
of the replicated code DCE claws back.
"""

from repro.apps.minicache.minic_source import FULL_ANNOTATED
from repro.bench import Report
from repro.core.analysis import analyze_module
from repro.core.colors import HARDENED
from repro.core.partition import partition
from repro.core.structs import rewrite_multicolor_structs
from repro.frontend import compile_source
from repro.ir.passes import mem2reg


def _partition_sizes(dce: bool):
    module = compile_source(FULL_ANNOTATED)
    mem2reg(module)
    rewrite_multicolor_structs(module, HARDENED)
    analysis = analyze_module(module, HARDENED)
    program = partition(analysis, dce=dce)
    return {color: program.modules[color].instruction_count()
            for color in program.colors}


def regenerate_replication_ablation() -> Report:
    report = Report("ablation_replication",
                    "Ablation: F replication with and without DCE "
                    "(minicache, hardened)")
    with_dce = _partition_sizes(dce=True)
    without_dce = _partition_sizes(dce=False)
    rows = []
    for color in sorted(with_dce):
        before = without_dce[color]
        after = with_dce[color]
        rows.append((color, before, after,
                     f"{100 * (before - after) / before:.0f}%"))
    report.table(("partition", "instrs (no DCE)", "instrs (DCE)",
                  "erased"), rows)
    report.add()
    report.add("§7.3.1: 'If the F instruction is uselessly "
               "replicated, a dead-code-elimination pass eliminates "
               "it after.'  (Live F replicas — loop counters, bucket "
               "indices the enclave really consumes — survive; the "
               "erased part is the feeder code of pruned foreign "
               "instructions.)")
    assert sum(with_dce.values()) < sum(without_dce.values())
    return report


def bench_ablation_replication(benchmark):
    report = benchmark(regenerate_replication_ablation)
    report.write()
