"""Shared fixtures for the benchmark suite."""

import os
import sys

# Allow `pytest benchmarks/` from the repo root without installing.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
