"""Figure 10 — the hashmap with two colors (paper §9.3.2).

Machine A, 20 000 pre-loaded keys (the two-color runs are much
longer, §9.3), keys and values in two different enclaves.
Configurations: Unprotected, Privagic-2 (relaxed mode, §7.2 field
indirection), Intel-sdk-2 (two EDL enclaves, manual copies).

Expected shape: Privagic divides Intel-sdk-2's latency by 6.4-9.2;
both are far slower than Unprotected (boundary crossings per request).
"""

from repro.apps.deployments import MapExperiment, PROFILES
from repro.bench import Report
from repro.workloads import WORKLOAD_A, WORKLOAD_B, WORKLOAD_C

N_ITEMS = 20_000
DEPLOYMENTS = ("Unprotected", "Privagic-2", "Intel-sdk-2")


def regenerate_figure10() -> Report:
    report = Report("fig10_twocolor",
                    "Figure 10: hashmap with YCSB (2 colors, "
                    "machine A, 20k keys)")
    rows = []
    ratio = None
    for spec in (WORKLOAD_A, WORKLOAD_B, WORKLOAD_C):
        experiment = MapExperiment(PROFILES["hashmap"], N_ITEMS, spec)
        results = {d: experiment.run(d) for d in DEPLOYMENTS}
        for d in DEPLOYMENTS:
            r = results[d]
            rows.append(("hashmap", spec.name, d, r.throughput_ops,
                         r.mean_latency_us))
        if spec is WORKLOAD_A:
            ratio = (results["Intel-sdk-2"].mean_latency_us
                     / results["Privagic-2"].mean_latency_us)
            slowdown = (results["Privagic-2"].mean_latency_us
                        / results["Unprotected"].mean_latency_us)
    report.table(("structure", "wl", "deployment", "ops/s",
                  "latency_us"), rows)
    report.add()
    report.band("Intel-sdk-2 latency / Privagic-2 latency", ratio,
                (6.4, 9.2))
    report.add(f"Privagic-2 vs Unprotected slowdown: {slowdown:.1f}x "
               "(paper: 'significantly degrades latency', §9.3.2)")
    assert slowdown > 3.0
    return report


def bench_fig10(benchmark):
    report = benchmark(regenerate_figure10)
    report.write()
    assert not any(line.startswith("[OUT") for line in report.lines)
