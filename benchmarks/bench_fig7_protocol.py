"""Figure 7 — the runtime protocol on the paper's Figure 6 example.

Compiles the running example, partitions it in relaxed mode, executes
it on the worker/channel runtime and reports the spawn/cont traffic —
the message sequence Figure 7 diagrams (s1-s3, c1-c5).
"""

from repro.bench import Report
from repro.core.colors import RELAXED
from repro.core.compiler import compile_and_partition
from repro.runtime import run_partitioned

FIG6_SOURCE = """
    int color(U) unsafe_g = 0;
    int color(blue) blue_g = 10;
    int color(red) red_g = 0;

    void g(int n) {
        blue_g = n;
        red_g = n;
        printf("Hello\\n");
    }

    int f(int y) {
        g(21);
        return 42;
    }

    entry int main() {
        unsafe_g = 1;
        int x = f(blue_g);
        return x;
    }
"""


def regenerate_figure7() -> Report:
    report = Report("fig7_protocol",
                    "Figure 7: execution of the Figure 6 example")
    program = compile_and_partition(FIG6_SOURCE, mode=RELAXED)
    report.add("Chunks generated per partition:")
    for color in program.colors:
        names = sorted(program.modules[color].functions)
        defined = [n for n in names
                   if not program.modules[color].functions[n]
                   .is_declaration]
        report.add(f"  {color}: {defined}")
    result, runtime = run_partitioned(program, "main")
    stats = runtime.stats.as_dict()
    report.add()
    report.table(("metric", "value"), sorted(stats.items()))
    report.add()
    report.add(f"main() returned {result} "
               f"(expected 42); stdout: "
               f"{runtime.machine.stdout.strip()!r}")
    report.add("Figure 7 shows 3 spawns (main.blue, g.red, g.U) and "
               "cont messages c1-c5 for the F argument 21, the "
               "barrier tokens and the return value 42.")
    assert result == 42
    assert stats["spawns"] == 3
    assert stats["values"] >= 3
    return report


def bench_fig7(benchmark):
    report = benchmark(regenerate_figure7)
    report.write()
