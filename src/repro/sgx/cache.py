"""Analytic LLC miss-ratio and EPC fault-ratio estimators.

The Figure 8/9/10 experiments run millions of YCSB operations over
working sets from 1 MiB to 32 GiB; simulating every cache line is not
feasible (nor was it what the authors measured — they report the
aggregate LLC-miss effects, §9.2.3).  These estimators give the
*shape* the paper describes:

* a **uniform** pattern over a working set ``W`` touches the LLC
  ``L`` with hit probability ``L/W`` (tree lookups in Fig 9 — "the
  uniform access pattern leads to many LLC misses");
* a **zipfian** pattern keeps its hot head resident: with Zipf
  exponent near 1, the fraction of accesses to the hottest ``k`` of
  ``n`` keys is about ``ln k / ln n`` (the hashmap in Fig 9 — "the
  zipfian access pattern leads to fewer LLC misses");
* a **scan** streams its working set and misses on every new line
  (the linked-list traversal).

The ablation bench compares these estimates against the access counts
of the instrumented data structures.
"""

from __future__ import annotations

import math


def miss_ratio_uniform(working_set: float, cache_bytes: float) -> float:
    """Uniform random accesses over ``working_set`` bytes."""
    if working_set <= 0 or working_set <= cache_bytes:
        return 0.02  # cold/coherence floor
    return max(0.02, 1.0 - cache_bytes / working_set)


def miss_ratio_zipfian(n_items: int, item_bytes: float,
                       cache_bytes: float,
                       theta: float = 0.99) -> float:
    """Zipfian accesses over ``n_items`` records.

    With exponent ``theta`` close to 1, the probability mass of the
    hottest ``k`` items is about ``H(k)/H(n) ≈ ln(k)/ln(n)``; items
    beyond the cache miss.
    """
    if n_items <= 0:
        return 0.02
    working_set = n_items * item_bytes
    if working_set <= cache_bytes:
        return 0.02
    k = max(1.0, cache_bytes / item_bytes)
    if k >= n_items:
        return 0.02
    hot_fraction = math.log(k + 1.0) / math.log(n_items + 1.0)
    return max(0.02, 1.0 - hot_fraction)


def miss_ratio_scan(scanned_bytes: float, cache_bytes: float) -> float:
    """A streaming scan: everything beyond the cache misses once per
    line (reuse within a line is a hit, handled by access counting)."""
    if scanned_bytes <= cache_bytes:
        return 0.05
    return 0.95


def epc_fault_ratio(enclave_resident: float, epc_bytes: float,
                    locality: float = 1.0) -> float:
    """Fraction of enclave LLC misses that additionally fault on the
    EPC.  Zero while the enclave fits; beyond that, the excess fraction
    of the resident set faults, scaled by ``locality`` (1.0 = uniform;
    smaller = hot-set-friendly patterns fault less)."""
    if enclave_resident <= epc_bytes or epc_bytes <= 0:
        return 0.0
    excess = 1.0 - epc_bytes / enclave_resident
    return min(0.95, excess * locality)
