"""Enclave lifecycle: creation, measurement, EPC accounting.

A TEE authenticates enclaves through remote attestation over a
*measurement* — a cryptographic hash of the code and initial data
loaded into the enclave (paper §1).  The simulator measures the
printed text of the module loaded into each enclave, which is also the
quantity behind the Table 4 TCB metric.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.errors import PrivagicError
from repro.ir.interp import Machine, enclave_region
from repro.ir.module import Module
from repro.ir.printer import print_module


class Enclave:
    """One simulated enclave: a color, a module, a measurement."""

    def __init__(self, color: str, module: Module):
        self.color = color
        self.module = module
        self.text = print_module(module)
        #: SHA-256 over code + initial data — the attestation quantity.
        self.measurement = hashlib.sha256(
            self.text.encode()).hexdigest()

    @property
    def region(self) -> str:
        return enclave_region(self.color)

    def code_lines(self) -> int:
        """Lines of IR text — the paper's "lines of LLVM code" user-
        code TCB metric (Table 4)."""
        return sum(1 for line in self.text.splitlines()
                   if line.strip() and not line.startswith(";"))

    def code_bytes(self) -> int:
        return len(self.text.encode())

    def __repr__(self) -> str:
        return (f"<Enclave {self.color} measurement="
                f"{self.measurement[:12]}...>")


class EnclaveFaultModel:
    """Crash/restart accounting for simulated asynchronous enclave
    exits (AEX).

    Real SGX enclaves can be killed at any instruction by the
    untrusted OS; Privagic's protocol only promises that such a crash
    is *detected*, never silently absorbed.  The simulator injects
    crashes at the spawn-delivery boundary — before the chunk's first
    instruction has run — because that is the one window where a
    restart can replay the pending spawn exactly (no partial writes to
    roll back; mid-chunk crashes always take the abort path).

    :meth:`crash` decides the outcome of one injected crash: ``True``
    means the worker came back up (bounded by ``max_restarts`` per
    color) and the spawn should be replayed; ``False`` means the
    worker stays down and the caller must raise
    :class:`~repro.errors.EnclaveCrash`.
    """

    def __init__(self, max_restarts: int = 3):
        self.max_restarts = max_restarts
        #: color -> injected crash count
        self.crashes: Dict[str, int] = {}
        #: color -> successful restart count
        self.restarts: Dict[str, int] = {}

    def crash(self, color: str, chunk: str, recover: bool) -> bool:
        """Record a simulated AEX of ``color`` while delivering
        ``chunk``; returns whether the worker recovered."""
        self.crashes[color] = self.crashes.get(color, 0) + 1
        if not recover:
            return False
        used = self.restarts.get(color, 0)
        if used >= self.max_restarts:
            return False
        self.restarts[color] = used + 1
        return True


class EnclaveManager:
    """Tracks the enclaves of a machine and their EPC occupancy."""

    def __init__(self, machine: Machine, epc_bytes: int,
                 slot_bytes: int = 8):
        self.machine = machine
        self.epc_bytes = epc_bytes
        self.slot_bytes = slot_bytes
        self.enclaves: Dict[str, Enclave] = {}

    def create(self, color: str, module: Module) -> Enclave:
        if color in self.enclaves:
            raise PrivagicError(f"enclave {color} already exists")
        enclave = Enclave(color, module)
        self.enclaves[color] = enclave
        return enclave

    def attest(self, color: str, expected_measurement: str) -> bool:
        """Remote attestation: compare the enclave's measurement with
        the verifier's expectation."""
        enclave = self.enclaves.get(color)
        return (enclave is not None
                and enclave.measurement == expected_measurement)

    def resident_bytes(self, color: str) -> int:
        """Live data inside the enclave's region (heap + stack +
        globals), in bytes."""
        return self.machine.memory.region_slots(
            enclave_region(color)) * self.slot_bytes

    def total_resident_bytes(self) -> int:
        return sum(self.resident_bytes(c) for c in self.enclaves)

    def epc_pressure(self, color: str) -> float:
        """Resident size relative to the EPC (values above 1.0 page)."""
        if self.epc_bytes <= 0:
            return 0.0
        return self.resident_bytes(color) / self.epc_bytes
