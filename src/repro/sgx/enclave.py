"""Enclave lifecycle: creation, measurement, EPC accounting.

A TEE authenticates enclaves through remote attestation over a
*measurement* — a cryptographic hash of the code and initial data
loaded into the enclave (paper §1).  The simulator measures the
printed text of the module loaded into each enclave, which is also the
quantity behind the Table 4 TCB metric.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from repro.errors import PrivagicError
from repro.ir.interp import Machine, enclave_region
from repro.ir.module import Module
from repro.ir.printer import print_module


class Enclave:
    """One simulated enclave: a color, a module, a measurement."""

    def __init__(self, color: str, module: Module):
        self.color = color
        self.module = module
        self.text = print_module(module)
        #: SHA-256 over code + initial data — the attestation quantity.
        self.measurement = hashlib.sha256(
            self.text.encode()).hexdigest()

    @property
    def region(self) -> str:
        return enclave_region(self.color)

    def code_lines(self) -> int:
        """Lines of IR text — the paper's "lines of LLVM code" user-
        code TCB metric (Table 4)."""
        return sum(1 for line in self.text.splitlines()
                   if line.strip() and not line.startswith(";"))

    def code_bytes(self) -> int:
        return len(self.text.encode())

    def __repr__(self) -> str:
        return (f"<Enclave {self.color} measurement="
                f"{self.measurement[:12]}...>")


class EnclaveManager:
    """Tracks the enclaves of a machine and their EPC occupancy."""

    def __init__(self, machine: Machine, epc_bytes: int,
                 slot_bytes: int = 8):
        self.machine = machine
        self.epc_bytes = epc_bytes
        self.slot_bytes = slot_bytes
        self.enclaves: Dict[str, Enclave] = {}

    def create(self, color: str, module: Module) -> Enclave:
        if color in self.enclaves:
            raise PrivagicError(f"enclave {color} already exists")
        enclave = Enclave(color, module)
        self.enclaves[color] = enclave
        return enclave

    def attest(self, color: str, expected_measurement: str) -> bool:
        """Remote attestation: compare the enclave's measurement with
        the verifier's expectation."""
        enclave = self.enclaves.get(color)
        return (enclave is not None
                and enclave.measurement == expected_measurement)

    def resident_bytes(self, color: str) -> int:
        """Live data inside the enclave's region (heap + stack +
        globals), in bytes."""
        return self.machine.memory.region_slots(
            enclave_region(color)) * self.slot_bytes

    def total_resident_bytes(self) -> int:
        return sum(self.resident_bytes(c) for c in self.enclaves)

    def epc_pressure(self, color: str) -> float:
        """Resident size relative to the EPC (values above 1.0 page)."""
        if self.epc_bytes <= 0:
            return 0.0
        return self.resident_bytes(color) / self.epc_bytes
