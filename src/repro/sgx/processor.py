"""Processor modes, access checks and the attacker model.

Paper §2.1: *"In normal mode, the processor prevents access to the
memory of the enclaves.  When the processor enters the enclave mode,
it gains access to a single enclave [...] and the memory located
outside any enclave [...] The processor can, however, not access the
memory of the non-active enclaves in enclave mode."*

Paper §4 (threat model): the attacker fully controls the machine —
operating system, hypervisor and hardware — but cannot read or write
the memory of the enclaves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import SGXAccessViolation
from repro.ir.interp import (
    ExecutionContext,
    Machine,
    UNSAFE_REGION,
    enclave_region,
)


class SGXAccessPolicy:
    """Access policy enforcing the SGX isolation semantics; install it
    with :meth:`attach`.

    A context's ``mode`` is ``None`` for normal mode or the active
    enclave's color for enclave mode (the Privagic runtime's workers
    run in the mode of their enclave).
    """

    def __init__(self):
        self.checked_accesses = 0
        self.denied: List[Tuple[str, str, int, str]] = []

    def attach(self, machine: Machine) -> "SGXAccessPolicy":
        machine.access_policy = self
        return self

    def detach(self, machine: Machine) -> "SGXAccessPolicy":
        """Uninstall the policy.  Besides the obvious, this re-arms
        the pre-decoded engine's unobserved memory fast path, which
        only engages while ``machine.access_policy`` is None."""
        if machine.access_policy is self:
            machine.access_policy = None
        return self

    def __call__(self, ctx: ExecutionContext, addr: int, region: str,
                 rw: str) -> None:
        self.checked_accesses += 1
        mode = ctx.mode
        if region == UNSAFE_REGION:
            return  # unsafe memory is accessible from both modes
        if not region.startswith("enclave:"):
            return
        active = enclave_region(mode) if mode is not None else None
        if region == active:
            return
        self.denied.append((ctx.name, rw, addr, region))
        raise SGXAccessViolation(
            f"{ctx.name} in {'enclave ' + mode if mode else 'normal'} "
            f"mode cannot {rw} {region} at address {addr}",
            address=addr, mode=mode or "normal", region=region)


class Attacker:
    """The §4 adversary: reads and writes all unsafe memory at will,
    observes every value there, but cannot see inside enclaves.

    The security tests use it in two ways:

    * :meth:`scan_for` — sweep unsafe memory for a sensitive value (a
      confidentiality breach if found);
    * :meth:`corrupt` / :meth:`poison_region` — overwrite unsafe
      memory to mount Iago-style attacks.
    """

    def __init__(self, machine: Machine):
        self.machine = machine

    # -- observation ----------------------------------------------------------

    def readable_addresses(self) -> List[int]:
        addrs: List[int] = []
        for alloc in self.machine.memory.live_allocations():
            if alloc.region == UNSAFE_REGION:
                addrs.extend(range(alloc.base, alloc.base + alloc.size))
        return addrs

    def dump_unsafe_memory(self) -> Dict[int, object]:
        return {addr: self.machine.memory.read(addr)
                for addr in self.readable_addresses()}

    def scan_for(self, value: object) -> List[int]:
        """Addresses in unsafe memory holding ``value`` — any hit is a
        leaked sensitive value."""
        return [addr for addr, v in self.dump_unsafe_memory().items()
                if v == value]

    def try_read_enclave(self, color: str) -> None:
        """Attempt to read any address of an enclave; always raises
        :class:`SGXAccessViolation` (the hardware guarantee)."""
        region = enclave_region(color)
        for alloc in self.machine.memory.live_allocations():
            if alloc.region == region:
                raise SGXAccessViolation(
                    f"attacker cannot read {region}",
                    address=alloc.base, mode="normal", region=region)
        raise SGXAccessViolation(f"attacker cannot read {region}",
                                 mode="normal", region=region)

    # -- corruption --------------------------------------------------------------

    def corrupt(self, addr: int, value: object) -> None:
        region = self.machine.memory.region_of(addr)
        if region != UNSAFE_REGION:
            raise SGXAccessViolation(
                f"attacker cannot write {region}", address=addr,
                mode="normal", region=region)
        self.machine.memory.write(addr, value)

    def poison_region(self, value: object) -> int:
        """Overwrite every unsafe slot with ``value``; returns how many
        slots were poisoned."""
        addrs = self.readable_addresses()
        for addr in addrs:
            self.machine.memory.write(addr, value)
        return len(addrs)

    def corrupt_global(self, name: str, value: object) -> None:
        for module in self.machine.modules:
            gv = module.globals.get(name)
            if gv is not None:
                self.corrupt(self.machine.global_address(gv), value)
                return
        raise KeyError(name)
