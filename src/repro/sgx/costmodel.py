"""The SGX cost model.

The evaluation's performance phenomena come from four cost classes:

1. **LLC misses**, which in enclave mode cost 5.6–9.5× their normal
   price because of the memory-encryption engine (measured by Eleos,
   reference [30] of the paper; quoted in §9.2.3 and §9.3.2).
2. **EPC paging**: machine A's SGXv1 exposes only 93 MiB of EPC; an
   enclave working set beyond it pays a ~40 k-cycle EWB page swap.
3. **Enclave transitions**: an Intel-SDK switchless call synchronises
   through a lock (§9.3.2, references [40, 43]); a Scone switchless
   syscall is similar; a Privagic message is a push/pop on a lock-free
   SPSC queue and is several times cheaper.
4. **Plain computation**, charged per abstract operation.

:class:`CostParams` gathers the constants (two presets matching the
paper's machines A and B); :class:`CostMeter` accumulates simulated
cycles and converts to time/throughput.  The deployment models of
:mod:`repro.apps.deployments` charge against these meters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


@dataclass
class CostParams:
    """Cycle costs and machine geometry."""

    name: str = "machine"
    cpu_ghz: float = 3.0
    #: last-level cache size in bytes
    llc_bytes: int = 9 * MIB
    #: enclave page cache usable by enclaves, bytes
    epc_bytes: int = 93 * MIB
    cache_line: int = 64

    # memory access costs (cycles)
    llc_hit_cycles: float = 12.0
    llc_miss_cycles: float = 200.0
    #: multiplier on an LLC miss in enclave mode (Eleos: 5.6x-9.5x)
    enclave_miss_factor: float = 6.5
    #: cost of one EPC page swap (EWB + ELDU)
    epc_fault_cycles: float = 40_000.0

    # boundary-crossing costs (cycles)
    #: Privagic lock-free FIFO message: enqueue + dequeue + cache-line
    #: transfer (§9.3.2: cheaper than a lock-based switchless call)
    privagic_message_cycles: float = 700.0
    #: Intel SDK switchless call (lock-based, [40, 43])
    sdk_switchless_cycles: float = 3_500.0
    #: classic eenter/eexit ecall pair, for non-switchless paths
    ecall_cycles: float = 9_000.0
    #: Scone switchless system call from inside the enclave
    scone_syscall_cycles: float = 2_500.0

    # base per-operation compute (request parsing, hashing, ...)
    op_base_cycles: float = 400.0

    def seconds(self, cycles: float) -> float:
        return cycles / (self.cpu_ghz * 1e9)


#: Machine A of §9.1: i5-9500, 3 GHz, SGXv1, 93 MiB EPC, 9 MiB LLC.
MACHINE_A = CostParams(
    name="A (i5-9500, SGXv1)",
    cpu_ghz=3.0,
    llc_bytes=9 * MIB,
    epc_bytes=93 * MIB,
)

#: Machine B of §9.1: Xeon Gold 5415+, SGXv2, 8131 MiB EPC,
#: 22.5 MiB LLC.
MACHINE_B = CostParams(
    name="B (Xeon Gold 5415+, SGXv2)",
    cpu_ghz=2.9,
    llc_bytes=int(22.5 * MIB),
    epc_bytes=8131 * MIB,
)


class CostMeter:
    """Accumulates simulated cycles, broken down by cost class.

    Event counts accumulate as *floats* internally — fractional counts
    arise naturally (``memory_accesses`` splits ``n`` accesses by a
    miss ratio) and truncating them per call systematically undercounts
    across many small charges.  ``counts`` rounds only at reporting.
    """

    def __init__(self, params: CostParams):
        self.params = params
        self.cycles: float = 0.0
        self.breakdown: Dict[str, float] = {}
        self._counts: Dict[str, float] = {}
        #: optional ``fn(kind, cycles, count)`` called on every charge;
        #: ``None`` keeps charging free of observer work.
        self._observer: Optional[Callable[[str, float, float], None]] \
            = None

    def set_observer(
            self,
            fn: Optional[Callable[[str, float, float], None]]) -> None:
        """Attach/detach a per-charge observer (e.g. a tracer's
        ``cost_charge``)."""
        self._observer = fn

    @property
    def counts(self) -> Dict[str, int]:
        """Event counts per cost class, rounded for reporting."""
        return {kind: int(round(count))
                for kind, count in self._counts.items()}

    def charge(self, kind: str, cycles: float,
               count: float = 1) -> None:
        self.cycles += cycles
        self.breakdown[kind] = self.breakdown.get(kind, 0.0) + cycles
        self._counts[kind] = self._counts.get(kind, 0.0) + count
        if self._observer is not None:
            self._observer(kind, cycles, count)

    # -- cost classes -----------------------------------------------------------

    def memory_accesses(self, n: float, miss_ratio: float,
                        in_enclave: bool,
                        epc_fault_ratio: float = 0.0) -> None:
        """Charge ``n`` memory accesses with the given LLC miss ratio;
        in enclave mode misses are amplified and a fraction of them
        additionally faults on the EPC."""
        p = self.params
        hits = n * (1.0 - miss_ratio)
        misses = n * miss_ratio
        self.charge("llc_hit", hits * p.llc_hit_cycles, hits)
        miss_cost = p.llc_miss_cycles
        if in_enclave:
            miss_cost *= p.enclave_miss_factor
            self.charge("llc_miss_enclave", misses * miss_cost,
                        misses)
            if epc_fault_ratio > 0.0:
                faults = misses * epc_fault_ratio
                self.charge("epc_fault", faults * p.epc_fault_cycles,
                            faults)
        else:
            self.charge("llc_miss", misses * miss_cost, misses)

    def privagic_messages(self, n: int) -> None:
        self.charge("privagic_msg",
                    n * self.params.privagic_message_cycles, n)

    def sdk_calls(self, n: int) -> None:
        self.charge("sdk_switchless",
                    n * self.params.sdk_switchless_cycles, n)

    def ecalls(self, n: int) -> None:
        self.charge("ecall", n * self.params.ecall_cycles, n)

    def scone_syscalls(self, n: int) -> None:
        self.charge("scone_syscall",
                    n * self.params.scone_syscall_cycles, n)

    def compute(self, ops: float,
                cycles_per_op: Optional[float] = None) -> None:
        per_op = (cycles_per_op if cycles_per_op is not None
                  else self.params.op_base_cycles)
        self.charge("compute", ops * per_op, ops)

    # -- results --------------------------------------------------------------------

    @property
    def seconds(self) -> float:
        return self.params.seconds(self.cycles)

    def throughput(self, operations: int) -> float:
        """Operations per second for ``operations`` charged ops."""
        if self.cycles == 0:
            return float("inf")
        return operations / self.seconds

    def mean_latency_us(self, operations: int) -> float:
        if operations == 0:
            return 0.0
        return self.seconds / operations * 1e6

    def reset(self) -> None:
        self.cycles = 0.0
        self.breakdown.clear()
        self._counts.clear()
