"""repro.sgx — an Intel SGX simulator (paper §2.1).

The simulator provides the three things the evaluation depends on:

* **Isolation semantics** (:mod:`repro.sgx.processor`): an access
  policy for the interpreter enforcing the two processor modes — in
  normal mode the processor cannot touch enclave memory; in enclave
  mode it can touch the active enclave and unsafe memory but not other
  enclaves.  An :class:`~repro.sgx.processor.Attacker` models the
  §4 adversary: full control of unsafe memory, no access to enclaves.

* **Cost model** (:mod:`repro.sgx.costmodel`): cycle-accurate *classes*
  of cost — LLC hits/misses (with the ×5.6–9.5 in-enclave miss
  penalty measured by Eleos, paper [30]), EPC paging beyond the
  93 MiB (machine A) or 8 GiB (machine B) EPC, enclave transitions for
  SDK ecalls, Scone switchless syscalls and Privagic lock-free
  messages.

* **Cache / paging estimators** (:mod:`repro.sgx.cache`): analytic
  miss-ratio models for the uniform, zipfian and scan access patterns
  of the YCSB workloads, validated against the instrumented data
  structures (see ``benchmarks/bench_ablation_cachemodel.py``).

* **Enclave lifecycle** (:mod:`repro.sgx.enclave`): creation,
  measurement (attestation hash over the loaded module text) and EPC
  occupancy accounting.
"""

from repro.sgx.processor import SGXAccessPolicy, Attacker
from repro.sgx.costmodel import (
    CostParams,
    MACHINE_A,
    MACHINE_B,
    CostMeter,
)
from repro.sgx.cache import (
    miss_ratio_uniform,
    miss_ratio_zipfian,
    miss_ratio_scan,
    epc_fault_ratio,
)
from repro.sgx.enclave import Enclave, EnclaveManager

__all__ = [
    "SGXAccessPolicy", "Attacker",
    "CostParams", "MACHINE_A", "MACHINE_B", "CostMeter",
    "miss_ratio_uniform", "miss_ratio_zipfian", "miss_ratio_scan",
    "epc_fault_ratio",
    "Enclave", "EnclaveManager",
]
