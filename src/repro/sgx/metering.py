"""IR-level cost metering: attach a :class:`CostMeter` to a running
:class:`~repro.ir.interp.Machine`.

The Figure 8-10 experiments use analytic access counts; this module
does the converse: it charges the cost model from *actual* memory
accesses of an interpreted run (mode-aware: enclave accesses pay the
amplified miss price) and from the runtime's message counters.  Used
by tests and the metering ablation to cross-check the two levels.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.ir.interp import ExecutionContext, Machine, UNSAFE_REGION
from repro.sgx.costmodel import CostMeter, CostParams, MACHINE_A


class MachineMeter:
    """Observes a machine's memory traffic and charges a cost meter.

    A crude one-slot-granularity cache model decides hits/misses: the
    most recently used ``resident_slots`` addresses are hits — enough
    to rank deployments on small IR-level runs without pretending to
    be the analytic model of :mod:`repro.sgx.cache`.  The recency set
    is an :class:`~collections.OrderedDict` used as a classic LRU
    (``move_to_end`` on hit, ``popitem(last=False)`` to evict), so
    every access is O(1) regardless of working-set size.

    ``track_colors=True`` additionally tallies LLC hits/misses per
    processor mode (``None``/untrusted vs enclave color) for the
    per-color profiles of :mod:`repro.obs` — off by default to keep
    the plain metering path lean.
    """

    def __init__(self, machine: Machine,
                 params: CostParams = MACHINE_A,
                 resident_slots: int = 4096,
                 track_colors: bool = False):
        self.machine = machine
        self.meter = CostMeter(params)
        self.resident_slots = resident_slots
        self._lru: "OrderedDict[int, None]" = OrderedDict()
        self.accesses_by_region: Dict[str, int] = {}
        self.track_colors = track_colors
        #: color (or "U" for normal mode) -> [llc_hits, llc_misses];
        #: populated only when ``track_colors`` is set.
        self.traffic_by_color: Dict[str, List[int]] = {}
        machine.access_hooks.append(self._on_access)

    def detach(self) -> "MachineMeter":
        """Stop observing.  Counters keep their values; the machine's
        memory subsystem (and the pre-decoded engine's inlined
        load/store fast path) goes back to paying zero observer
        overhead once the hook list is empty again."""
        if self._on_access in self.machine.access_hooks:
            self.machine.access_hooks.remove(self._on_access)
        return self

    def _on_access(self, ctx: ExecutionContext, addr: int, region: str,
                   rw: str) -> None:
        self.accesses_by_region[region] = \
            self.accesses_by_region.get(region, 0) + 1
        lru = self._lru
        hit = addr in lru
        if hit:
            lru.move_to_end(addr)
        else:
            lru[addr] = None
            if len(lru) > self.resident_slots:
                lru.popitem(last=False)
        in_enclave = ctx.mode is not None
        if self.track_colors:
            color = ctx.mode if in_enclave else "U"
            traffic = self.traffic_by_color.get(color)
            if traffic is None:
                traffic = self.traffic_by_color[color] = [0, 0]
            traffic[0 if hit else 1] += 1
        self.meter.memory_accesses(1, 0.0 if hit else 1.0, in_enclave)

    def charge_runtime_messages(self, runtime) -> None:
        """Add the boundary-crossing costs of a Privagic runtime."""
        self.meter.privagic_messages(runtime.stats.messages)

    def enclave_access_fraction(self) -> float:
        total = sum(self.accesses_by_region.values())
        if not total:
            return 0.0
        enclave = sum(count for region, count in
                      self.accesses_by_region.items()
                      if region != UNSAFE_REGION)
        return enclave / total

    @property
    def cycles(self) -> float:
        return self.meter.cycles
