"""repro.bench — experiment harness regenerating the paper's tables
and figures.

Each benchmark in ``benchmarks/`` drives one artifact of the
evaluation section through :class:`~repro.bench.harness.Report`,
which renders the same rows/series the paper reports and records
paper-vs-measured values for EXPERIMENTS.md.
"""

from repro.bench.harness import (Report, band_check,
                                 capture_trace, format_table)
from repro.bench.timing import Timing, measure, speedup

__all__ = ["Report", "band_check", "capture_trace", "format_table",
           "Timing", "measure", "speedup"]
