"""Reporting utilities for the benchmark suite."""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Plain-text table with right-aligned numeric columns."""
    rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(widths[i]) if
                               _numeric(cell) else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.2f}"
    return str(cell)


def _numeric(cell: str) -> bool:
    return bool(cell) and (cell[0].isdigit() or cell[0] in "+-.")


def band_check(name: str, value: float,
               band: Tuple[float, float]) -> str:
    lo, hi = band
    ok = lo <= value <= hi
    mark = "OK " if ok else "OUT"
    return f"[{mark}] {name}: measured {value:.2f}, paper {lo}-{hi}"


class Report:
    """Collects the lines of one regenerated table/figure and writes
    them to ``benchmarks/results/<name>.txt`` (and stdout)."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self.lines: List[str] = [f"== {title} ==", ""]

    def add(self, text: str = "") -> None:
        self.lines.append(text)

    def table(self, headers, rows) -> None:
        self.lines.append(format_table(headers, rows))

    def band(self, name: str, value: float, band) -> bool:
        line = band_check(name, value, band)
        self.lines.append(line)
        return line.startswith("[OK")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    def write(self, directory: Optional[str] = None) -> str:
        directory = directory or os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))))),
            "benchmarks", "results")
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.name}.txt")
        with open(path, "w") as handle:
            handle.write(self.text())
        print(self.text())
        return path


def capture_trace(program, path: str, entry: str = "main",
                  engine: Optional[str] = None) -> str:
    """Run ``program`` once with the observability layer attached and
    write a Chrome trace to ``path``.

    The ``REPRO_TRACE=<path>`` hook of the benchmark scripts: timing
    loops run unobserved (the tracer would distort them), then this
    captures one instrumented run for the same workload so a
    ``BENCH_*.json`` regeneration can also leave a profile behind.
    """
    from repro.obs import Observability
    from repro.runtime import run_partitioned

    obs = Observability(trace=True)
    run_partitioned(program, entry, engine=engine, observability=obs)
    return obs.write_trace(path)
