"""Steps/sec timing for interpreter benchmarks.

The dispatch benchmarks compare execution engines, so the quantity of
interest is *interpreted steps per second* — wall-clock alone would
conflate engine speed with workload size.  :func:`measure` runs a
thunk that returns a step count, takes the best of ``repeat`` runs
(interpreter benchmarks are minimum-latency measurements: anything
above the minimum is scheduler/GC noise, not engine cost) and returns
a :class:`Timing` with both raw and derived numbers.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Tuple


class Timing:
    """One measurement: steps, best wall-clock seconds, steps/sec."""

    __slots__ = ("steps", "seconds", "runs")

    def __init__(self, steps: int, seconds: float, runs: int):
        self.steps = steps
        self.seconds = seconds
        self.runs = runs

    @property
    def steps_per_sec(self) -> float:
        return self.steps / self.seconds if self.seconds else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "steps": self.steps,
            "seconds": self.seconds,
            "steps_per_sec": round(self.steps_per_sec, 1),
            "runs": self.runs,
        }

    def __repr__(self) -> str:
        return (f"<Timing {self.steps} steps in {self.seconds:.4f}s "
                f"= {self.steps_per_sec:,.0f}/s>")


def measure(thunk: Callable[[], int], repeat: int = 3) -> Timing:
    """Best-of-``repeat`` timing of ``thunk``, which must return the
    number of interpreter steps it executed.

    Every run must report the same step count — a differing count
    means the workload is not deterministic and the comparison would
    be meaningless, so it raises instead of averaging it away.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    best: Tuple[int, float] = None  # type: ignore[assignment]
    for _ in range(repeat):
        t0 = time.perf_counter()
        steps = thunk()
        elapsed = time.perf_counter() - t0
        if best is not None and steps != best[0]:
            raise RuntimeError(
                f"non-deterministic workload: {steps} steps vs "
                f"{best[0]} on an earlier run")
        if best is None or elapsed < best[1]:
            best = (steps, elapsed)
    return Timing(best[0], best[1], repeat)


def speedup(base: Timing, fast: Timing) -> float:
    """How many times more steps/sec ``fast`` does than ``base``."""
    if not base.steps_per_sec:
        return 0.0
    return fast.steps_per_sec / base.steps_per_sec
