"""A red-black tree used as a map (the "treemap" of §9.3).

Classic CLRS red-black tree with a nil sentinel.  Lookups visit about
``1.39 · log2 n`` nodes; with the uniform YCSB pattern those visits
scatter over the whole working set, producing the many LLC misses the
paper blames for the treemap's large enclave-mode degradation
(§9.3.2).
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.datastructures.instrumented import AccessCounter

RED = 0
BLACK = 1


class _Node:
    __slots__ = ("key", "value", "color", "left", "right", "parent")

    def __init__(self, key=None, value=None, color=BLACK):
        self.key = key
        self.value = value
        self.color = color
        self.left = self.right = self.parent = None


class RedBlackTreeMap:
    """CLRS red-black tree with access counting."""

    def __init__(self, counter: Optional[AccessCounter] = None):
        self.counter = counter or AccessCounter()
        self.nil = _Node(color=BLACK)
        self.nil.left = self.nil.right = self.nil.parent = self.nil
        self.root = self.nil
        self.size = 0

    # -- queries -------------------------------------------------------------------

    def get(self, key):
        self.counter.begin_op()
        node = self._find(key)
        if node is self.nil:
            self.counter.end_op()
            return None
        self.counter.copy_value()
        self.counter.end_op()
        return node.value

    def __contains__(self, key) -> bool:
        self.counter.begin_op()
        found = self._find(key) is not self.nil
        self.counter.end_op()
        return found

    def _find(self, key):
        node = self.root
        while node is not self.nil:
            self.counter.touch()
            if key == node.key:
                return node
            node = node.left if key < node.key else node.right
        return self.nil

    def __len__(self) -> int:
        return self.size

    def items(self) -> Iterator[Tuple[object, object]]:
        def walk(node):
            if node is self.nil:
                return
            yield from walk(node.left)
            yield (node.key, node.value)
            yield from walk(node.right)
        yield from walk(self.root)

    def black_height_valid(self) -> bool:
        """Invariant check used by the property tests: every root-leaf
        path has the same number of black nodes and no red node has a
        red child."""
        def check(node) -> int:
            if node is self.nil:
                return 1
            if node.color == RED:
                if node.left.color == RED or node.right.color == RED:
                    raise AssertionError("red node with red child")
            left = check(node.left)
            right = check(node.right)
            if left != right:
                raise AssertionError("black-height mismatch")
            return left + (1 if node.color == BLACK else 0)

        if self.root.color != BLACK:
            return False
        try:
            check(self.root)
        except AssertionError:
            return False
        return True

    # -- insertion --------------------------------------------------------------------

    def put(self, key, value) -> None:
        self.counter.begin_op()
        parent = self.nil
        node = self.root
        while node is not self.nil:
            self.counter.touch()
            parent = node
            if key == node.key:
                node.value = value
                self.counter.copy_value()
                self.counter.end_op()
                return
            node = node.left if key < node.key else node.right
        new = _Node(key, value, RED)
        new.left = new.right = self.nil
        new.parent = parent
        self.counter.touch()
        self.counter.copy_value()
        if parent is self.nil:
            self.root = new
        elif key < parent.key:
            parent.left = new
        else:
            parent.right = new
        self.size += 1
        self._insert_fixup(new)
        self.counter.end_op()

    def _rotate_left(self, x) -> None:
        self.counter.touch(3)
        y = x.right
        x.right = y.left
        if y.left is not self.nil:
            y.left.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.left:
            x.parent.left = y
        else:
            x.parent.right = y
        y.left = x
        x.parent = y

    def _rotate_right(self, x) -> None:
        self.counter.touch(3)
        y = x.left
        x.left = y.right
        if y.right is not self.nil:
            y.right.parent = x
        y.parent = x.parent
        if x.parent is self.nil:
            self.root = y
        elif x is x.parent.right:
            x.parent.right = y
        else:
            x.parent.left = y
        y.right = x
        x.parent = y

    def _insert_fixup(self, z) -> None:
        while z.parent.color == RED:
            self.counter.touch()
            if z.parent is z.parent.parent.left:
                uncle = z.parent.parent.right
                if uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.right:
                        z = z.parent
                        self._rotate_left(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_right(z.parent.parent)
            else:
                uncle = z.parent.parent.left
                if uncle.color == RED:
                    z.parent.color = BLACK
                    uncle.color = BLACK
                    z.parent.parent.color = RED
                    z = z.parent.parent
                else:
                    if z is z.parent.left:
                        z = z.parent
                        self._rotate_right(z)
                    z.parent.color = BLACK
                    z.parent.parent.color = RED
                    self._rotate_left(z.parent.parent)
        self.root.color = BLACK

    # -- deletion ----------------------------------------------------------------------

    def delete(self, key) -> bool:
        self.counter.begin_op()
        z = self._find(key)
        if z is self.nil:
            self.counter.end_op()
            return False
        y = z
        y_color = y.color
        if z.left is self.nil:
            x = z.right
            self._transplant(z, z.right)
        elif z.right is self.nil:
            x = z.left
            self._transplant(z, z.left)
        else:
            y = self._minimum(z.right)
            y_color = y.color
            x = y.right
            if y.parent is z:
                x.parent = y
            else:
                self._transplant(y, y.right)
                y.right = z.right
                y.right.parent = y
            self._transplant(z, y)
            y.left = z.left
            y.left.parent = y
            y.color = z.color
        if y_color == BLACK:
            self._delete_fixup(x)
        self.size -= 1
        self.counter.end_op()
        return True

    def _transplant(self, u, v) -> None:
        self.counter.touch()
        if u.parent is self.nil:
            self.root = v
        elif u is u.parent.left:
            u.parent.left = v
        else:
            u.parent.right = v
        v.parent = u.parent

    def _minimum(self, node):
        while node.left is not self.nil:
            self.counter.touch()
            node = node.left
        return node

    def _delete_fixup(self, x) -> None:
        while x is not self.root and x.color == BLACK:
            self.counter.touch()
            if x is x.parent.left:
                w = x.parent.right
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_left(x.parent)
                    w = x.parent.right
                if w.left.color == BLACK and w.right.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.right.color == BLACK:
                        w.left.color = BLACK
                        w.color = RED
                        self._rotate_right(w)
                        w = x.parent.right
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.right.color = BLACK
                    self._rotate_left(x.parent)
                    x = self.root
            else:
                w = x.parent.left
                if w.color == RED:
                    w.color = BLACK
                    x.parent.color = RED
                    self._rotate_right(x.parent)
                    w = x.parent.left
                if w.right.color == BLACK and w.left.color == BLACK:
                    w.color = RED
                    x = x.parent
                else:
                    if w.left.color == BLACK:
                        w.right.color = BLACK
                        w.color = RED
                        self._rotate_left(w)
                        w = x.parent.left
                    w.color = x.parent.color
                    x.parent.color = BLACK
                    w.left.color = BLACK
                    self._rotate_right(x.parent)
                    x = self.root
        x.color = BLACK

    # -- analytic access profile ----------------------------------------------------------

    @staticmethod
    def expected_accesses(op: str, n: int) -> float:
        import math
        if n <= 1:
            return 1.0
        depth = 1.39 * math.log2(n)
        if op in ("put", "insert", "update", "delete"):
            return depth + 3.0  # fixup rotations
        return depth

    access_pattern = "uniform"
