"""A sorted singly linked list used as a map (§9.3).

Lookups visit ``n/2`` nodes on average — the paper's observation that
"retrieving a key in a linked list requires visiting many (key,
value) couples (50 000 in average)", which amortizes the cost of
crossing the enclave boundary.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.datastructures.instrumented import AccessCounter


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key, value, next=None):
        self.key = key
        self.value = value
        self.next = next


class LinkedListMap:
    """Sorted singly linked list map with access counting."""

    def __init__(self, counter: Optional[AccessCounter] = None):
        self.head: Optional[_Node] = None
        self.size = 0
        self.counter = counter or AccessCounter()

    # -- map interface ------------------------------------------------------------

    def get(self, key):
        self.counter.begin_op()
        node = self.head
        while node is not None:
            self.counter.touch()
            if node.key == key:
                self.counter.copy_value()
                self.counter.end_op()
                return node.value
            if node.key > key:
                break
            node = node.next
        self.counter.end_op()
        return None

    def put(self, key, value) -> None:
        self.counter.begin_op()
        prev = None
        node = self.head
        while node is not None and node.key < key:
            self.counter.touch()
            prev, node = node, node.next
        if node is not None and node.key == key:
            self.counter.touch()
            node.value = value
            self.counter.copy_value()
            self.counter.end_op()
            return
        new = _Node(key, value, node)
        self.counter.touch()
        self.counter.copy_value()
        if prev is None:
            self.head = new
        else:
            prev.next = new
        self.size += 1
        self.counter.end_op()

    def delete(self, key) -> bool:
        self.counter.begin_op()
        prev = None
        node = self.head
        while node is not None and node.key < key:
            self.counter.touch()
            prev, node = node, node.next
        if node is None or node.key != key:
            self.counter.end_op()
            return False
        self.counter.touch()
        if prev is None:
            self.head = node.next
        else:
            prev.next = node.next
        self.size -= 1
        self.counter.end_op()
        return True

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.size

    def items(self) -> Iterator[Tuple[object, object]]:
        node = self.head
        while node is not None:
            yield node.key, node.value
            node = node.next

    # -- analytic access profile (feeds the cost model) ----------------------------

    @staticmethod
    def expected_accesses(op: str, n: int) -> float:
        """Expected node visits per operation on an n-item list."""
        if n <= 0:
            return 1.0
        return max(1.0, n / 2.0)

    access_pattern = "scan"
