"""repro.datastructures — the data structures of the §9.3 evaluation.

A linked list, a red-black tree and a separate-chaining hashmap, all
used as maps (key → value).  Every implementation counts its memory
accesses through an :class:`~repro.datastructures.instrumented.AccessCounter`
so the analytic access profiles feeding the cost model can be
validated against reality (``benchmarks/bench_ablation_cachemodel.py``).
"""

from repro.datastructures.instrumented import AccessCounter
from repro.datastructures.linkedlist import LinkedListMap
from repro.datastructures.rbtree import RedBlackTreeMap
from repro.datastructures.hashmap import ChainingHashMap

__all__ = [
    "AccessCounter",
    "LinkedListMap",
    "RedBlackTreeMap",
    "ChainingHashMap",
]
