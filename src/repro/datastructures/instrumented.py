"""Memory-access instrumentation shared by the data structures.

A *memory access* is one touched node or field group — roughly one
cache line of structural data.  Value payloads are counted separately
(``record_bytes / cache_line`` lines per copied value) because the
1024-byte YCSB values dominate the line traffic of small-node
structures.
"""

from __future__ import annotations

from typing import Dict


class AccessCounter:
    """Counts node/field accesses per operation class."""

    def __init__(self):
        self.node_accesses = 0
        self.value_copies = 0
        self.operations = 0
        self.per_op_log: list = []
        self._current = 0

    def touch(self, n: int = 1) -> None:
        self.node_accesses += n
        self._current += n

    def copy_value(self) -> None:
        self.value_copies += 1

    def begin_op(self) -> None:
        self._current = 0

    def end_op(self) -> None:
        self.operations += 1
        self.per_op_log.append(self._current)

    def mean_accesses_per_op(self) -> float:
        if not self.per_op_log:
            return 0.0
        return sum(self.per_op_log) / len(self.per_op_log)

    def reset(self) -> None:
        self.node_accesses = 0
        self.value_copies = 0
        self.operations = 0
        self.per_op_log.clear()
        self._current = 0

    def stats(self) -> Dict[str, float]:
        return {
            "operations": self.operations,
            "node_accesses": self.node_accesses,
            "value_copies": self.value_copies,
            "mean_per_op": self.mean_accesses_per_op(),
        }
