"""A separate-chaining hashmap used as a map (§9.3).

"The hashmap uses a separate chaining algorithm: it is designed as an
array of linked lists, in which each linked list contains the keys
that collide."  Access to the hashmap "only costs a few memory
accesses", which is why the boundary-crossing cost dominates its
protected configurations (§9.3.2).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.datastructures.instrumented import AccessCounter


def _fnv_hash(key) -> int:
    value = key if isinstance(key, int) else hash(key)
    value &= (1 << 64) - 1
    h = 0xcbf29ce484222325
    for _ in range(8):
        h ^= value & 0xff
        h = (h * 0x100000001b3) & ((1 << 64) - 1)
        value >>= 8
    return h


class _Entry:
    __slots__ = ("key", "value", "next")

    def __init__(self, key, value, next=None):
        self.key = key
        self.value = value
        self.next = next


class ChainingHashMap:
    """Array of collision chains, with access counting."""

    def __init__(self, buckets: int = 1024,
                 counter: Optional[AccessCounter] = None,
                 max_load: float = 4.0):
        self._buckets: List[Optional[_Entry]] = [None] * buckets
        self.size = 0
        self.counter = counter or AccessCounter()
        self.max_load = max_load

    def _index(self, key) -> int:
        return _fnv_hash(key) % len(self._buckets)

    # -- map interface ---------------------------------------------------------------

    def get(self, key):
        self.counter.begin_op()
        self.counter.touch()  # bucket head
        entry = self._buckets[self._index(key)]
        while entry is not None:
            self.counter.touch()
            if entry.key == key:
                self.counter.copy_value()
                self.counter.end_op()
                return entry.value
            entry = entry.next
        self.counter.end_op()
        return None

    def put(self, key, value) -> None:
        self.counter.begin_op()
        index = self._index(key)
        self.counter.touch()
        entry = self._buckets[index]
        while entry is not None:
            self.counter.touch()
            if entry.key == key:
                entry.value = value
                self.counter.copy_value()
                self.counter.end_op()
                return
            entry = entry.next
        self._buckets[index] = _Entry(key, value, self._buckets[index])
        self.counter.touch()
        self.counter.copy_value()
        self.size += 1
        if self.size > self.max_load * len(self._buckets):
            self._grow()
        self.counter.end_op()

    def delete(self, key) -> bool:
        self.counter.begin_op()
        index = self._index(key)
        self.counter.touch()
        entry = self._buckets[index]
        prev = None
        while entry is not None:
            self.counter.touch()
            if entry.key == key:
                if prev is None:
                    self._buckets[index] = entry.next
                else:
                    prev.next = entry.next
                self.size -= 1
                self.counter.end_op()
                return True
            prev, entry = entry, entry.next
        self.counter.end_op()
        return False

    def __contains__(self, key) -> bool:
        return self.get(key) is not None

    def __len__(self) -> int:
        return self.size

    def items(self) -> Iterator[Tuple[object, object]]:
        for head in self._buckets:
            entry = head
            while entry is not None:
                yield entry.key, entry.value
                entry = entry.next

    def load_factor(self) -> float:
        return self.size / len(self._buckets)

    def _grow(self) -> None:
        old = self._buckets
        self._buckets = [None] * (len(old) * 2)
        size = self.size
        for head in old:
            entry = head
            while entry is not None:
                index = self._index(entry.key)
                self._buckets[index] = _Entry(entry.key, entry.value,
                                              self._buckets[index])
                entry = entry.next
        self.size = size

    # -- analytic access profile ---------------------------------------------------------

    @staticmethod
    def expected_accesses(op: str, n: int, load: float = 1.0) -> float:
        # bucket head + expected chain scan under the load factor
        return 2.0 + load / 2.0

    access_pattern = "zipfian"
