"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`PrivagicError`,
so callers can catch a single base class.  The secure type system
raises :class:`SecureTypeError` with a structured diagnostic (rule
name, offending instruction, involved colors) because the paper's
evaluation counts and classifies these errors.
"""

from __future__ import annotations


class PrivagicError(Exception):
    """Base class for every error raised by the repro library."""


class IRError(PrivagicError):
    """Malformed IR: verifier failures, bad operand types, parse errors."""


class FrontendError(PrivagicError):
    """MiniC compilation error (lexing, parsing or semantic analysis)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class SecureTypeError(PrivagicError):
    """A violation of the secure typing rules (Table 3 of the paper).

    Attributes
    ----------
    rule:
        Short identifier of the violated rule, e.g. ``"store-color"``,
        ``"load-pointer"``, ``"block-color"``, ``"union"``, ``"iago"``.
    instruction:
        Textual rendering of the offending IR instruction, if any.
    colors:
        The incompatible colors involved in the violation.
    loc:
        Source position ``(line, column)`` of the offending MiniC
        construct, when the instruction carries one.
    """

    def __init__(self, rule: str, message: str, instruction: str = "",
                 colors: tuple = (), loc=None):
        self.rule = rule
        self.instruction = instruction
        self.colors = tuple(colors)
        self.loc = tuple(loc) if loc else None
        detail = f"[{rule}] {message}"
        if instruction:
            detail += f" (at: {instruction})"
        if self.loc:
            detail += f" (source line {self.loc[0]}:{self.loc[1]})"
        super().__init__(detail)


class PartitionError(PrivagicError):
    """The partitioner cannot rewrite the program as requested.

    Raised for instance in hardened mode when a missing chunk would
    need an F argument computed by another enclave (paper §7.3.2), or
    when multi-color structures are used in hardened mode (§8).
    """


class PlacementError(PrivagicError):
    """The placement optimizer produced (or was asked for) something
    invalid: an unknown policy name, a decision that would relocate
    secret-typed code or silence a chunk that hosts visible effects,
    or a partitioned output that fails the post-optimization
    structural re-check."""


class RuntimeFault(PrivagicError):
    """A fault during simulated execution (bad address, SGX access
    violation, deadlock in the worker/channel runtime).

    The partitioned runtime degrades *detect-and-fault*, never
    silently-wrong: every anomaly the runtime or the chaos harness can
    observe raises one of the typed subclasses below, and the CLI maps
    each subclass to a stable nonzero exit code (:func:`fault_exit_code`)
    so harnesses can assert on the fault class without parsing stderr.
    """


class DeadlockFault(RuntimeFault):
    """No context can make progress while messages are still awaited.

    Carries the full per-context / per-channel diagnostic report in its
    message: each parked context's awaited ``(src, kind)`` and every
    non-empty channel's pending-by-kind counts.
    """


class IagoFault(RuntimeFault):
    """The untrusted side handed the runtime data that fails an
    integrity check: a channel message that does not authenticate, a
    replayed or out-of-sequence message, or an untrusted external whose
    return value violates its postcondition (the Iago attacks of
    paper §4 / Table 3)."""


class EnclaveCrash(RuntimeFault):
    """A simulated asynchronous enclave exit (AEX) killed a worker and
    the runtime could not (or was configured not to) restart it."""


class WatchdogTimeout(RuntimeFault):
    """A context exceeded its step budget, or the whole partitioned
    run exceeded ``max_steps`` — the loud upgrade of a silent hang."""


class NetworkFault(RuntimeFault):
    """The untrusted network between router and shard workers failed
    past its bounded-retry budget: a connect that never succeeded, a
    worker that missed its ready deadline, or a link the router gave
    up re-establishing.  The loud, typed upgrade of a raw
    ``OSError`` traceback or a silent hang on a dead socket."""


#: CLI exit codes per fault class, most-derived first.  1 stays the
#: generic :class:`PrivagicError` code and 2 the OS-error code; the
#: runtime fault taxonomy gets 3-9.
FAULT_EXIT_CODES = (
    (DeadlockFault, 4),
    (IagoFault, 5),
    (EnclaveCrash, 6),
    (WatchdogTimeout, 7),
    (NetworkFault, 9),
)


def fault_exit_code(error: BaseException) -> int:
    """The CLI exit code for ``error`` (see :data:`FAULT_EXIT_CODES`)."""
    for cls, code in FAULT_EXIT_CODES:
        if isinstance(error, cls):
            return code
    if isinstance(error, SGXAccessViolation):
        return 8
    if isinstance(error, RuntimeFault):
        return 3
    return 1


class SGXAccessViolation(RuntimeFault):
    """The simulated processor attempted a forbidden memory access,
    e.g. normal mode touching enclave memory, or enclave mode touching
    a non-active enclave (paper §2.1)."""

    def __init__(self, message: str, address: int = -1, mode: str = "",
                 region: str = ""):
        self.address = address
        self.mode = mode
        self.region = region
        super().__init__(message)


def exit_code_table():
    """The full CLI exit-code contract, ``(code, name, meaning)``
    rows sorted by code.

    This is the single source of truth: the fault rows are derived
    from :data:`FAULT_EXIT_CODES` (plus :class:`SGXAccessViolation`'s
    code in :func:`fault_exit_code`), ``tests/test_cli.py`` asserts
    the README table matches it, and harnesses may render it instead
    of hard-coding codes.
    """
    meanings = {
        DeadlockFault: "no context can make progress while messages "
                       "are still awaited",
        IagoFault: "untrusted data failed an integrity check "
                   "(channel authentication, Iago postconditions)",
        EnclaveCrash: "a simulated AEX killed a worker that was not "
                      "restarted",
        WatchdogTimeout: "a context or run exceeded its step budget",
        NetworkFault: "a router<->shard link failed past its bounded "
                      "retry budget (connect, ready, or reconnect)",
    }
    rows = [
        (0, "success", "the command completed"),
        (1, "PrivagicError", "compile-time or usage error (secure "
                             "typing, partitioning, bad flags)"),
        (2, "OSError", "filesystem or socket error"),
        (3, "RuntimeFault", "an untyped runtime fault (none of the "
                            "classes below)"),
    ]
    for cls, code in FAULT_EXIT_CODES:
        rows.append((code, cls.__name__, meanings[cls]))
    rows.append((fault_exit_code(SGXAccessViolation("")),
                 "SGXAccessViolation",
                 "a forbidden enclave/normal-mode memory access"))
    return tuple(sorted(rows))
