"""Exception hierarchy shared across the repro package.

Every error raised by the library derives from :class:`PrivagicError`,
so callers can catch a single base class.  The secure type system
raises :class:`SecureTypeError` with a structured diagnostic (rule
name, offending instruction, involved colors) because the paper's
evaluation counts and classifies these errors.
"""

from __future__ import annotations


class PrivagicError(Exception):
    """Base class for every error raised by the repro library."""


class IRError(PrivagicError):
    """Malformed IR: verifier failures, bad operand types, parse errors."""


class FrontendError(PrivagicError):
    """MiniC compilation error (lexing, parsing or semantic analysis)."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{line}:{column}: {message}"
        super().__init__(message)


class SecureTypeError(PrivagicError):
    """A violation of the secure typing rules (Table 3 of the paper).

    Attributes
    ----------
    rule:
        Short identifier of the violated rule, e.g. ``"store-color"``,
        ``"load-pointer"``, ``"block-color"``, ``"union"``, ``"iago"``.
    instruction:
        Textual rendering of the offending IR instruction, if any.
    colors:
        The incompatible colors involved in the violation.
    loc:
        Source position ``(line, column)`` of the offending MiniC
        construct, when the instruction carries one.
    """

    def __init__(self, rule: str, message: str, instruction: str = "",
                 colors: tuple = (), loc=None):
        self.rule = rule
        self.instruction = instruction
        self.colors = tuple(colors)
        self.loc = tuple(loc) if loc else None
        detail = f"[{rule}] {message}"
        if instruction:
            detail += f" (at: {instruction})"
        if self.loc:
            detail += f" (source line {self.loc[0]}:{self.loc[1]})"
        super().__init__(detail)


class PartitionError(PrivagicError):
    """The partitioner cannot rewrite the program as requested.

    Raised for instance in hardened mode when a missing chunk would
    need an F argument computed by another enclave (paper §7.3.2), or
    when multi-color structures are used in hardened mode (§8).
    """


class RuntimeFault(PrivagicError):
    """A fault during simulated execution (bad address, SGX access
    violation, deadlock in the worker/channel runtime)."""


class SGXAccessViolation(RuntimeFault):
    """The simulated processor attempted a forbidden memory access,
    e.g. normal mode touching enclave memory, or enclave mode touching
    a non-active enclave (paper §2.1)."""

    def __init__(self, message: str, address: int = -1, mode: str = "",
                 region: str = ""):
        self.address = address
        self.mode = mode
        self.region = region
        super().__init__(message)
