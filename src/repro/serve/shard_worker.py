"""One shard of the sharded serving layer, as its own process.

``python -m repro.serve.shard_worker --shard-id K`` hosts a complete
single-shard stack — untrusted :class:`MiniCache` store, compiled
partitioned KV program, one
:class:`~repro.runtime.executor.PrivagicRuntime` enclave runtime, the
:class:`~repro.serve.server.PrivagicServer` batching loop — behind an
ephemeral loopback port, and announces readiness on stdout with a
single machine-readable line::

    SHARD_READY shard=2 port=43117 pid=71002

The router (:mod:`repro.serve.router`) spawns N of these, parses the
ready line, connects, and pipelines routed requests over the
connection using the ordinary request/response framing — a shard
worker neither knows nor cares that its one client is a router
rather than a memcached user.  Process isolation is the point: each
shard owns a private interpreter (its own GIL, its own simulated
enclave memory), so shards execute truly concurrently on multicore
hosts, and a shard crash is a *process* death the router can detect
and repair rather than shared-state corruption.

Chaos hooks: ``--crash-after N`` simulates an asynchronous enclave
exit (AEX) by hard-exiting the process (with the
:class:`~repro.errors.EnclaveCrash` CLI code) before the drive that
would push the shard past N served operations.  The exit is
deterministic in *operation count*, so seeded differential runs can
kill the same shard at the same point every time.  ``--inject`` /
``--chaos-seed`` arm the PR-4 fault injector inside the shard's own
runtime, exactly as ``repro serve`` does for the single-process
server.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import List, Optional, Sequence

from repro.errors import EnclaveCrash, RuntimeFault, fault_exit_code
from repro.ir.interp import ENGINES
from repro.serve.engine import SecureKVEngine
from repro.serve.server import PrivagicServer, ServeConfig

#: The stdout announcement the router waits for.
READY_PREFIX = "SHARD_READY"


class CrashingKVEngine(SecureKVEngine):
    """A :class:`SecureKVEngine` that simulates an AEX: the process
    hard-exits before the drive that would cross ``crash_after``
    served operations.  ``os._exit`` (no atexit, no flushing, no
    drain) is deliberate — a real AEX gives the enclave no chance to
    say goodbye either."""

    def __init__(self, *args, crash_after: int = 0, **kwargs):
        super().__init__(*args, **kwargs)
        self.crash_after = crash_after

    def execute(self, ops):
        if self.crash_after and \
                self.ops_served + len(ops) > self.crash_after:
            os._exit(fault_exit_code(EnclaveCrash("")))
        return super().execute(ops)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve.shard_worker",
        description="one shard-worker process of the sharded "
                    "serving layer")
    parser.add_argument("--shard-id", type=int, required=True,
                        help="this shard's index (metrics, the "
                             "ready line)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="listening port (default: ephemeral)")
    parser.add_argument("--batch", type=int, default=16)
    parser.add_argument("--batch-window", type=float, default=None,
                        metavar="SECONDS",
                        help="adaptive batch-window cap (default: "
                             "the server default)")
    parser.add_argument("--queue-depth", type=int, default=256)
    parser.add_argument("--capacity-bytes", type=int,
                        default=64 * 1024 * 1024)
    parser.add_argument("--engine", choices=list(ENGINES),
                        default=None)
    parser.add_argument("--max-steps", type=int, default=50_000_000)
    parser.add_argument("--watchdog-steps", type=int, default=None)
    parser.add_argument("--crash-after", type=int, default=0,
                        metavar="N",
                        help="simulate an AEX (hard process exit) "
                             "before serving more than N operations")
    parser.add_argument("--inject", metavar="SPEC", default=None,
                        help="fault-injection schedule for this "
                             "shard's runtime")
    parser.add_argument("--chaos-seed", type=int, default=None)
    parser.add_argument("--orphan-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="exit after having had a client and "
                             "then sitting connection-free this long "
                             "(a dead router cannot strand workers)")
    return parser


def build_server(options) -> PrivagicServer:
    config = ServeConfig(
        host=options.host, port=options.port, batch=options.batch,
        queue_depth=options.queue_depth,
        capacity_bytes=options.capacity_bytes,
        engine=options.engine, max_steps=options.max_steps,
        watchdog_steps=options.watchdog_steps,
        orphan_timeout=options.orphan_timeout)
    if options.batch_window is not None:
        config.batch_window = options.batch_window
    engine_kwargs = dict(engine=options.engine,
                         max_steps=options.max_steps,
                         watchdog_steps=options.watchdog_steps)
    if options.crash_after:
        engine = CrashingKVEngine(crash_after=options.crash_after,
                                  **engine_kwargs)
    else:
        engine = SecureKVEngine(**engine_kwargs)
    return PrivagicServer(config, engine=engine)


def main(argv: Optional[Sequence[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    server = build_server(options)
    if options.inject is not None or options.chaos_seed is not None:
        from repro.faults import FaultInjector, FaultPlan

        if options.inject is not None:
            plan = FaultPlan.parse(options.inject,
                                   seed=options.chaos_seed or 0)
        else:
            program = server.engine.program
            colors = sorted(set(program.chunk_colors.values())
                            - {program.untrusted})
            plan = FaultPlan.random(options.chaos_seed, colors,
                                    untrusted=program.untrusted)
        FaultInjector(plan).attach(server.engine.runtime)
    port = server.bind()
    if threading.current_thread() is threading.main_thread():
        # The router stops a shard with SIGTERM: drain, then exit 0.
        signal.signal(signal.SIGTERM,
                      lambda *_args: server.request_stop())
    print(f"{READY_PREFIX} shard={options.shard_id} port={port} "
          f"pid={os.getpid()}", flush=True)
    try:
        server.serve_forever()
    except RuntimeFault as fault:
        print(f"shard {options.shard_id}: "
              f"fault[{type(fault).__name__}]: {fault}",
              file=sys.stderr)
        return fault_exit_code(fault)
    return 0


def worker_command(shard_id: int, *, batch: int, queue_depth: int,
                   capacity_bytes: int,
                   engine: Optional[str] = None,
                   max_steps: int = 50_000_000,
                   watchdog_steps: Optional[int] = None,
                   batch_window: Optional[float] = None,
                   crash_after: int = 0,
                   inject: Optional[str] = None,
                   chaos_seed: Optional[int] = None,
                   orphan_timeout: Optional[float] = None
                   ) -> List[str]:
    """The argv that spawns one worker (the router's single source
    of truth for the worker interface)."""
    # A -c entry rather than -m: runpy would import repro.serve (which
    # itself imports this module for the package exports) and then
    # execute the module a second time, warning about the shadow copy.
    argv = [sys.executable, "-c",
            "from repro.serve.shard_worker import main; "
            "raise SystemExit(main())",
            "--shard-id", str(shard_id), "--port", "0",
            "--batch", str(batch),
            "--queue-depth", str(queue_depth),
            "--capacity-bytes", str(capacity_bytes),
            "--max-steps", str(max_steps)]
    if engine is not None:
        argv += ["--engine", engine]
    if watchdog_steps is not None:
        argv += ["--watchdog-steps", str(watchdog_steps)]
    if batch_window is not None:
        argv += ["--batch-window", repr(batch_window)]
    if crash_after:
        argv += ["--crash-after", str(crash_after)]
    if inject is not None:
        argv += ["--inject", inject]
    if chaos_seed is not None:
        argv += ["--chaos-seed", str(chaos_seed)]
    if orphan_timeout is not None:
        argv += ["--orphan-timeout", repr(orphan_timeout)]
    return argv


if __name__ == "__main__":
    raise SystemExit(main())
