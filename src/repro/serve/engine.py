"""The secure batch engine: one persistent partitioned runtime
driving the enclave-side KV index for the socket server.

The engine compiles :data:`~repro.serve.secure_source.
SECURE_KV_SOURCE` once at startup and keeps a single
:class:`~repro.runtime.executor.PrivagicRuntime` alive across
requests — globals (the bucket array, the allocator) persist in the
machine's simulated memory, so each :meth:`execute` call is one
interpreter drive of ``secure_batch`` over however many operations
the server batched.  After every drive the runtime's finished
application context and its worker group are retired
(:meth:`~repro.runtime.executor.PrivagicRuntime.retire_finished`),
so a server that handles millions of requests scans a constant-size
context list.

Keys and values cross into the enclave as 56-bit digests
(:meth:`SecureKVEngine.digest`): the untrusted cache stores the real
bytes, the enclave index stores an authenticated digest, and the
server compares the two on every reply — a lying untrusted store is
detected as an :class:`~repro.errors.IagoFault`, never silently
served.
"""

from __future__ import annotations

import hashlib
import os
from collections import deque
from typing import List, Optional, Sequence, Tuple

from repro.core.colors import HARDENED
from repro.core.compiler import compile_and_partition
from repro.errors import RuntimeFault
from repro.runtime import PrivagicRuntime
from repro.serve.secure_source import (
    OP_DELETE,
    OP_GET,
    OP_SET,
    SECURE_KV_SOURCE,
)
from repro.sgx import SGXAccessPolicy

#: An engine operation: ``("get", key)``, ``("delete", key)`` or
#: ``("set", key, value_bytes)``.
Op = Tuple


def compile_secure_kv(optimize: Optional[str] = None,
                      profile: Optional[dict] = None):
    """Compile and partition the served application (hardened mode).

    Split out so callers hosting many engines (the benchmark) can
    compile once and share the program.  ``optimize``/``profile``
    select a placement policy (``repro.core.placement``) for the
    served partition."""
    return compile_and_partition(SECURE_KV_SOURCE, mode=HARDENED,
                                 optimize=optimize, profile=profile)


class SecureKVEngine:
    """The compiled partitioned KV application, persistently loaded.

    Parameters
    ----------
    program:
        A pre-compiled partitioned program (from
        :func:`compile_secure_kv`); compiled on demand if omitted.
    engine:
        Interpreter engine name (``decoded``/``traced``/``legacy``),
        like the CLI's ``--engine``.  Serving defaults to ``traced``
        (the drive loop re-enters the same hot KV chunks thousands of
        times, exactly what the trace tier amortizes); ``REPRO_ENGINE``
        still wins when set.
    max_steps:
        Per-drive scheduler step budget.
    watchdog_steps:
        Optional per-context budget (chaos hardening).
    """

    OP_GET = OP_GET
    OP_SET = OP_SET
    OP_DELETE = OP_DELETE

    def __init__(self, program=None, engine: Optional[str] = None,
                 max_steps: int = 50_000_000,
                 watchdog_steps: Optional[int] = None):
        if engine is None:
            engine = os.environ.get("REPRO_ENGINE") or "traced"
        self.program = program if program is not None \
            else compile_secure_kv()
        self._feed: deque = deque()
        self._replies: List[int] = []
        self.runtime = PrivagicRuntime(
            self.program, self._externals(), max_steps=max_steps,
            engine=engine, watchdog_steps=watchdog_steps)
        SGXAccessPolicy().attach(self.runtime.machine)
        #: Totals over the engine's lifetime.
        self.drives = 0
        self.ops_served = 0

    # -- feed externals ----------------------------------------------------------

    def _externals(self) -> dict:
        """The untrusted externals bridging Python and MiniC: the
        request feed the entry loop pulls from, and the reply sink.
        (``classify``/``declassify`` are the identity — the simulated
        encrypt/decrypt of the paper's ignore functions.)"""
        feed = self._feed
        replies = self._replies

        def next_int(machine, ctx, args):
            return feed.popleft() if feed else 0

        return {
            "classify": lambda machine, ctx, args: args[0],
            "declassify": lambda machine, ctx, args: args[0],
            "next_request": next_int,
            "next_key": next_int,
            "next_value": next_int,
            "push_reply": lambda machine, ctx, args:
                replies.append(args[0]),
        }

    # -- digests -----------------------------------------------------------------

    @staticmethod
    def digest(data) -> int:
        """A 56-bit nonzero digest of a key or value.

        Seven bytes keep the digest well inside the simulated i64
        range (and clear of the Iago corruption sentinels at
        ``1 << 62``); the forced low bit keeps every digest distinct
        from the engine's ``0`` miss reply."""
        if isinstance(data, str):
            data = data.encode("utf-8", "surrogateescape")
        raw = hashlib.blake2b(data, digest_size=7).digest()
        return int.from_bytes(raw, "big") | 1

    # -- driving -----------------------------------------------------------------

    def execute(self, ops: Sequence[Op]) -> List[int]:
        """Run one batch of operations through the enclave index.

        Returns one integer reply per operation, in order: the value
        digest (or 0 for a miss) for ``get``, ``1`` for ``set``,
        ``1``/``0`` (found/not found) for ``delete``.
        """
        if not ops:
            return []
        feed = self._feed
        for op in ops:
            kind = op[0]
            if kind == "get":
                feed.extend((OP_GET, self.digest(op[1])))
            elif kind == "set":
                feed.extend((OP_SET, self.digest(op[1]),
                             self.digest(op[2])))
            elif kind == "delete":
                feed.extend((OP_DELETE, self.digest(op[1])))
            else:
                raise ValueError(f"unknown engine op {kind!r}")
        served = self.runtime.run("secure_batch", [len(ops)])
        replies = list(self._replies)
        self._replies.clear()
        if served != len(ops) or len(replies) != len(ops) or feed:
            feed.clear()
            raise RuntimeFault(
                f"secure_batch protocol violation: {len(ops)} op(s) "
                f"fed, {served} served, {len(replies)} replie(s)")
        self.runtime.retire_finished()
        self.drives += 1
        self.ops_served += len(ops)
        return replies

    # -- stats -------------------------------------------------------------------

    @property
    def steps(self) -> int:
        """Cumulative interpreter steps across all drives."""
        return self.runtime.machine.total_steps

    def stats(self) -> dict:
        return {
            "drives": self.drives,
            "ops": self.ops_served,
            "steps": self.steps,
            "messages": self.runtime.stats.messages,
            "contexts": len(self.runtime.machine.contexts),
        }
