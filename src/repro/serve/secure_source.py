"""The annotated MiniC application the socket server hosts.

A key/value index whose keys and values carry the named color
``store`` — the same partitioning story as the annotated minicache of
:mod:`repro.apps.minicache.minic_source`, restructured for serving:
the entry point ``secure_batch(count)`` pulls ``count`` requests from
the untrusted feed externals and answers through ``push_reply``, so
one interpreter drive serves a whole batch of network requests.
That is the server's amortization lever: the per-drive fixed costs
(application context, worker group, per-color worker creation,
scheduler warm-up and drain) are paid once per *batch*, not once per
request.

Coloring notes (all paper rules, found the hard way):

* The feed externals are plain ``extern`` — in hardened mode an
  untrusted external's result is U (Iago protection, §4), which gives
  every ``kv_*`` specialization a U chunk and the classify/spawn
  protocol of Figure 7.  Declaring them ``ignore`` would make the
  arguments F and leave spawn-only call sites with no driver.
* ``struct item`` is uniformly ``store``-colored, so pointers to it
  are ``store`` values and every pointer-derived branch condition
  (``e->key == k``, ``found == 0``) must be declassified before
  branching, or Rule 4 colors the region and U-colored state becomes
  unreachable inside it.
* Values are 56-bit digests, not bytes: the untrusted side keeps the
  actual payload (like the paper's memcached keeps values in unsafe
  memory) and the enclave keeps an authenticated digest per key — the
  server cross-checks every response against it.
"""

#: Number of hash buckets in the enclave-side index.
NBUCKETS = 64

#: Request opcodes of the feed protocol (``next_request`` values).
OP_GET = 1
OP_SET = 2
OP_DELETE = 3

SECURE_KV_SOURCE = """
    ignore long classify(long v);
    ignore long declassify(long v);
    extern long next_request();
    extern long next_key();
    extern long next_value();
    extern void push_reply(long v);

    struct item {
        long color(store) key;
        long color(store) value;
        struct item* next;
    };

    struct item* buckets[%(nbuckets)d];
    long kv_count = 0;

    long kv_set(long key, long value) {
        long k = classify(key);
        long v = classify(value);
        long b = k %% %(nbuckets)d;
        struct item* e = buckets[b];
        struct item* found = 0;
        while (e != 0) {
            if (e->key == k) found = e;
            e = e->next;
        }
        long miss = declassify(found == 0);
        if (miss) {
            found = malloc(sizeof(struct item));
            found->key = k;
            found->next = buckets[b];
            buckets[b] = found;
            kv_count = kv_count + 1;
        }
        found->value = v;
        return 1;
    }

    long kv_get(long key) {
        long k = classify(key);
        long b = k %% %(nbuckets)d;
        struct item* e = buckets[b];
        long v = 0;
        while (e != 0) {
            if (e->key == k) v = e->value;
            e = e->next;
        }
        long dv = declassify(v);
        return dv;
    }

    long kv_del(long key) {
        long k = classify(key);
        long b = k %% %(nbuckets)d;
        struct item* e = buckets[b];
        struct item* prev = 0;
        struct item* target = 0;
        struct item* tprev = 0;
        while (e != 0) {
            long match = declassify(e->key == k);
            if (match) { target = e; tprev = prev; }
            prev = e;
            e = e->next;
        }
        long found = declassify(target != 0);
        if (found) {
            long head = declassify(tprev == 0);
            if (head) { buckets[b] = target->next; }
            else { tprev->next = target->next; }
            kv_count = kv_count - 1;
        }
        return found;
    }

    entry long secure_batch(long count) {
        long served = 0;
        for (long i = 0; i < count; i++) {
            long op = next_request();
            long key = next_key();
            long out = 0;
            if (op == %(op_set)d) {
                long val = next_value();
                out = kv_set(key, val);
            } else {
                if (op == %(op_get)d) { out = kv_get(key); }
                else {
                    if (op == %(op_delete)d) { out = kv_del(key); }
                }
            }
            push_reply(out);
            served = served + 1;
        }
        return served;
    }
""" % {"nbuckets": NBUCKETS, "op_get": OP_GET, "op_set": OP_SET,
       "op_delete": OP_DELETE}
