"""Consistent hashing over shard workers.

The sharded serving layer (:mod:`repro.serve.router`) places every
key on exactly one shard.  A plain ``hash(key) % N`` placement would
reshuffle almost every key whenever ``N`` changes; the classic
consistent-hashing construction (Karger et al., the memcached client
libraries' ketama) instead hashes each shard to many *points* on a
ring and assigns a key to the first shard point clockwise from the
key's own hash.  Adding or removing one shard then moves only the
arcs adjacent to its points — ``1/N`` of the keyspace in expectation.

Determinism matters as much as churn: the same shard names must
produce the same placement in the router, in the recovery replayer
and in every test oracle, across processes and Python versions.
Points therefore come from ``blake2b``, never from :func:`hash` with
its per-process ``PYTHONHASHSEED``.  Membership is also
*order-insensitive* — :meth:`_rebuild` sorts all points, so removing
a node and later adding it back restores the exact original
ownership map, which is what lets the router's rebalancing
(``on_death=rebalance``) migrate a dead shard's keys away and then
migrate precisely the same arcs back when the shard returns.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from typing import Dict, List, Sequence, Tuple


def _point(label: str) -> int:
    """A stable 64-bit ring position for ``label``."""
    raw = hashlib.blake2b(label.encode("utf-8", "surrogateescape"),
                          digest_size=8).digest()
    return int.from_bytes(raw, "big")


class HashRing:
    """A consistent-hash ring over named nodes.

    Parameters
    ----------
    nodes:
        Node names (the router uses ``shard0`` .. ``shardN-1``).
    replicas:
        Virtual points per node.  More points smooth the ownership
        spread (64 keeps the max/min share within ~2x for 8 nodes);
        lookup stays O(log(nodes * replicas)).
    """

    def __init__(self, nodes: Sequence[str], replicas: int = 64):
        if not nodes:
            raise ValueError("a hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValueError(f"duplicate ring nodes in {list(nodes)}")
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self.nodes: Tuple[str, ...] = tuple(nodes)
        self._points: List[int] = []
        self._owners: List[str] = []
        self._rebuild()

    def _rebuild(self) -> None:
        pairs = sorted(
            (_point(f"{node}#{replica}"), node)
            for node in self.nodes
            for replica in range(self.replicas))
        self._points = [point for point, _node in pairs]
        self._owners = [node for _point, node in pairs]

    # -- lookup ------------------------------------------------------------------

    def lookup(self, key: str) -> str:
        """The node owning ``key``: the first node point clockwise
        from the key's hash (wrapping past the top of the ring)."""
        index = bisect_right(self._points, _point(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    # -- membership --------------------------------------------------------------

    def add(self, node: str) -> None:
        if node in self.nodes:
            raise ValueError(f"node {node!r} is already on the ring")
        self.nodes = self.nodes + (node,)
        self._rebuild()

    def remove(self, node: str) -> None:
        if node not in self.nodes:
            raise ValueError(f"node {node!r} is not on the ring")
        if len(self.nodes) == 1:
            raise ValueError("cannot remove the last ring node")
        self.nodes = tuple(n for n in self.nodes if n != node)
        self._rebuild()

    # -- introspection -----------------------------------------------------------

    def assignments(self, keys: Sequence[str]) -> Dict[str, str]:
        """Map each key to its owner — the bulk form of
        :meth:`lookup` the rebalancer and the movement tests use to
        compare whole placements across membership changes."""
        return {key: self.lookup(key) for key in keys}

    def ownership(self) -> Dict[str, float]:
        """Fraction of the ring each node owns (sums to 1.0) — the
        rebalance telemetry the router publishes per shard."""
        span = 1 << 64
        shares = {node: 0 for node in self.nodes}
        previous = self._points[-1] - span
        for point, owner in zip(self._points, self._owners):
            shares[owner] += point - previous
            previous = point
        return {node: arc / span for node, arc in shares.items()}

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:
        return (f"<HashRing nodes={len(self.nodes)} "
                f"replicas={self.replicas}>")
