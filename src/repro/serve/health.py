"""Failure detection for the sharded serving tier.

The router of :mod:`repro.serve.router` talks to its shard workers
over plain TCP, and PR 4's adversary model makes that link part of
the untrusted host: a worker can wedge without closing its socket, a
connect can hang, a reply can simply never come.  This module holds
the three detection mechanisms the router composes, each one small
and separately testable:

* :func:`connect_with_backoff` — every connect the router makes
  (initial, replay, reconnect) goes through one bounded
  exponential-backoff retry loop whose give-up is the typed
  :class:`~repro.errors.NetworkFault`, never a raw ``OSError``
  traceback and never an unbounded hang.

* :class:`HealthMonitor` — per-shard liveness bookkeeping.  Probes
  piggyback on the existing framing protocol: an idle shard is sent
  an ordinary ``get`` for a reserved ``__probe__<shard>`` key, which
  flows through the same slot FIFO as client traffic, so a probe
  reply proves the *whole* pipeline (socket, framer, worker loop) is
  alive, not just the TCP connection.  A busy shard needs no probe —
  its oldest in-flight slot's age is the liveness signal, bounded by
  ``forward_timeout``.

* :class:`CircuitBreaker` — a per-shard budget of *consecutive*
  recovery attempts.  Every detected death trips it; any subsequent
  reply from the shard closes it again.  When the budget is spent
  the router stops burning restarts on a flapping shard and
  surfaces a :class:`~repro.errors.NetworkFault` instead.

All timestamps are ``time.monotonic`` floats supplied by the caller,
so tests drive the clock explicitly.
"""

from __future__ import annotations

import socket
import time
from typing import Callable, Dict, Optional

from repro.errors import NetworkFault

#: Reserved key namespace for liveness probes.  Workers treat probe
#: gets as ordinary (missing) keys; the router never records them in
#: its ledger, so a probe answered with anything but a miss is a
#: lying shard.
PROBE_KEY_PREFIX = "__probe__"


def probe_key(shard_name: str) -> str:
    return f"{PROBE_KEY_PREFIX}{shard_name}"


def connect_with_backoff(address, timeout: float, retries: int,
                         backoff_base: float, backoff_cap: float,
                         describe: str = "shard link",
                         sleep: Callable[[float], None] = time.sleep,
                         wrap: Optional[Callable] = None
                         ) -> socket.socket:
    """``socket.create_connection`` with a bounded retry budget.

    Makes up to ``1 + retries`` attempts, sleeping
    ``min(backoff_cap, backoff_base * 2**attempt)`` between them.
    Exhausting the budget raises :class:`NetworkFault` carrying the
    last OS error.  ``wrap`` (the netchaos hook) is applied to the
    raw socket before it is returned, so injected faults cover the
    connect path too.
    """
    attempt = 0
    while True:
        try:
            sock = socket.create_connection(address, timeout=timeout)
            return wrap(sock) if wrap is not None else sock
        except OSError as error:
            if attempt >= retries:
                raise NetworkFault(
                    f"{describe}: connect to {address[0]}:"
                    f"{address[1]} failed after {attempt + 1} "
                    f"attempt(s): {error}")
            sleep(min(backoff_cap, backoff_base * (2 ** attempt)))
            attempt += 1


class CircuitBreaker:
    """Consecutive-failure budget for one shard's recovery path."""

    __slots__ = ("budget", "failures")

    def __init__(self, budget: int):
        self.budget = budget
        self.failures = 0

    def allow(self) -> bool:
        """May another recovery be attempted?"""
        return self.failures < self.budget

    def trip(self) -> None:
        self.failures += 1

    def close(self) -> None:
        """The shard answered: the failure streak is over."""
        self.failures = 0

    def __repr__(self) -> str:
        return (f"<CircuitBreaker {self.failures}/{self.budget}"
                f"{' OPEN' if not self.allow() else ''}>")


class _Record:
    __slots__ = ("last_reply", "probe_sent")

    def __init__(self, now: float):
        self.last_reply = now
        self.probe_sent: Optional[float] = None


class HealthMonitor:
    """Per-shard liveness bookkeeping (see module docstring).

    Parameters
    ----------
    probe_interval:
        Probe an *idle* shard after this many seconds without a
        reply; ``None`` disables probing.
    probe_timeout:
        A probe unanswered for this long is a confirmed failure.
    forward_timeout:
        A *busy* shard whose oldest in-flight request has waited
        this long is a confirmed failure; ``None`` disables it.
    """

    def __init__(self, probe_interval: Optional[float] = None,
                 probe_timeout: float = 5.0,
                 forward_timeout: Optional[float] = None):
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.forward_timeout = forward_timeout
        self._records: Dict[str, _Record] = {}

    @property
    def enabled(self) -> bool:
        return self.probe_interval is not None \
            or self.forward_timeout is not None

    def attach(self, name: str,
               now: Optional[float] = None) -> None:
        """(Re)start tracking a shard — call on every (re)connect."""
        self._records[name] = _Record(
            time.monotonic() if now is None else now)

    def note_reply(self, name: str,
                   now: Optional[float] = None) -> None:
        """Any reply proves the whole pipeline is alive; it also
        resolves an outstanding probe, whichever slot answered."""
        record = self._records.get(name)
        if record is None:
            return
        record.last_reply = time.monotonic() if now is None else now
        record.probe_sent = None

    def probe_outstanding(self, name: str) -> bool:
        record = self._records.get(name)
        return record is not None and record.probe_sent is not None

    def want_probe(self, name: str, idle: bool,
                   now: Optional[float] = None) -> bool:
        """Should the router send a probe this round?  Only idle
        shards are probed: a busy shard's in-flight age is already a
        stronger signal."""
        if self.probe_interval is None or not idle:
            return False
        record = self._records.get(name)
        if record is None or record.probe_sent is not None:
            return False
        now = time.monotonic() if now is None else now
        return now - record.last_reply >= self.probe_interval

    def note_probe(self, name: str,
                   now: Optional[float] = None) -> None:
        record = self._records.get(name)
        if record is not None:
            record.probe_sent = time.monotonic() if now is None \
                else now

    def verdict(self, name: str, oldest_sent_at: Optional[float],
                now: Optional[float] = None) -> Optional[str]:
        """The failure verdict for one shard, or ``None`` if it
        still looks alive.  ``oldest_sent_at`` is the forward time
        of the shard's oldest unanswered request (``None`` when
        idle)."""
        record = self._records.get(name)
        if record is None:
            return None
        now = time.monotonic() if now is None else now
        if record.probe_sent is not None \
                and now - record.probe_sent > self.probe_timeout:
            return (f"liveness probe unanswered for "
                    f"{now - record.probe_sent:.2f}s "
                    f"(probe_timeout={self.probe_timeout}s)")
        if self.forward_timeout is not None \
                and oldest_sent_at is not None \
                and now - oldest_sent_at > self.forward_timeout:
            return (f"oldest in-flight request unanswered for "
                    f"{now - oldest_sent_at:.2f}s "
                    f"(forward_timeout={self.forward_timeout}s)")
        return None
