"""Incremental request framing for the socket server.

TCP delivers a byte stream; the memcached text protocol frames it
into requests (one header line, plus a counted data block for
``set``).  The :class:`RequestFramer` accumulates whatever the socket
delivered and yields *complete* raw request texts, holding partial
requests until the rest arrives.

Malformation splits into two classes, because the server's recovery
differs:

* **Recoverable** garbage that still frames as a line — an unknown
  command, wrong arity, a bad key — is yielded as a normal frame;
  ``MiniCache.handle`` answers ``ERROR`` and the connection lives on
  (exactly what memcached does).
* **Desynchronizing** garbage — a header line longer than any legal
  request, a ``set`` whose byte count is not a number, out of range,
  or whose data block is not CRLF-terminated — means the framer can
  no longer tell where the next request starts.  That raises
  :class:`FrameError`; the server answers ``ERROR`` once and closes
  the connection, since anything further would be misparsed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.minicache import protocol

CRLF = b"\r\n"


class FrameError(protocol.ProtocolError):
    """The byte stream desynchronized; the connection must close."""


class RequestFramer:
    """Accumulates bytes; produces complete raw request strings.

    Parameters
    ----------
    max_line:
        Longest permitted header line (bytes, excluding CRLF).  Also
        bounds how much garbage a client can buffer before being cut
        off.
    max_data:
        Largest permitted ``set`` data block (bytes).
    """

    def __init__(self, max_line: int = 8192,
                 max_data: int = protocol.MAX_DATA_BYTES):
        self.max_line = max_line
        self.max_data = max_data
        self._buf = bytearray()
        self._broken = False

    def feed(self, data: bytes) -> None:
        """Append freshly received bytes."""
        if not self._broken:
            self._buf += data

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def drain(self) -> Tuple[List[str], Optional[FrameError]]:
        """All complete frames buffered so far, plus the desync error
        that stopped framing (or ``None``).  After an error the
        framer is broken: further ``feed``/``drain`` calls are no-ops
        (the server closes the connection)."""
        frames: List[str] = []
        if self._broken:
            return frames, None
        while True:
            try:
                frame = self._next_frame()
            except FrameError as error:
                self._broken = True
                self._buf.clear()
                return frames, error
            if frame is None:
                return frames, None
            frames.append(frame)

    # -- internals ---------------------------------------------------------------

    def _next_frame(self) -> Optional[str]:
        buf = self._buf
        idx = buf.find(CRLF)
        if idx < 0:
            if len(buf) > self.max_line:
                raise FrameError(
                    f"header line exceeds {self.max_line} bytes "
                    f"without a terminator")
            return None
        if idx > self.max_line:
            raise FrameError(
                f"header line of {idx} bytes exceeds the "
                f"{self.max_line}-byte limit")
        header = bytes(buf[:idx]).decode("latin-1")
        parts = header.split()
        if parts and parts[0].lower() == "set" and len(parts) == 5:
            return self._set_frame(idx, parts[4])
        # Single-line frame: get/delete, or recoverable garbage the
        # protocol layer will answer ERROR to.
        frame = bytes(buf[:idx + 2]).decode("latin-1")
        del buf[:idx + 2]
        return frame

    def _set_frame(self, idx: int, nbytes: str) -> Optional[str]:
        """A ``set`` header: wait for (and validate) its counted data
        block before yielding the combined frame."""
        try:
            size = int(nbytes)
        except ValueError:
            raise FrameError(
                f"set byte count is not a number: {nbytes!r}")
        if size < 0:
            raise FrameError(f"set byte count is negative: {size}")
        if size > self.max_data:
            raise FrameError(
                f"set data block of {size} bytes exceeds the "
                f"{self.max_data}-byte limit")
        buf = self._buf
        total = idx + 2 + size + 2
        if len(buf) < total:
            return None
        if bytes(buf[total - 2:total]) != CRLF:
            raise FrameError("set data block is not CRLF-terminated")
        frame = bytes(buf[:total]).decode("latin-1")
        del buf[:total]
        return frame


class ResponseFramer:
    """Accumulates a *response* byte stream; produces complete
    response strings.

    The shard router is a protocol client towards its workers: it
    pipelines many requests down one connection and must split the
    returning stream back into one response per request.  Almost
    every response is a single line (``STORED``, ``END``,
    ``DELETED``, ...); a ``get`` hit is the three-part
    ``VALUE <key> <flags> <bytes>`` header, the counted data block,
    and the ``END`` trailer line.

    Responses come from a *shard*, not from a client, so any
    malformation here — an uncountable ``VALUE`` header, a data
    block without its CRLF, a missing ``END`` trailer — is not
    recoverable garbage but a shard that stopped speaking the
    protocol.  The framer raises :class:`FrameError` and the router
    converts it into the typed
    :class:`~repro.errors.IagoFault` (a lying shard), never a
    silently-misparsed reply.
    """

    def __init__(self, max_line: int = 8192,
                 max_data: int = protocol.MAX_DATA_BYTES):
        self.max_line = max_line
        self.max_data = max_data
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def drain(self) -> List[str]:
        """All complete responses buffered so far.  Raises
        :class:`FrameError` on a desynchronized reply stream."""
        responses: List[str] = []
        while True:
            response = self._next_response()
            if response is None:
                return responses
            responses.append(response)

    # -- internals ---------------------------------------------------------------

    def _next_response(self) -> Optional[str]:
        buf = self._buf
        idx = buf.find(CRLF)
        if idx < 0:
            if len(buf) > self.max_line:
                raise FrameError(
                    f"response line exceeds {self.max_line} bytes "
                    f"without a terminator")
            return None
        header = bytes(buf[:idx]).decode("latin-1")
        if not header.startswith("VALUE "):
            response = bytes(buf[:idx + 2]).decode("latin-1")
            del buf[:idx + 2]
            return response
        fields = header.split()
        if len(fields) != 4:
            raise FrameError(f"malformed VALUE header {header!r}")
        try:
            size = int(fields[3])
        except ValueError:
            raise FrameError(
                f"VALUE byte count is not a number: {fields[3]!r}")
        if size < 0:
            raise FrameError(f"VALUE byte count is negative: {size}")
        if size > self.max_data:
            raise FrameError(
                f"VALUE data block of {size} bytes exceeds the "
                f"{self.max_data}-byte limit")
        # VALUE header CRLF + data CRLF + "END" CRLF
        total = idx + 2 + size + 2 + 3 + 2
        if len(buf) < total:
            return None
        data_end = idx + 2 + size
        if bytes(buf[data_end:data_end + 2]) != CRLF:
            raise FrameError("VALUE data block is not CRLF-terminated")
        if bytes(buf[data_end + 2:total]) != b"END" + CRLF:
            raise FrameError("VALUE response is missing its END "
                             "trailer")
        response = bytes(buf[:total]).decode("latin-1")
        del buf[:total]
        return response
