"""Incremental request framing for the socket server.

TCP delivers a byte stream; the memcached text protocol frames it
into requests (one header line, plus a counted data block for
``set``).  The :class:`RequestFramer` accumulates whatever the socket
delivered and yields *complete* raw request texts, holding partial
requests until the rest arrives.

Malformation splits into two classes, because the server's recovery
differs:

* **Recoverable** garbage that still frames as a line — an unknown
  command, wrong arity, a bad key — is yielded as a normal frame;
  ``MiniCache.handle`` answers ``ERROR`` and the connection lives on
  (exactly what memcached does).
* **Desynchronizing** garbage — a header line longer than any legal
  request, a ``set`` whose byte count is not a number, out of range,
  or whose data block is not CRLF-terminated — means the framer can
  no longer tell where the next request starts.  That raises
  :class:`FrameError`; the server answers ``ERROR`` once and closes
  the connection, since anything further would be misparsed.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.apps.minicache import protocol

CRLF = b"\r\n"


class FrameError(protocol.ProtocolError):
    """The byte stream desynchronized; the connection must close."""


class RequestFramer:
    """Accumulates bytes; produces complete raw request strings.

    Parameters
    ----------
    max_line:
        Longest permitted header line (bytes, excluding CRLF).  Also
        bounds how much garbage a client can buffer before being cut
        off.
    max_data:
        Largest permitted ``set`` data block (bytes).
    """

    def __init__(self, max_line: int = 8192,
                 max_data: int = protocol.MAX_DATA_BYTES):
        self.max_line = max_line
        self.max_data = max_data
        self._buf = bytearray()
        self._broken = False

    def feed(self, data: bytes) -> None:
        """Append freshly received bytes."""
        if not self._broken:
            self._buf += data

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)

    def drain(self) -> Tuple[List[str], Optional[FrameError]]:
        """All complete frames buffered so far, plus the desync error
        that stopped framing (or ``None``).  After an error the
        framer is broken: further ``feed``/``drain`` calls are no-ops
        (the server closes the connection)."""
        frames: List[str] = []
        if self._broken:
            return frames, None
        while True:
            try:
                frame = self._next_frame()
            except FrameError as error:
                self._broken = True
                self._buf.clear()
                return frames, error
            if frame is None:
                return frames, None
            frames.append(frame)

    # -- internals ---------------------------------------------------------------

    def _next_frame(self) -> Optional[str]:
        buf = self._buf
        idx = buf.find(CRLF)
        if idx < 0:
            if len(buf) > self.max_line:
                raise FrameError(
                    f"header line exceeds {self.max_line} bytes "
                    f"without a terminator")
            return None
        if idx > self.max_line:
            raise FrameError(
                f"header line of {idx} bytes exceeds the "
                f"{self.max_line}-byte limit")
        header = bytes(buf[:idx]).decode("latin-1")
        parts = header.split()
        if parts and parts[0].lower() == "set" and len(parts) == 5:
            return self._set_frame(idx, parts[4])
        # Single-line frame: get/delete, or recoverable garbage the
        # protocol layer will answer ERROR to.
        frame = bytes(buf[:idx + 2]).decode("latin-1")
        del buf[:idx + 2]
        return frame

    def _set_frame(self, idx: int, nbytes: str) -> Optional[str]:
        """A ``set`` header: wait for (and validate) its counted data
        block before yielding the combined frame."""
        try:
            size = int(nbytes)
        except ValueError:
            raise FrameError(
                f"set byte count is not a number: {nbytes!r}")
        if size < 0:
            raise FrameError(f"set byte count is negative: {size}")
        if size > self.max_data:
            raise FrameError(
                f"set data block of {size} bytes exceeds the "
                f"{self.max_data}-byte limit")
        buf = self._buf
        total = idx + 2 + size + 2
        if len(buf) < total:
            return None
        if bytes(buf[total - 2:total]) != CRLF:
            raise FrameError("set data block is not CRLF-terminated")
        frame = bytes(buf[:total]).decode("latin-1")
        del buf[:total]
        return frame
