"""repro.serve — the networked serving layer (paper §9.2-§9.3).

The evaluation measures partitioned memcached end-to-end: real
clients, real sockets, YCSB traffic.  This package is that missing
transport: a selectors-based TCP server hosting the compiled
partitioned KV application behind the minicache text protocol
(:mod:`repro.serve.server`), the secure-engine bridge that batches
pending requests into single interpreter drives
(:mod:`repro.serve.engine`), incremental request framing with
malformed-input rejection (:mod:`repro.serve.framing`), and a
multi-threaded YCSB load generator reporting throughput and latency
percentiles (:mod:`repro.serve.loadgen`).
"""

from repro.serve.engine import SecureKVEngine
from repro.serve.framing import FrameError, RequestFramer
from repro.serve.loadgen import LoadClient, run_load
from repro.serve.server import PrivagicServer, ServeConfig, ServerThread

__all__ = [
    "FrameError",
    "LoadClient",
    "PrivagicServer",
    "RequestFramer",
    "SecureKVEngine",
    "ServeConfig",
    "ServerThread",
    "run_load",
]
