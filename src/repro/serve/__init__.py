"""repro.serve — the networked serving layer (paper §9.2-§9.3).

The evaluation measures partitioned memcached end-to-end: real
clients, real sockets, YCSB traffic.  This package is that missing
transport: a selectors-based TCP server hosting the compiled
partitioned KV application behind the minicache text protocol
(:mod:`repro.serve.server`), the secure-engine bridge that batches
pending requests into single interpreter drives
(:mod:`repro.serve.engine`), incremental request/response framing
with malformed-input rejection (:mod:`repro.serve.framing`), a
multi-threaded YCSB load generator reporting throughput and latency
percentiles (:mod:`repro.serve.loadgen`), and the sharded
multi-process tier — consistent hashing
(:mod:`repro.serve.hashring`), per-shard worker processes
(:mod:`repro.serve.shard_worker`), the front router with cross-shard
integrity checking, exact crash replay and self-healing membership
(:mod:`repro.serve.router`), and the failure-detection primitives
the router composes — bounded-backoff connects, liveness probes,
per-shard circuit breakers (:mod:`repro.serve.health`).
"""

from repro.serve.engine import SecureKVEngine
from repro.serve.framing import FrameError, RequestFramer, ResponseFramer
from repro.serve.hashring import HashRing
from repro.serve.health import (
    CircuitBreaker,
    HealthMonitor,
    connect_with_backoff,
)
from repro.serve.loadgen import LoadClient, run_load
from repro.serve.router import RouterConfig, RouterThread, ShardRouter
from repro.serve.server import PrivagicServer, ServeConfig, ServerThread

__all__ = [
    "CircuitBreaker",
    "FrameError",
    "HashRing",
    "HealthMonitor",
    "LoadClient",
    "PrivagicServer",
    "RequestFramer",
    "ResponseFramer",
    "RouterConfig",
    "RouterThread",
    "SecureKVEngine",
    "ServeConfig",
    "ServerThread",
    "ShardRouter",
    "connect_with_backoff",
    "run_load",
]
