"""The selectors-based TCP server hosting the partitioned KV app.

One thread, one event loop (the paper's memcached is event-based,
§9.2): a non-blocking listener plus per-connection sessions, each
with its own :class:`~repro.serve.framing.RequestFramer`.  Complete
requests are *not* executed inline — they enter a bounded pending
queue, and each scheduling round pops up to ``batch`` of them into a
single :meth:`~repro.serve.engine.SecureKVEngine.execute` drive.
That is the batching the evaluation measures: enclave-transition and
scheduler fixed costs are paid per *round*, so many concurrent
clients share them (``serve.batch_size`` / ``serve.queue_depth``
histograms show the effect; ``bench_serve`` quantifies it).

Admission control: when the pending queue is full the request is
answered ``SERVER_BUSY`` immediately and counted in ``serve.shed`` —
the queue bounds memory and tail latency instead of accepting
unbounded work.

Shutdown is drain-and-stop: :meth:`PrivagicServer.request_stop`
(signal-safe; the CLI wires SIGINT to it) stops accepting, the
remaining queue is executed, reply buffers are flushed, and only
then do the sockets close.  A :class:`~repro.errors.RuntimeFault`
raised by the engine mid-drive (chaos injection, integrity
violation) aborts instead: sockets close immediately and the typed
fault propagates to the caller — over TCP, a chaos run still ends
with the PR-4 exit codes.

Untrusted-store integrity: the cache holding the actual bytes is
untrusted (:class:`~repro.apps.minicache.server.MiniCache`); the
enclave index keeps a digest per key.  Every reply is cross-checked
and a mismatch raises :class:`~repro.errors.IagoFault` — the server
detects a lying store rather than serving its answer.
"""

from __future__ import annotations

import selectors
import socket
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from repro.apps.minicache import protocol
from repro.apps.minicache.server import MiniCache
from repro.errors import IagoFault, RuntimeFault
from repro.obs.metrics import MetricsRegistry
from repro.serve.engine import SecureKVEngine
from repro.serve.framing import RequestFramer


@dataclass
class ServeConfig:
    """Tunables of one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                  # 0 = ephemeral, see bind()
    batch: int = 16                # max requests per engine drive
    batch_window: float = 0.002    # adaptive coalescing cap, seconds
    queue_depth: int = 128         # pending-queue bound (admission)
    capacity_bytes: int = 64 * 1024 * 1024   # untrusted cache LRU
    engine: Optional[str] = None   # interpreter engine name
    max_steps: int = 50_000_000    # per-drive scheduler budget
    watchdog_steps: Optional[int] = None
    max_requests: Optional[int] = None  # accept N requests, then drain
    idle_poll: float = 0.05        # selector timeout when queue empty
    drain_timeout: float = 5.0     # reply-flush deadline on shutdown
    #: Self-terminate after having served at least one connection and
    #: then sitting connection-free for this long.  Shard workers run
    #: with this armed so a router death cannot strand worker
    #: processes: an orphaned worker notices its only client is gone
    #: and drains instead of lingering forever.  ``None`` disables it.
    orphan_timeout: Optional[float] = None


class _Connection:
    """One client session: framer in, reply buffer out."""

    __slots__ = ("sock", "addr", "conn_id", "framer", "out",
                 "closed", "close_after_flush", "requests")

    def __init__(self, sock: socket.socket, addr, conn_id: int,
                 framer: RequestFramer):
        self.sock = sock
        self.addr = addr
        self.conn_id = conn_id
        self.framer = framer
        self.out = bytearray()
        self.closed = False
        self.close_after_flush = False
        self.requests = 0

    @property
    def track(self) -> str:
        return f"conn.{self.conn_id}"


#: A queued request: (connection, raw text, parse result or None,
#: enqueue timestamp in tracer microseconds).
_Pending = Tuple[_Connection, str, Optional[protocol.Request], float]


class PrivagicServer:
    """The serving loop (see module docstring).

    Parameters
    ----------
    config:
        A :class:`ServeConfig`; defaults throughout.
    registry:
        Publish ``serve.*`` metrics into an existing
        :class:`~repro.obs.metrics.MetricsRegistry` (the CLI passes
        the Observability registry so everything lands in one
        ``--stats`` dump); a private one is created otherwise.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` for the
        per-request accept→enqueue→execute→reply span stream.
    engine:
        An existing :class:`SecureKVEngine` (tests, benchmarks with a
        shared pre-compiled program); built from the config if
        omitted.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer=None,
                 engine: Optional[SecureKVEngine] = None):
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer
        self.engine = engine if engine is not None else SecureKVEngine(
            engine=self.config.engine,
            max_steps=self.config.max_steps,
            watchdog_steps=self.config.watchdog_steps)
        self.cache = MiniCache(capacity_bytes=self.config.capacity_bytes)
        self._evicted: List[str] = []
        self.cache.on_evict = self._evicted.append
        self.pending: Deque[_Pending] = deque()
        self.selector: Optional[selectors.BaseSelector] = None
        self.listener: Optional[socket.socket] = None
        self.connections: Dict[int, _Connection] = {}
        self.port: Optional[int] = None
        self.drained = False
        self.fault: Optional[BaseException] = None
        self._stop = False
        self._accepted = 0          # requests admitted to the queue
        self._next_conn_id = 0
        self._oldest_pending_ts = 0.0   # batch-window anchor
        self._orphan_since: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------------

    def bind(self) -> int:
        """Create and register the listening socket; returns the
        bound port (meaningful with the ephemeral ``port=0``)."""
        if self.listener is not None:
            return self.port
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(128)
        sock.setblocking(False)
        self.selector = selectors.DefaultSelector()
        self.selector.register(sock, selectors.EVENT_READ, None)
        self.listener = sock
        self.port = sock.getsockname()[1]
        return self.port

    def request_stop(self) -> None:
        """Ask the loop to drain and shut down.  Only sets a flag, so
        it is safe from signal handlers and other threads."""
        self._stop = True

    def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (drains cleanly) or a
        :class:`RuntimeFault` (aborts, fault re-raised)."""
        if self.listener is None:
            self.bind()
        try:
            while not self._stop:
                timeout = 0.0 if self.pending else \
                    self.config.idle_poll
                before = self._accepted
                for key, mask in self.selector.select(timeout):
                    if key.data is None:
                        self._accept_ready()
                    else:
                        conn = key.data
                        if mask & selectors.EVENT_READ:
                            self._on_readable(conn)
                        if not conn.closed and \
                                mask & selectors.EVENT_WRITE:
                            self._flush(conn)
                if self.pending and self._round_ready(before):
                    self._drive_round()
                self._check_orphaned()
            self._drain()
        except RuntimeFault as fault:
            self.fault = fault
            self._abort()
            raise
        finally:
            self._close_listener()
            if self.selector is not None:
                self.selector.close()
                self.selector = None

    def _check_orphaned(self) -> None:
        """Arm/advance the orphan clock (see
        :attr:`ServeConfig.orphan_timeout`)."""
        if self.config.orphan_timeout is None:
            return
        if self.connections or not self._next_conn_id:
            self._orphan_since = None
            return
        now = time.monotonic()
        if self._orphan_since is None:
            self._orphan_since = now
        elif now - self._orphan_since >= self.config.orphan_timeout:
            self.registry.inc("serve.orphan_exits")
            self._stop = True

    # -- accept / read -----------------------------------------------------------

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, addr = self.listener.accept()
            except (BlockingIOError, InterruptedError):
                return
            except OSError:
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP,
                                socket.TCP_NODELAY, 1)
            except OSError:
                pass
            self._next_conn_id += 1
            conn = _Connection(sock, addr, self._next_conn_id,
                               RequestFramer())
            self.connections[sock.fileno()] = conn
            self.selector.register(sock, selectors.EVENT_READ, conn)
            self.registry.inc("serve.connections")
            self.registry.gauge("serve.open_connections").inc()
            if self.tracer is not None:
                self.tracer.serve_mark("accept", conn.track,
                                       {"peer": f"{addr[0]}:{addr[1]}"})

    def _on_readable(self, conn: _Connection) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(conn)
            return
        if not data:
            self._close(conn)
            return
        self.registry.inc("serve.bytes_in", len(data))
        conn.framer.feed(data)
        frames, error = conn.framer.drain()
        for raw in frames:
            self._enqueue(conn, raw)
        if error is not None:
            # Desync: one ERROR, then cut the connection off.
            self.registry.inc("serve.bad_frames")
            conn.out += protocol.ERROR.encode("latin-1")
            conn.close_after_flush = True
            self._flush(conn)

    def _enqueue(self, conn: _Connection, raw: str) -> None:
        conn.requests += 1
        full = len(self.pending) >= self.config.queue_depth
        if full or self._stop:
            # Admission control: answer immediately, never queue.
            self.registry.inc("serve.shed")
            conn.out += protocol.SERVER_BUSY.encode("latin-1")
            if self.tracer is not None:
                self.tracer.serve_mark(
                    "shed", conn.track,
                    {"reason": "queue_full" if full else "draining"})
            self._flush(conn)
            return
        try:
            request: Optional[protocol.Request] = \
                protocol.parse_request(raw)
        except protocol.ProtocolError:
            request = None
        ts = self.tracer.now_us() if self.tracer is not None else 0.0
        if not self.pending:
            self._oldest_pending_ts = time.monotonic()
        self.pending.append((conn, raw, request, ts))
        self._accepted += 1
        self.registry.inc("serve.requests")
        if self.tracer is not None:
            self.tracer.serve_mark("enqueue", conn.track,
                                   {"depth": len(self.pending)})
        limit = self.config.max_requests
        if limit is not None and self._accepted >= limit:
            self._stop = True

    # -- the batched scheduling round --------------------------------------------

    def _round_ready(self, accepted_before: int) -> bool:
        """The adaptive batch window: drive now, or wait one more
        poll for co-arriving requests?

        Drive immediately when the batch is already full, when every
        open connection already has a request pending (closed-loop
        clients cannot send more until answered, so nothing further
        is coming — in particular a lone client never waits on a
        window), when the last poll produced *no* new requests, or
        when the oldest pending request has waited ``batch_window``
        seconds (bounded added latency even under a continuous
        trickle).  Only while requests are still streaming in does
        the loop take another zero-timeout poll first, so concurrent
        arrivals coalesce into one interpreter drive instead of
        fragmenting across many — batching can win, never lose.
        """
        if len(self.pending) >= self.config.batch:
            return True
        if len(self.pending) >= len(self.connections):
            return True
        if self._accepted == accepted_before:
            return True
        if time.monotonic() - self._oldest_pending_ts \
                >= self.config.batch_window:
            return True
        self.registry.inc("serve.window_waits")
        return False

    def _drive_round(self) -> None:
        """Pop up to ``batch`` pending requests and serve them with
        one engine drive."""
        batch: List[_Pending] = []
        while self.pending and len(batch) < self.config.batch:
            batch.append(self.pending.popleft())
        self.registry.observe("serve.batch_size", len(batch))
        self.registry.observe("serve.queue_depth",
                              len(self.pending) + len(batch))
        self.registry.inc("serve.drives")
        tracer = self.tracer
        t0 = tracer.now_us() if tracer is not None else 0.0
        steps_before = self.engine.steps
        responses = self._execute(batch)
        if tracer is not None:
            t1 = tracer.now_us()
            tracer.serve_span(
                "execute", "serve", t0, t1 - t0,
                {"batch": len(batch),
                 "steps": self.engine.steps - steps_before})
        touched = []
        for (conn, _raw, _request, t_enq), response in \
                zip(batch, responses):
            if conn.closed:
                continue
            conn.out += response.encode("latin-1")
            self.registry.inc("serve.replies")
            if tracer is not None:
                tracer.serve_span("queued", conn.track, t_enq,
                                  t0 - t_enq)
                tracer.serve_mark("reply", conn.track,
                                  {"bytes": len(response)})
            touched.append(conn)
        for conn in touched:
            if not conn.closed:
                self._flush(conn)

    def _execute(self, batch: List[_Pending]) -> List[str]:
        """Serve one batch: untrusted cache first (it owns the
        bytes), then a single secure drive over the whole batch, then
        the per-reply integrity cross-check."""
        responses: List[str] = []
        engine_ops: List[tuple] = []
        op_counts: List[int] = []
        for conn, raw, request, _ts in batch:
            self._evicted.clear()
            response = self.cache.handle(raw)
            responses.append(response)
            if request is None:
                op_counts.append(0)
                continue
            before = len(engine_ops)
            if request.command == "set":
                engine_ops.append(("set", request.key, request.data))
                # LRU victims leave the untrusted store; the enclave
                # index must forget them in the same round, in order.
                for victim in self._evicted:
                    engine_ops.append(("delete", victim))
            elif request.command == "get":
                engine_ops.append(("get", request.key))
            elif request.command == "delete":
                engine_ops.append(("delete", request.key))
            op_counts.append(len(engine_ops) - before)
        replies = self.engine.execute(engine_ops)
        index = 0
        for (conn, raw, request, _ts), response, count in \
                zip(batch, responses, op_counts):
            if count:
                self._verify(request, response,
                             replies[index:index + count])
                index += count
        return responses

    def _verify(self, request: protocol.Request, response: str,
                replies: List[int]) -> None:
        """Cross-check the untrusted store's answer against the
        enclave index (see module docstring)."""
        first = replies[0]
        if request.command == "get":
            value = protocol.parse_value_response(response)
            if value is None:
                if first != 0:
                    raise IagoFault(
                        f"untrusted store reports a miss for key "
                        f"{request.key!r} but the enclave index "
                        f"holds digest {first:#x}")
            elif SecureKVEngine.digest(value) != first:
                raise IagoFault(
                    f"untrusted store returned a value for key "
                    f"{request.key!r} that does not match the "
                    f"enclave digest")
        elif request.command == "set":
            bad = [r for r in replies if r != 1]
            if response != protocol.STORED or bad:
                raise IagoFault(
                    f"set of key {request.key!r} did not commit "
                    f"consistently (store: {response.strip()!r}, "
                    f"enclave replies: {replies})")
        elif request.command == "delete":
            store_found = response == protocol.DELETED
            if store_found != (first == 1):
                raise IagoFault(
                    f"delete of key {request.key!r} disagrees: "
                    f"store found={store_found}, enclave "
                    f"found={first == 1}")

    # -- writes / teardown -------------------------------------------------------

    def _flush(self, conn: _Connection) -> None:
        """Write as much of the reply buffer as the socket takes;
        keep WRITE interest while any remains."""
        while conn.out:
            try:
                sent = conn.sock.send(conn.out)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close(conn)
                return
            if sent <= 0:
                break
            self.registry.inc("serve.bytes_out", sent)
            del conn.out[:sent]
        if conn.out:
            events = selectors.EVENT_READ | selectors.EVENT_WRITE
        else:
            events = selectors.EVENT_READ
            if conn.close_after_flush:
                self._close(conn)
                return
        try:
            self.selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass

    def _close(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            self.selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        self.connections.pop(conn.sock.fileno(), None)
        try:
            conn.sock.close()
        except OSError:
            pass
        self.registry.gauge("serve.open_connections").dec()
        if self.tracer is not None:
            self.tracer.serve_mark("close", conn.track,
                                   {"requests": conn.requests})

    def _close_listener(self) -> None:
        if self.listener is None:
            return
        try:
            if self.selector is not None:
                self.selector.unregister(self.listener)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self.listener.close()
        except OSError:
            pass
        self.listener = None

    def _drain(self) -> None:
        """Graceful shutdown: serve the remaining queue, flush every
        reply buffer, then close."""
        self._close_listener()
        while self.pending:
            self._drive_round()
        deadline = time.monotonic() + self.config.drain_timeout
        while time.monotonic() < deadline:
            unflushed = [conn for conn in
                         list(self.connections.values())
                         if conn.out and not conn.closed]
            if not unflushed:
                break
            for conn in unflushed:
                self._flush(conn)
            time.sleep(0.005)
        self.drained = not self.pending and not any(
            conn.out for conn in self.connections.values())
        for conn in list(self.connections.values()):
            self._close(conn)

    def _abort(self) -> None:
        """Fault path: no drain, close everything now."""
        self._close_listener()
        self.pending.clear()
        for conn in list(self.connections.values()):
            self._close(conn)


class ServerThread:
    """Run a :class:`PrivagicServer` on a daemon thread — the shape
    tests, the benchmark and the check.sh smoke share.

    A fault raised by the serving loop is captured in :attr:`error`
    (the typed :class:`RuntimeFault` a chaos run ends with).
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 **kwargs):
        self.server = PrivagicServer(config, **kwargs)
        self.error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        """Bind, start serving in the background; returns the port."""
        port = self.server.bind()

        def run():
            try:
                self.server.serve_forever()
            except BaseException as error:   # captured for the owner
                self.error = error

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-serve")
        self._thread.start()
        return port

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and join; raises if the loop did not finish."""
        self.server.request_stop()
        self.join(timeout)

    def join(self, timeout: float = 10.0) -> None:
        if self._thread is None:
            return
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("serve loop did not stop in time")

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread is not None and self._thread.is_alive():
            self.stop()
