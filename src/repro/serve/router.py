"""The shard router: one front process, N shard-worker processes.

``repro serve --shards N`` turns the single-loop server of
:mod:`repro.serve.server` into a two-tier system:

* **Shard workers** (:mod:`repro.serve.shard_worker`): N child
  processes, each hosting a complete partitioned-KV stack — its own
  compiled program, enclave runtime, untrusted store and batching
  loop — behind a loopback port.  Each worker owns a private
  interpreter and a private (smaller) enclave index, so shards run
  in parallel on multicore hosts *and* every operation walks a chain
  that is ~N times shorter than the single-process index would be.

* **The router** (this module): accepts client connections with the
  ordinary request framing, consistent-hashes every key over the
  workers (:class:`~repro.serve.hashring.HashRing`), pipelines the
  raw frames down per-shard connections, and re-merges the replies.

**Ordering.**  Replies must reach each client in request order even
though different shards answer at different speeds.  Every admitted
request becomes a *slot* appended to its connection's FIFO; a shard
connection is itself a FIFO (one worker loop, replies in request
order), so the router pairs each incoming reply with the oldest
outstanding slot of that shard, and a connection flushes exactly the
ready *prefix* of its slot queue — a fast shard's replies wait in
their slots until the slow shard's earlier replies land.

**Integrity.**  Each worker already cross-checks its untrusted store
against its enclave index (a lying store dies as an
:class:`~repro.errors.IagoFault` inside the shard).  The router adds
a second, *cross-process* check: a digest ledger of every key it has
routed, recorded at forward time.  A shard that answers a ``get``
with bytes whose digest disagrees with the ledger, confirms a ``set``
with anything but ``STORED``, or reports a ``delete`` outcome that
contradicts the ledger raises :class:`IagoFault` at the router — a
whole lying shard *process* is detected, extending the PR-4 Iago
machinery across the process boundary.  (With ``strict_miss``, the
default, an unexpected miss is also a fault; disable it only when
shard caches are sized to evict, where a miss is legitimate.)

**Failure detection** (:mod:`repro.serve.health`).  A dead shard
announces itself as a connection error — but a wedged worker, a cut
link or a lost reply does not.  The router therefore runs a health
sweep every round: idle shards are probed with an ordinary ``get``
on a reserved ``__probe__`` key (flowing through the same slot FIFO
as client traffic, so a reply proves the whole pipeline), busy
shards are bounded by the age of their oldest in-flight request,
and every connect goes through bounded exponential-backoff retries
whose give-up is a typed :class:`~repro.errors.NetworkFault`.  A
per-shard circuit breaker caps *consecutive* recoveries so a
flapping shard cannot burn restarts forever.

**Recovery.**  On a confirmed death the router first distinguishes a
dead *link* from a dead *process*: if the worker process (or
external endpoint) is still there, it reconnects and rebuilds the
connection-level state by *exact replay* — the compacted log of
acknowledged mutations (final ``set`` frame per live key, in
first-insertion order) is replayed and every reply checked, then
the in-flight requests are re-forwarded in their original order.
Replay-then-reforward is idempotent, so a worker that had already
applied un-acked operations before the link died converges to the
same state.  A dead process is handled per ``on_death``:

* ``restart`` (default) — spawn a fresh worker under the same ring
  name, replay, re-forward; clients observe only added latency.
* ``rebalance`` — remove the shard from the hash ring and migrate
  its acked log to the new ring owners through their normal FIFOs
  (service never stalls); ``request_readd`` later runs the inverse
  migration, moving only the ~1/N arc back.
* ``degrade`` — remove the shard but *retain* its ledger-consistent
  acked state; requests for stranded keys are answered with a typed
  ``SHARD_UNAVAILABLE`` response instead of stalling the router,
  while the surviving keyspace serves normally.  ``request_readd``
  restores the stranded keys.
* ``fault`` — the death is a typed
  :class:`~repro.errors.EnclaveCrash` (the old ``recover=False``).

Either way: never a silently-wrong answer.
"""

from __future__ import annotations

import os
import selectors
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.apps.minicache import protocol
from repro.errors import (
    EnclaveCrash,
    IagoFault,
    NetworkFault,
    RuntimeFault,
)
from repro.faults.netchaos import NetChaos
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.serve.engine import SecureKVEngine
from repro.serve.framing import (
    FrameError,
    RequestFramer,
    ResponseFramer,
)
from repro.serve.hashring import HashRing
from repro.serve.health import (
    CircuitBreaker,
    HealthMonitor,
    connect_with_backoff,
    probe_key,
)
from repro.serve.shard_worker import READY_PREFIX, worker_command

#: Valid ``RouterConfig.on_death`` policies.
DEATH_POLICIES = ("restart", "rebalance", "degrade", "fault")


@dataclass
class RouterConfig:
    """Tunables of one router instance (front + workers)."""

    host: str = "127.0.0.1"
    port: int = 0                  # 0 = ephemeral
    shards: int = 2                # worker processes
    batch: int = 16                # per-worker drive batch
    batch_window: Optional[float] = None   # worker coalescing cap
    queue_depth: int = 128         # per-shard in-flight admission cap
    capacity_bytes: int = 64 * 1024 * 1024  # per-worker cache
    engine: Optional[str] = None
    max_steps: int = 50_000_000
    watchdog_steps: Optional[int] = None
    max_requests: Optional[int] = None  # route N requests, then drain
    idle_poll: float = 0.05
    drain_timeout: float = 10.0
    spawn_timeout: float = 60.0    # worker ready-line deadline
    connect_timeout: float = 10.0  # per-attempt shard connect cap
    connect_retries: int = 3       # extra connect attempts
    backoff_base: float = 0.05     # first retry pause (doubles)
    backoff_cap: float = 1.0       # retry pause ceiling
    replay_timeout: float = 30.0   # per-recv cap during replay
    #: Probe an idle shard after this many reply-free seconds
    #: (None disables probing).
    probe_interval: Optional[float] = None
    probe_timeout: float = 5.0     # unanswered probe => death
    #: A busy shard whose oldest in-flight request is older than
    #: this is dead (None disables the check).
    forward_timeout: Optional[float] = None
    replicas: int = 64             # ring points per shard
    recover: bool = True           # legacy: False forces on_death="fault"
    #: Confirmed-death policy: restart | rebalance | degrade | fault.
    on_death: str = "restart"
    max_restarts: int = 3          # consecutive-recovery breaker budget
    strict_miss: bool = True       # unexpected miss => IagoFault
    #: shard index -> simulated-AEX op count (chaos, see
    #: repro.serve.shard_worker --crash-after).
    crash_after: Dict[int, int] = field(default_factory=dict)
    inject: Optional[str] = None   # per-worker fault schedule
    chaos_seed: Optional[int] = None
    #: Socket-chaos schedule (repro.faults.netchaos grammar) applied
    #: to the router's shard links and accepted client streams.
    net_inject: Optional[str] = None
    net_chaos_seed: Optional[int] = None
    #: Worker-side backstop: a spawned worker exits on its own after
    #: this many connection-free seconds (None disables), so a dead
    #: router cannot leave zombie shard processes behind.
    orphan_timeout: Optional[float] = None
    #: Pre-started shard endpoints (tests, in-process chaos sweeps):
    #: connect instead of spawning.  External shards cannot be
    #: respawned; a dead link is reconnected only under
    #: ``external_reconnect`` (or a rebalance/degrade policy) —
    #: otherwise death stays an EnclaveCrash.
    external_shards: Optional[Sequence[Tuple[str, int]]] = None
    external_reconnect: bool = False


class _Slot:
    """One admitted request awaiting its in-order reply.

    ``conn`` is ``None`` for router-internal slots — liveness probes
    (``command="probe"``) and rebalance traffic (``"migrate"`` /
    ``"evict"``) — which are verified like client slots but produce
    no client reply.  ``sent_at`` is the forward time the health
    sweep ages against.
    """

    __slots__ = ("conn", "command", "key", "expect", "frame",
                 "response", "sent_at")

    def __init__(self, conn: Optional["_ClientConn"],
                 command: Optional[str],
                 key: Optional[str], expect=None, frame: str = ""):
        self.conn = conn
        self.command = command
        self.key = key
        self.expect = expect
        self.frame = frame
        self.response: Optional[str] = None
        self.sent_at = 0.0


class _ClientConn:
    """One client session: framer in, ordered slot FIFO out."""

    __slots__ = ("sock", "addr", "conn_id", "framer", "slots", "out",
                 "closed", "close_after_flush", "requests")

    def __init__(self, sock: socket.socket, addr, conn_id: int):
        self.sock = sock
        self.addr = addr
        self.conn_id = conn_id
        self.framer = RequestFramer()
        self.slots: Deque[_Slot] = deque()
        self.out = bytearray()
        self.closed = False
        self.close_after_flush = False
        self.requests = 0

    @property
    def track(self) -> str:
        return f"conn.{self.conn_id}"


class _Shard:
    """Router-side state of one worker: process handle, pipelined
    connection, reply FIFO, and the acknowledged-mutation replay
    log."""

    __slots__ = ("index", "name", "proc", "port", "host", "sock",
                 "out", "rframer", "inflight", "acked_log",
                 "restarts", "forwarded", "breaker")

    def __init__(self, index: int, breaker_budget: int = 3):
        self.index = index
        self.name = f"shard{index}"
        self.proc: Optional[subprocess.Popen] = None
        self.port: Optional[int] = None
        self.host = "127.0.0.1"
        self.sock: Optional[socket.socket] = None
        self.out = bytearray()
        self.rframer = ResponseFramer()
        self.inflight: Deque[_Slot] = deque()
        #: key -> the latest *acknowledged* set frame; replaying
        #: these (in order) reproduces the shard's acked state
        #: exactly.
        self.acked_log: Dict[str, str] = {}
        self.restarts = 0
        self.forwarded = 0
        self.breaker = CircuitBreaker(breaker_budget)

    @property
    def track(self) -> str:
        return f"shard.{self.index}"


class ShardRouter:
    """The front router loop (see module docstring).

    Lifecycle mirrors :class:`~repro.serve.server.PrivagicServer`:
    ``bind()`` then ``serve_forever()``; ``request_stop()`` drains; a
    :class:`RuntimeFault` (lying shard, unrecovered crash) aborts
    with the typed fault re-raised.
    """

    def __init__(self, config: Optional[RouterConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer=None):
        self.config = config or RouterConfig()
        if self.config.shards < 1:
            raise ValueError("a sharded server needs >= 1 shard")
        if self.config.on_death not in DEATH_POLICIES:
            raise ValueError(
                f"unknown on_death policy "
                f"{self.config.on_death!r} (expected one of "
                f"{', '.join(DEATH_POLICIES)})")
        #: The effective death policy; the legacy ``recover=False``
        #: switch maps onto "fault".
        self.on_death = self.config.on_death \
            if self.config.recover else "fault"
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer
        self.shards: List[_Shard] = [
            _Shard(i, breaker_budget=self.config.max_restarts)
            for i in range(self.config.shards)]
        self._by_name = {shard.name: shard for shard in self.shards}
        self.ring = HashRing([shard.name for shard in self.shards],
                             replicas=self.config.replicas)
        self.monitor = HealthMonitor(
            probe_interval=self.config.probe_interval,
            probe_timeout=self.config.probe_timeout,
            forward_timeout=self.config.forward_timeout)
        self.netchaos: Optional[NetChaos] = None
        if self.config.net_inject:
            self.netchaos = NetChaos(
                FaultPlan.parse(self.config.net_inject,
                                seed=self.config.net_chaos_seed or 0),
                seed=self.config.net_chaos_seed or 0)
        #: key -> value digest, recorded at forward time — the
        #: cross-shard integrity ledger.
        self.ledger: Dict[str, int] = {}
        #: Degraded mode: key -> retained acked set frame of a dead,
        #: unmigrated shard.  Invariant: every lost key is still in
        #: the ledger with the retained frame's digest.
        self.lost: Dict[str, str] = {}
        self._readds: Deque[int] = deque()
        self.deaths = 0
        self.reconnects = 0
        self.rebalances = 0
        self.selector: Optional[selectors.BaseSelector] = None
        self.listener: Optional[socket.socket] = None
        self.connections: Dict[int, _ClientConn] = {}
        self.port: Optional[int] = None
        self.drained = False
        self.fault: Optional[BaseException] = None
        self._stop = False
        self._routed = 0
        self._next_conn_id = 0
        self._dirty_shards: set = set()
        self._dirty_conns: set = set()
        self._workers_up = False

    # -- lifecycle ---------------------------------------------------------------

    def bind(self) -> int:
        if self.listener is not None:
            return self.port
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((self.config.host, self.config.port))
        sock.listen(256)
        sock.setblocking(False)
        self.selector = selectors.DefaultSelector()
        self.selector.register(sock, selectors.EVENT_READ, None)
        self.listener = sock
        self.port = sock.getsockname()[1]
        return self.port

    def request_stop(self) -> None:
        """Signal-safe: ask the loop to drain and shut down."""
        self._stop = True

    def serve_forever(self) -> None:
        if self.listener is None:
            self.bind()
        try:
            self._start_workers()
            while not self._stop:
                self._round()
            self._drain()
        except RuntimeFault as fault:
            self.fault = fault
            self._abort()
            raise
        finally:
            self._stop_workers()
            self._close_listener()
            if self.selector is not None:
                self.selector.close()
                self.selector = None

    # -- worker management -------------------------------------------------------

    def _start_workers(self) -> None:
        if self._workers_up:
            return
        external = self.config.external_shards
        if external is not None:
            if len(external) != len(self.shards):
                raise ValueError(
                    f"{len(self.shards)} shard(s) configured but "
                    f"{len(external)} external endpoint(s) given")
            for shard, (host, port) in zip(self.shards, external):
                shard.port = port
                shard.host = host
                self._connect_shard(shard)
        else:
            # Overlap the N compile+bind startups, then collect the
            # ready lines in order.
            for shard in self.shards:
                shard.proc = self._spawn(
                    shard,
                    crash_after=self.config.crash_after.get(
                        shard.index, 0))
            for shard in self.shards:
                shard.port = self._await_ready(shard)
                self._connect_shard(shard)
        self._workers_up = True
        self._publish_ring()

    def _spawn(self, shard: _Shard,
               crash_after: int = 0) -> subprocess.Popen:
        argv = worker_command(
            shard.index, batch=self.config.batch,
            # Workers must never shed a routed request (the router's
            # admission cap is the only shedding point), so their
            # queue is strictly deeper than the in-flight cap.
            queue_depth=self.config.queue_depth * 2
            + self.config.batch,
            capacity_bytes=self.config.capacity_bytes,
            engine=self.config.engine,
            max_steps=self.config.max_steps,
            watchdog_steps=self.config.watchdog_steps,
            batch_window=self.config.batch_window,
            crash_after=crash_after,
            inject=self.config.inject,
            chaos_seed=self.config.chaos_seed,
            orphan_timeout=self.config.orphan_timeout)
        env = dict(os.environ)
        package_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = package_root + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        return subprocess.Popen(argv, stdout=subprocess.PIPE,
                                env=env)

    def _await_ready(self, shard: _Shard) -> int:
        """Read the worker's ``SHARD_READY`` line; returns its port."""
        proc = shard.proc
        deadline = time.monotonic() + self.config.spawn_timeout
        fd = proc.stdout.fileno()
        line = bytearray()
        with selectors.DefaultSelector() as sel:
            sel.register(fd, selectors.EVENT_READ)
            while b"\n" not in line:
                if proc.poll() is not None:
                    raise RuntimeFault(
                        f"shard {shard.index} worker exited with "
                        f"code {proc.returncode} before becoming "
                        f"ready")
                if time.monotonic() > deadline:
                    proc.kill()
                    raise RuntimeFault(
                        f"shard {shard.index} worker not ready "
                        f"within {self.config.spawn_timeout}s")
                if sel.select(0.1):
                    chunk = os.read(fd, 4096)
                    if not chunk:
                        continue
                    line += chunk
        text = bytes(line).split(b"\n", 1)[0].decode("latin-1")
        fields = dict(part.split("=", 1)
                      for part in text.split()[1:]) \
            if text.startswith(READY_PREFIX) else {}
        if "port" not in fields:
            raise RuntimeFault(
                f"shard {shard.index} worker announced {text!r}, "
                f"expected a {READY_PREFIX} line")
        return int(fields["port"])

    def _connect_stream(self, shard: _Shard) -> socket.socket:
        """One bounded-retry, chaos-wrapped connect to a shard
        endpoint; gives up as a typed NetworkFault."""
        wrap = None
        if self.netchaos is not None:
            chaos, name = self.netchaos, shard.name
            wrap = lambda s: chaos.wrap(s, name)  # noqa: E731
        sock = connect_with_backoff(
            (shard.host, shard.port),
            timeout=self.config.connect_timeout,
            retries=self.config.connect_retries,
            backoff_base=self.config.backoff_base,
            backoff_cap=self.config.backoff_cap,
            describe=f"shard {shard.index}", wrap=wrap)
        try:
            sock.setsockopt(socket.IPPROTO_TCP,
                            socket.TCP_NODELAY, 1)
        except OSError:
            pass
        return sock

    def _connect_shard(self, shard: _Shard) -> None:
        sock = self._connect_stream(shard)
        sock.setblocking(False)
        shard.sock = sock
        shard.rframer = ResponseFramer()
        self.selector.register(sock, selectors.EVENT_READ, shard)
        self.monitor.attach(shard.name)
        if self.tracer is not None:
            self.tracer.serve_mark(
                "shard-start", shard.track,
                {"port": shard.port,
                 "pid": shard.proc.pid if shard.proc else 0})

    def _publish_ring(self) -> None:
        """Rebalance telemetry: each shard's keyspace share (0 for
        shards currently off the ring)."""
        shares = self.ring.ownership()
        for shard in self.shards:
            self.registry.gauge(
                f"router.ring_share[{shard.index}]").set(
                round(shares.get(shard.name, 0.0), 4))
        if self.tracer is not None:
            self.tracer.serve_mark(
                "ring", "router",
                {shard.name: round(shares.get(shard.name, 0.0), 4)
                 for shard in self.shards})

    def _stop_workers(self) -> None:
        for shard in self.shards:
            if shard.sock is not None:
                try:
                    self.selector.unregister(shard.sock)
                except (KeyError, ValueError, OSError):
                    pass
                try:
                    shard.sock.close()
                except OSError:
                    pass
                shard.sock = None
            proc = shard.proc
            if proc is None:
                continue
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
            shard.proc = None
        self._workers_up = False

    # -- the event round ---------------------------------------------------------

    def _round(self, timeout: Optional[float] = None) -> None:
        self._dirty_shards.clear()
        self._dirty_conns.clear()
        while self._readds:
            self._readd_shard(self.shards[self._readds.popleft()])
        events = self.selector.select(
            self.config.idle_poll if timeout is None else timeout)
        for key, mask in events:
            data = key.data
            if data is None:
                self._accept_ready()
            elif isinstance(data, _Shard):
                if mask & selectors.EVENT_READ:
                    self._on_shard_readable(data)
                if data.sock is not None and \
                        mask & selectors.EVENT_WRITE:
                    self._flush_shard(data)
            else:
                if mask & selectors.EVENT_READ:
                    self._on_client_readable(data)
                if not data.closed and \
                        mask & selectors.EVENT_WRITE:
                    self._flush_conn(data)
        if self.monitor.enabled:
            self._health_sweep()
        # One coalesced write per shard/connection per round: the
        # frames routed this round reach each worker as a single
        # segment, which is what its batching loop turns into one
        # interpreter drive.
        for shard in list(self._dirty_shards):
            self._flush_shard(shard)
        for conn in list(self._dirty_conns):
            if not conn.closed:
                self._flush_conn(conn)

    # -- client side -------------------------------------------------------------

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, addr = self.listener.accept()
            except (BlockingIOError, InterruptedError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP,
                                socket.TCP_NODELAY, 1)
            except OSError:
                pass
            if self.netchaos is not None:
                sock = self.netchaos.wrap(sock, "client")
            self._next_conn_id += 1
            conn = _ClientConn(sock, addr, self._next_conn_id)
            self.connections[sock.fileno()] = conn
            self.selector.register(sock, selectors.EVENT_READ, conn)
            self.registry.inc("router.connections")
            self.registry.gauge("router.open_connections").inc()
            if self.tracer is not None:
                self.tracer.serve_mark(
                    "accept", conn.track,
                    {"peer": f"{addr[0]}:{addr[1]}"})

    def _on_client_readable(self, conn: _ClientConn) -> None:
        try:
            data = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close_conn(conn)
            return
        if not data:
            self._close_conn(conn)
            return
        self.registry.inc("router.bytes_in", len(data))
        conn.framer.feed(data)
        frames, error = conn.framer.drain()
        for raw in frames:
            self._route(conn, raw)
        if error is not None:
            self.registry.inc("router.bad_frames")
            self._answer(conn, protocol.ERROR)
            conn.close_after_flush = True

    def _route(self, conn: _ClientConn, raw: str) -> None:
        conn.requests += 1
        if self._stop:
            self.registry.inc("router.shed")
            self._answer(conn, protocol.SERVER_BUSY)
            return
        try:
            request = protocol.parse_request(raw)
        except protocol.ProtocolError:
            # Recoverable garbage: the router answers ERROR itself
            # (in order, through the slot queue) — no shard hop.
            self.registry.inc("router.errors")
            self._answer(conn, protocol.ERROR)
            return
        if self.lost and request.key in self.lost:
            if request.command == "set":
                # A fresh set supersedes the stranded copy: the new
                # ring owner takes the key over.
                self.lost.pop(request.key, None)
            else:
                # Degraded mode: the owning shard is gone and its
                # state was not migrated — a typed refusal, never a
                # stall and never a silent miss.  State is
                # unchanged; the request can be retried after
                # request_readd().
                self.registry.inc("router.unavailable")
                self._answer(conn, protocol.SHARD_UNAVAILABLE)
                return
        shard = self._by_name[self.ring.lookup(request.key)]
        if len(shard.inflight) >= self.config.queue_depth:
            self.registry.inc("router.shed")
            self._answer(conn, protocol.SERVER_BUSY)
            return
        slot = _Slot(conn, request.command, request.key, frame=raw)
        # Forward-time ledger bookkeeping: the expectation each reply
        # will be verified against, consistent with the pipelined
        # prefix this shard will have applied by then.
        if request.command == "get":
            slot.expect = self.ledger.get(request.key)
        elif request.command == "set":
            slot.expect = SecureKVEngine.digest(request.data)
            self.ledger[request.key] = slot.expect
        elif request.command == "delete":
            slot.expect = request.key in self.ledger
            self.ledger.pop(request.key, None)
        conn.slots.append(slot)
        slot.sent_at = time.monotonic()
        shard.inflight.append(slot)
        shard.out += raw.encode("latin-1")
        shard.forwarded += 1
        self._dirty_shards.add(shard)
        self._routed += 1
        self.registry.inc("router.requests")
        self.registry.inc(f"router.forwarded[{shard.index}]")
        self.registry.observe(f"router.shard_depth[{shard.index}]",
                              len(shard.inflight))
        limit = self.config.max_requests
        if limit is not None and self._routed >= limit:
            self._stop = True

    def _answer(self, conn: _ClientConn, response: str) -> None:
        """Queue an immediate router-generated response, preserving
        per-connection order behind any in-flight slots."""
        slot = _Slot(conn, None, None)
        slot.response = response
        conn.slots.append(slot)
        self._pump_conn(conn)

    # -- shard side --------------------------------------------------------------

    def _on_shard_readable(self, shard: _Shard) -> None:
        try:
            data = shard.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError as error:
            self._shard_died(shard, f"read failed: {error}")
            return
        if not data:
            self._shard_died(shard, "connection closed")
            return
        try:
            responses = shard.rframer.feed(data) or \
                shard.rframer.drain()
        except FrameError as error:
            raise IagoFault(
                f"shard {shard.index} reply stream "
                f"desynchronized: {error}")
        if responses:
            self.monitor.note_reply(shard.name)
            shard.breaker.close()
        for response in responses:
            if not shard.inflight:
                raise IagoFault(
                    f"shard {shard.index} sent an unsolicited "
                    f"reply {response[:32]!r}")
            slot = shard.inflight.popleft()
            self._verify(shard, slot, response)
            if slot.conn is not None:
                slot.response = response
                self._pump_conn(slot.conn)

    def _verify(self, shard: _Shard, slot: _Slot,
                response: str) -> None:
        """The cross-shard ledger check (see module docstring); also
        commits acknowledged mutations to the shard's replay log."""
        if response == protocol.SERVER_BUSY:
            raise RuntimeFault(
                f"shard {shard.index} shed a routed request — its "
                f"queue must be deeper than the router's in-flight "
                f"cap")
        if slot.command == "probe":
            # Probes get a reserved never-stored key: anything but a
            # clean miss is a lying shard.
            if response != protocol.END:
                raise IagoFault(
                    f"shard {shard.index} answered a liveness probe "
                    f"with {response[:32]!r}, expected a miss")
            return
        if slot.command == "migrate":
            if response != protocol.STORED:
                raise IagoFault(
                    f"migration of key {slot.key!r} into shard "
                    f"{shard.index} answered {response.strip()!r}, "
                    f"expected STORED")
            shard.acked_log[slot.key] = slot.frame
            return
        if slot.command == "evict":
            if response not in (protocol.DELETED,
                                protocol.NOT_FOUND):
                raise IagoFault(
                    f"eviction of key {slot.key!r} from shard "
                    f"{shard.index} answered {response.strip()!r}")
            shard.acked_log.pop(slot.key, None)
            return
        if slot.command == "get":
            if response == protocol.END:
                if slot.expect is not None:
                    if self.config.strict_miss:
                        raise IagoFault(
                            f"shard {shard.index} reports a miss "
                            f"for key {slot.key!r} but the router "
                            f"ledger holds digest "
                            f"{slot.expect:#x}")
                    # Relaxed: shard caches may evict; forget the
                    # key so the system stays consistent.
                    self.registry.inc("router.relaxed_misses")
                    self.ledger.pop(slot.key, None)
                    shard.acked_log.pop(slot.key, None)
                return
            try:
                value = protocol.parse_value_response(response)
            except protocol.ProtocolError as error:
                raise IagoFault(
                    f"shard {shard.index} answered key "
                    f"{slot.key!r} with an unparseable reply: "
                    f"{error}")
            if slot.expect is None:
                raise IagoFault(
                    f"shard {shard.index} returned a value for key "
                    f"{slot.key!r} the router ledger does not hold")
            if SecureKVEngine.digest(value) != slot.expect:
                raise IagoFault(
                    f"shard {shard.index} returned a value for key "
                    f"{slot.key!r} that does not match the router "
                    f"ledger digest")
        elif slot.command == "set":
            if response != protocol.STORED:
                raise IagoFault(
                    f"shard {shard.index} answered "
                    f"{response.strip()!r} to a set of key "
                    f"{slot.key!r}")
            shard.acked_log[slot.key] = slot.frame
        elif slot.command == "delete":
            found = response == protocol.DELETED
            if response not in (protocol.DELETED,
                                protocol.NOT_FOUND):
                raise IagoFault(
                    f"shard {shard.index} answered "
                    f"{response.strip()!r} to a delete of key "
                    f"{slot.key!r}")
            if found != slot.expect:
                raise IagoFault(
                    f"delete of key {slot.key!r} disagrees: shard "
                    f"{shard.index} found={found}, router ledger "
                    f"found={slot.expect}")
            shard.acked_log.pop(slot.key, None)

    # -- health: probes and timeouts ---------------------------------------------

    def _health_sweep(self) -> None:
        """Once per round: age every live shard against the health
        monitor's verdicts, and probe the idle ones."""
        now = time.monotonic()
        for shard in self.shards:
            if shard.sock is None or \
                    shard.name not in self.ring.nodes:
                continue
            oldest = shard.inflight[0].sent_at \
                if shard.inflight else None
            verdict = self.monitor.verdict(shard.name, oldest, now)
            if verdict is not None:
                self._shard_died(shard, verdict)
                continue
            if not self._stop and self.monitor.want_probe(
                    shard.name,
                    idle=not shard.inflight and not shard.out,
                    now=now):
                self._send_probe(shard, now)

    def _send_probe(self, shard: _Shard, now: float) -> None:
        """An ordinary ``get`` on the reserved probe key, straight
        down this shard's pipe (ring ownership is irrelevant — the
        probe tests the link, not the placement)."""
        key = probe_key(shard.name)
        frame = protocol.encode_get(key)
        slot = _Slot(None, "probe", key, frame=frame)
        slot.sent_at = now
        shard.inflight.append(slot)
        shard.out += frame.encode("latin-1")
        self._dirty_shards.add(shard)
        self.monitor.note_probe(shard.name, now)
        self.registry.inc("router.probes")

    # -- shard death and exact replay --------------------------------------------

    def _shard_died(self, shard: _Shard, why: str) -> None:
        if shard.sock is None:
            return
        try:
            self.selector.unregister(shard.sock)
        except (KeyError, ValueError, OSError):
            pass
        try:
            shard.sock.close()
        except OSError:
            pass
        shard.sock = None
        self._dirty_shards.discard(shard)
        shard.breaker.trip()
        self.deaths += 1
        exit_code = None
        process_alive = False
        proc = shard.proc
        if proc is not None:
            if proc.poll() is None:
                # A dead link under a live process is a *network*
                # failure, not a crash; give a just-killed worker a
                # short beat to be reaped before deciding which.
                try:
                    exit_code = proc.wait(timeout=0.25)
                except subprocess.TimeoutExpired:
                    process_alive = True
            else:
                exit_code = proc.returncode
        self.registry.inc("router.shard_deaths")
        if self.tracer is not None:
            self.tracer.serve_mark(
                "shard-crash", shard.track,
                {"why": why, "exit": exit_code,
                 "inflight": len(shard.inflight),
                 "process_alive": process_alive})
        if not shard.breaker.allow():
            raise NetworkFault(
                f"shard {shard.index} circuit breaker open after "
                f"{shard.breaker.failures} consecutive failures "
                f"(budget {self.config.max_restarts}); last: {why}")
        external = self.config.external_shards is not None
        if process_alive or (external and (
                self.config.external_reconnect
                or self.on_death in ("rebalance", "degrade"))):
            try:
                self._reconnect_shard(shard)
                return
            except NetworkFault:
                # The endpoint is really gone, not just the link.
                if process_alive:
                    proc.kill()
                    exit_code = proc.wait()
                    process_alive = False
                if external and self.on_death not in ("rebalance",
                                                      "degrade"):
                    raise EnclaveCrash(
                        f"shard {shard.index} died ({why}) and its "
                        f"external endpoint refused reconnection; "
                        f"external shards cannot be respawned")
        if external and self.on_death not in ("rebalance",
                                              "degrade"):
            raise EnclaveCrash(
                f"shard {shard.index} died ({why}, exit "
                f"{exit_code}) with {len(shard.inflight)} "
                f"request(s) in flight and no process to restart")
        if proc is not None:
            if proc.stdout is not None:
                proc.stdout.close()
            shard.proc = None
        if self.on_death == "restart" and not external:
            self._restart_shard(shard)
        elif self.on_death == "rebalance":
            self._rebalance_away(shard, why)
        elif self.on_death == "degrade":
            self._degrade_shard(shard, why)
        else:
            raise EnclaveCrash(
                f"shard {shard.index} died ({why}, exit "
                f"{exit_code}) with {len(shard.inflight)} "
                f"request(s) in flight and recovery disabled")

    def _reconnect_shard(self, shard: _Shard) -> None:
        """Link-only recovery: the worker (or external endpoint) is
        alive, the connection is not.  Replay the acked log over a
        fresh stream, then re-forward — sound even though the worker
        already applied some un-acked operations, because replay
        resets it to exactly the acked state first and the re-applied
        suffix is the same frames in the same order."""
        t0 = time.monotonic()
        replayed = self._recover_link(shard)
        self.reconnects += 1
        self.registry.inc("router.shard_reconnects")
        if self.tracer is not None:
            self.tracer.serve_span(
                "shard-reconnect", shard.track,
                self.tracer.now_us(),
                (time.monotonic() - t0) * 1e6,
                {"replayed": replayed,
                 "reissued": len(shard.inflight)})

    def _restart_shard(self, shard: _Shard) -> None:
        """Exact restart-and-replay: fresh worker, replay the acked
        mutation log, re-forward the in-flight frames in order."""
        t0 = time.monotonic()
        # A --crash-after chaos fuse is deliberately not re-armed:
        # the injected AEX fires once, like a PR-4 enclave-restart.
        shard.proc = self._spawn(shard, crash_after=0)
        shard.port = self._await_ready(shard)
        shard.restarts += 1
        self.registry.inc("router.shard_restarts")
        replayed = self._recover_link(shard)
        if self.tracer is not None:
            self.tracer.serve_span(
                "shard-replay", shard.track,
                self.tracer.now_us(),
                (time.monotonic() - t0) * 1e6,
                {"replayed": replayed,
                 "reissued": len(shard.inflight)})

    def _recover_link(self, shard: _Shard) -> int:
        """The shared tail of every same-name recovery: replay the
        acked log, then re-forward the in-flight frames.  Slots stay
        in both FIFOs, so replies keep their original per-connection
        order; acknowledged state cannot be double-applied because
        the log only holds acked mutations and the re-forwarded
        frames were, by definition, not acked."""
        replayed = self._replay(shard)
        shard.out = bytearray()
        now = time.monotonic()
        for slot in shard.inflight:
            shard.out += slot.frame.encode("latin-1")
            slot.sent_at = now
        self.registry.inc("router.reissued_requests",
                          len(shard.inflight))
        self.selector.register(shard.sock, selectors.EVENT_READ,
                               shard)
        self.monitor.attach(shard.name, now)
        if shard.inflight and any(s.command == "probe"
                                  for s in shard.inflight):
            self.monitor.note_probe(shard.name, now)
        self._flush_shard(shard)
        return replayed

    def _replay(self, shard: _Shard) -> int:
        """Pipeline the compacted acked-mutation log into the fresh
        worker (blocking, verified): the shard's acknowledged state,
        rebuilt exactly."""
        sock = self._connect_stream(shard)
        sock.settimeout(self.config.replay_timeout)
        frames = list(shard.acked_log.values())
        framer = ResponseFramer()
        acked = 0
        try:
            for start in range(0, len(frames), 128):
                window = frames[start:start + 128]
                sock.sendall("".join(window).encode("latin-1"))
                need = start + len(window)
                while acked < need:
                    data = sock.recv(65536)
                    if not data:
                        raise RuntimeFault(
                            f"shard {shard.index} died again "
                            f"during replay ({acked}/{len(frames)} "
                            f"keys)")
                    framer.feed(data)
                    for response in framer.drain():
                        if response != protocol.STORED:
                            raise IagoFault(
                                f"replay into shard {shard.index} "
                                f"answered {response.strip()!r}, "
                                f"expected STORED")
                        acked += 1
        except (FrameError, OSError) as error:
            sock.close()
            raise RuntimeFault(
                f"replay into shard {shard.index} failed: {error}")
        sock.setblocking(False)
        shard.sock = sock
        shard.rframer = ResponseFramer()
        self.registry.inc("router.replayed_keys", len(frames))
        return len(frames)

    # -- ring rebalancing and degraded mode --------------------------------------

    def _internal_forward(self, shard: _Shard, command: str,
                          key: str, frame: str) -> None:
        """Queue a router-internal frame (migration / eviction) on a
        shard's normal FIFO — ordered like any client request, so
        migrated state lands before anything routed afterwards."""
        slot = _Slot(None, command, key, frame=frame)
        slot.sent_at = time.monotonic()
        shard.inflight.append(slot)
        shard.out += frame.encode("latin-1")
        self._dirty_shards.add(shard)

    def _reroute_inflight(self, shard: _Shard,
                          degrade: bool = False) -> int:
        """Move a dead shard's in-flight slots to the new ring
        owners, in their original order (after any migration frames
        already queued there).  Probes and evictions die with the
        shard; in degraded mode, reads/deletes of stranded keys are
        answered ``SHARD_UNAVAILABLE`` on the spot."""
        pending = shard.inflight
        shard.inflight = deque()
        shard.out = bytearray()
        now = time.monotonic()
        rerouted = 0
        for slot in pending:
            if slot.command in ("probe", "evict"):
                # The probe's link is gone; the evictee's copy died
                # with the shard (its migrated duplicate is
                # idempotent anyway).
                continue
            if degrade and slot.key in self.lost \
                    and slot.command in ("get", "delete"):
                if slot.command == "delete":
                    # The ledger already dropped this key at forward
                    # time; drop the stranded copy too so a re-add
                    # cannot resurrect it.
                    self.lost.pop(slot.key, None)
                self.registry.inc("router.unavailable")
                slot.response = protocol.SHARD_UNAVAILABLE
                self._pump_conn(slot.conn)
                continue
            if degrade and slot.command in ("set", "migrate"):
                self.lost.pop(slot.key, None)
            target = self._by_name[self.ring.lookup(slot.key)]
            slot.sent_at = now
            target.inflight.append(slot)
            target.out += slot.frame.encode("latin-1")
            self._dirty_shards.add(target)
            rerouted += 1
        self.registry.inc("router.reissued_requests", rerouted)
        return rerouted

    def _rebalance_away(self, shard: _Shard, why: str) -> None:
        """Remove a dead shard from the ring and migrate its acked
        state to the new owners through their normal FIFOs — the
        router keeps serving the whole keyspace while the migration
        drains."""
        if len(self.ring) <= 1:
            raise EnclaveCrash(
                f"shard {shard.index} died ({why}) and no other "
                f"shard remains to rebalance onto")
        self.ring.remove(shard.name)
        self.rebalances += 1
        self.registry.inc("router.rebalances")
        migrated = 0
        for key, frame in shard.acked_log.items():
            owner = self._by_name[self.ring.lookup(key)]
            self._internal_forward(owner, "migrate", key, frame)
            migrated += 1
        shard.acked_log = {}
        rerouted = self._reroute_inflight(shard)
        self._publish_ring()
        self.registry.inc("router.migrated_keys", migrated)
        if self.tracer is not None:
            self.tracer.serve_mark(
                "rebalance", shard.track,
                {"why": why, "migrated": migrated,
                 "rerouted": rerouted})

    def _degrade_shard(self, shard: _Shard, why: str) -> None:
        """Remove a dead shard from the ring *without* migration:
        its ledger-consistent acked state is retained in ``lost``,
        requests for those keys get a typed ``SHARD_UNAVAILABLE``
        answer, and the surviving keyspace serves on.  Stale entries
        (superseded or deleted in flight) are dropped here so a
        later re-add cannot resurrect them."""
        if len(self.ring) <= 1:
            raise EnclaveCrash(
                f"shard {shard.index} died ({why}) and no other "
                f"shard remains to serve the surviving keyspace")
        self.ring.remove(shard.name)
        self.registry.inc("router.degrades")
        for key, frame in shard.acked_log.items():
            data = protocol.parse_request(frame).data
            if self.ledger.get(key) == SecureKVEngine.digest(data):
                self.lost[key] = frame
        shard.acked_log = {}
        rerouted = self._reroute_inflight(shard, degrade=True)
        self._publish_ring()
        self.registry.gauge("router.lost_keys").set(len(self.lost))
        if self.tracer is not None:
            self.tracer.serve_mark(
                "degrade", shard.track,
                {"why": why, "lost": len(self.lost),
                 "rerouted": rerouted})

    def request_readd(self, index: int) -> None:
        """Thread-safe: ask the loop to bring shard ``index`` back
        onto the ring (respawn + inverse migration) at the next
        round.  The inverse of a rebalance/degrade removal."""
        self._readds.append(index)

    def _readd_shard(self, shard: _Shard) -> None:
        """Re-add a previously removed shard: fresh worker (or the
        revived external endpoint), ring re-insertion — the sorted
        rebuild restores the exact pre-removal ownership map — and
        the inverse migration, moving only the keys the ring now
        places on the returning shard (~1/N)."""
        if shard.name in self.ring.nodes:
            return
        if self.config.external_shards is None:
            shard.proc = self._spawn(shard, crash_after=0)
            shard.port = self._await_ready(shard)
        shard.acked_log = {}
        shard.inflight = deque()
        shard.out = bytearray()
        self._connect_shard(shard)
        shard.breaker.close()
        self.ring.add(shard.name)
        self.registry.inc("router.readds")
        moved = 0
        # Stranded (degraded-mode) keys first: their only copy is
        # the retained frame.
        for key in list(self.lost):
            owner = self._by_name[self.ring.lookup(key)]
            self._internal_forward(owner, "migrate", key,
                                   self.lost.pop(key))
            moved += 1
        self.registry.gauge("router.lost_keys").set(len(self.lost))
        # Then keys a survivor currently holds: copy the freshest
        # frame over (acked, or superseded by the survivor's own
        # in-flight tail), then evict the survivor's copy — the
        # eviction queues after that tail, so it lands last.
        for key in self.ledger:
            if self.ring.lookup(key) != shard.name:
                continue
            holder = None
            frame = None
            for other in self.shards:
                if other is shard:
                    continue
                if key in other.acked_log:
                    holder, frame = other, other.acked_log[key]
                for slot in other.inflight:
                    if slot.key != key:
                        continue
                    if slot.command in ("set", "migrate"):
                        holder, frame = other, slot.frame
                    elif slot.command == "delete":
                        frame = None
            if holder is None or frame is None:
                continue
            self._internal_forward(shard, "migrate", key, frame)
            self._internal_forward(holder, "evict", key,
                                   protocol.encode_delete(key))
            moved += 1
        self.registry.inc("router.migrated_keys", moved)
        self._publish_ring()
        if self.tracer is not None:
            self.tracer.serve_mark(
                "readd", shard.track, {"migrated": moved})

    # -- writes ------------------------------------------------------------------

    def _pump_conn(self, conn: _ClientConn) -> None:
        """Move the ready prefix of the slot queue into the output
        buffer; actual socket writes happen once per round."""
        slots = conn.slots
        while slots and slots[0].response is not None:
            slot = slots.popleft()
            if not conn.closed:
                conn.out += slot.response.encode("latin-1")
                self.registry.inc("router.replies")
        if conn.out and not conn.closed:
            self._dirty_conns.add(conn)

    def _flush_conn(self, conn: _ClientConn) -> None:
        while conn.out:
            try:
                sent = conn.sock.send(conn.out)
            except (BlockingIOError, InterruptedError):
                break
            except OSError:
                self._close_conn(conn)
                return
            if sent <= 0:
                break
            self.registry.inc("router.bytes_out", sent)
            del conn.out[:sent]
        if conn.out:
            events = selectors.EVENT_READ | selectors.EVENT_WRITE
        else:
            events = selectors.EVENT_READ
            if conn.close_after_flush and not conn.slots:
                self._close_conn(conn)
                return
        try:
            self.selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass

    def _flush_shard(self, shard: _Shard) -> None:
        if shard.sock is None:
            return
        while shard.out:
            try:
                sent = shard.sock.send(shard.out)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as error:
                self._shard_died(shard, f"write failed: {error}")
                return
            if sent <= 0:
                break
            del shard.out[:sent]
        events = selectors.EVENT_READ | selectors.EVENT_WRITE \
            if shard.out else selectors.EVENT_READ
        try:
            self.selector.modify(shard.sock, events, shard)
        except (KeyError, ValueError, OSError):
            pass

    def _close_conn(self, conn: _ClientConn) -> None:
        if conn.closed:
            return
        conn.closed = True
        try:
            self.selector.unregister(conn.sock)
        except (KeyError, ValueError, OSError):
            pass
        self.connections.pop(conn.sock.fileno(), None)
        try:
            conn.sock.close()
        except OSError:
            pass
        self._dirty_conns.discard(conn)
        self.registry.gauge("router.open_connections").dec()
        if self.tracer is not None:
            self.tracer.serve_mark("close", conn.track,
                                   {"requests": conn.requests})

    # -- teardown ----------------------------------------------------------------

    def _drain(self) -> None:
        """Graceful shutdown: resolve every in-flight slot, flush
        every reply, then stop the workers."""
        self._close_listener()
        deadline = time.monotonic() + self.config.drain_timeout
        while time.monotonic() < deadline and any(
                shard.inflight or shard.out
                for shard in self.shards):
            self._round(timeout=0.05)
        while time.monotonic() < deadline and any(
                conn.out for conn in self.connections.values()
                if not conn.closed):
            self._round(timeout=0.05)
        self.drained = not any(shard.inflight or shard.out
                               for shard in self.shards) \
            and not any(conn.out
                        for conn in self.connections.values())
        self.registry.gauge("router.ledger_keys").set(
            len(self.ledger))
        for conn in list(self.connections.values()):
            self._close_conn(conn)

    def _abort(self) -> None:
        self._close_listener()
        for conn in list(self.connections.values()):
            self._close_conn(conn)

    def _close_listener(self) -> None:
        if self.listener is None:
            return
        try:
            if self.selector is not None:
                self.selector.unregister(self.listener)
        except (KeyError, ValueError, OSError):
            pass
        try:
            self.listener.close()
        except OSError:
            pass
        self.listener = None

    # -- introspection -----------------------------------------------------------

    def final_digests(self) -> Dict[str, int]:
        """The ledger's view of the whole KV: key -> value digest.
        The chaos differential gate compares this against an oracle
        and against what the shards actually serve."""
        return dict(self.ledger)

    def stats(self) -> dict:
        return {
            "shards": len(self.shards),
            "ring_nodes": list(self.ring.nodes),
            "routed": self._routed,
            "ledger_keys": len(self.ledger),
            "lost_keys": len(self.lost),
            "restarts": sum(s.restarts for s in self.shards),
            "deaths": self.deaths,
            "reconnects": self.reconnects,
            "rebalances": self.rebalances,
            "per_shard_forwarded": {
                s.index: s.forwarded for s in self.shards},
        }


class RouterThread:
    """Run a :class:`ShardRouter` on a daemon thread — the shape the
    tests, the benchmark and the check.sh smoke share (mirrors
    :class:`~repro.serve.server.ServerThread`)."""

    def __init__(self, config: Optional[RouterConfig] = None,
                 **kwargs):
        self.router = ShardRouter(config, **kwargs)
        self.error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    def start(self) -> int:
        port = self.router.bind()

        def run():
            try:
                self.router.serve_forever()
            except BaseException as error:
                self.error = error

        self._thread = threading.Thread(target=run, daemon=True,
                                        name="repro-serve-router")
        self._thread.start()
        return port

    def stop(self, timeout: float = 30.0) -> None:
        self.router.request_stop()
        self.join(timeout)

    def join(self, timeout: float = 30.0) -> None:
        if self._thread is None:
            return
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("router loop did not stop in time")

    def __enter__(self) -> "RouterThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._thread is not None and self._thread.is_alive():
            self.stop()
