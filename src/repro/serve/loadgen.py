"""The YCSB load generator: real sockets, N client threads,
latency percentiles — the role of the paper's YCSB client (§9.2).

:class:`LoadClient` speaks the memcached text protocol over a
blocking TCP socket (with its own response framing, since ``VALUE``
replies carry a counted data block).  :func:`run_load` replays a
:class:`~repro.workloads.ycsb.Workload` stream (A/B/C/D/F —
zipfian/uniform/latest) from ``clients`` worker threads against a
server, measures per-operation latency, and reports throughput plus
p50/p95/p99.

``SERVER_BUSY`` answers (the server's backpressure) are retried with
a jittered exponential pause and counted — shedding is load
regulation, not an error.  The jitter draws from a per-client seeded
RNG (``blake2b("loadgen-retry:<seed>:<client>")``), so retry timing
is reproducible under ``--seed`` like everything else; an operation
that exhausts its retry budget is *abandoned* (counted, reported,
nonzero exit) rather than aborting the whole run.
``SHARD_UNAVAILABLE`` answers (the sharded router's degraded mode)
are likewise counted, not retried: the router has declared the key's
owner dead, and retrying cannot help until the shard returns.  A
reset or refused connection *is* counted, in
``dropped_connections``: the acceptance bar for the server is zero.

Runs standalone (``python -m repro.serve.loadgen --port N``) and
behind the ``repro loadgen`` CLI command.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import random
import socket
import sys
import threading
import time
from typing import Dict, List, Optional

from repro.apps.minicache import protocol
from repro.workloads.ycsb import Workload, workload_by_name

CRLF = b"\r\n"


class LoadError(Exception):
    """A client worker could not complete its operations."""


class LoadClient:
    """One blocking protocol connection."""

    def __init__(self, host: str, port: int, timeout: float = 10.0):
        self.sock = socket.create_connection((host, port),
                                             timeout=timeout)
        try:
            self.sock.setsockopt(socket.IPPROTO_TCP,
                                 socket.TCP_NODELAY, 1)
        except OSError:
            pass
        self._buf = bytearray()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass

    # -- protocol ----------------------------------------------------------------

    def request(self, text: str) -> str:
        """Send one request, read one complete response."""
        self.sock.sendall(text.encode("latin-1"))
        return self._read_response()

    def set(self, key: str, data: bytes) -> str:
        return self.request(protocol.encode_set(key, data))

    def get(self, key: str) -> str:
        return self.request(protocol.encode_get(key))

    def delete(self, key: str) -> str:
        return self.request(protocol.encode_delete(key))

    # -- response framing --------------------------------------------------------

    def _fill(self, need: int) -> None:
        while len(self._buf) < need:
            data = self.sock.recv(65536)
            if not data:
                raise LoadError("server closed the connection "
                                "mid-response")
            self._buf += data

    def _read_line(self) -> int:
        """Index just past the first CRLF, reading as needed."""
        while True:
            idx = self._buf.find(CRLF)
            if idx >= 0:
                return idx + 2
            self._fill(len(self._buf) + 1)

    def _read_response(self) -> str:
        end = self._read_line()
        line = bytes(self._buf[:end]).decode("latin-1")
        if not line.startswith("VALUE "):
            del self._buf[:end]
            return line
        fields = line.split()
        if len(fields) != 4:
            raise LoadError(f"malformed VALUE header {line!r}")
        try:
            size = int(fields[3])
        except ValueError:
            raise LoadError(f"malformed VALUE size in {line!r}")
        # VALUE header + data + CRLF + END + CRLF
        total = end + size + 2 + len(protocol.END)
        self._fill(total)
        response = bytes(self._buf[:total]).decode("latin-1")
        del self._buf[:total]
        return response


def _record_bytes(size: int, seed: int = 0) -> bytes:
    """YCSB-style filler, a pure function of (size, seed): a blake2b
    keystream folded to lowercase letters, so runs with different
    seeds store distinguishable values (a digest cross-check that
    passed by payload coincidence is worthless) while the same seed
    reproduces byte-identical traffic."""
    if size <= 0:
        return b""
    stream = bytearray()
    block = 0
    while len(stream) < size:
        stream += hashlib.blake2b(
            f"loadgen-record:{seed}:{block}".encode("ascii"),
            digest_size=32).digest()
        block += 1
    return bytes(ord("a") + byte % 26 for byte in stream[:size])


def _client_seed(seed: int, index: int) -> int:
    """A stable per-client stream seed.  Hash-derived rather than
    ``seed + index * k`` so no two (seed, index) pairs collide — with
    the linear rule, client 1 of seed 42 replayed client 0 of seed
    7961 exactly."""
    raw = hashlib.blake2b(f"loadgen-client:{seed}:{index}".encode(
        "ascii"), digest_size=8).digest()
    return int.from_bytes(raw, "big")


class _LockstepGate:
    """Serializes client turns into one seeded global order.

    Thread scheduling is the last nondeterminism in a seeded load
    run: the *per-client* streams are pure functions of the seed, but
    the order in which the server observes operations from different
    clients is whatever the OS scheduler produced.  In lockstep mode
    each worker takes a turn from this gate before issuing an
    operation; turns are drawn from a seeded RNG over the clients
    still running, so the full interleaving — and therefore the exact
    request sequence the server sees — is a pure function of
    ``seed``.  Concurrency is deliberately sacrificed; lockstep is
    for differential and chaos runs, not for throughput numbers.
    """

    def __init__(self, clients: int, seed: int):
        self._cond = threading.Condition()
        self._rng = random.Random(seed)
        self._active = set(range(clients))
        self._turn: Optional[int] = None
        self._pick()

    def _pick(self) -> None:
        self._turn = self._rng.choice(sorted(self._active)) \
            if self._active else None

    def acquire(self, index: int) -> None:
        with self._cond:
            while self._turn != index:
                self._cond.wait()

    def release(self, index: int) -> None:
        with self._cond:
            self._pick()
            self._cond.notify_all()

    def retire(self, index: int) -> None:
        """A worker finished (or died): drop it from the rotation so
        the remaining workers keep drawing turns."""
        with self._cond:
            self._active.discard(index)
            if self._turn not in self._active:
                self._pick()
            self._cond.notify_all()


def _retry_rng(seed: int, index: int) -> random.Random:
    """The per-client backoff RNG, hash-derived like
    :func:`_client_seed` so retry jitter is a pure function of
    (seed, client) and never aliases the workload streams."""
    raw = hashlib.blake2b(f"loadgen-retry:{seed}:{index}".encode(
        "ascii"), digest_size=8).digest()
    return random.Random(int.from_bytes(raw, "big"))


def _request_with_retry(client: LoadClient, encoded: str,
                        counters: Dict[str, int],
                        max_retries: int = 500,
                        rng: Optional[random.Random] = None) -> str:
    """Issue a request, retrying while the server sheds load.

    Backoff is exponential (2ms doubling to a 16ms cap) with a
    multiplicative jitter drawn from ``rng`` — deterministic under
    ``--seed``, yet de-synchronized across clients so a shed burst
    does not retry in lockstep.  Exhausting ``max_retries`` abandons
    the operation: the final ``SERVER_BUSY`` is returned and counted
    in ``abandoned``, so one overloaded stretch degrades the report
    instead of killing the worker.
    """
    attempt = 0
    while True:
        response = client.request(encoded)
        if response != protocol.SERVER_BUSY:
            return response
        if attempt >= max_retries:
            counters["abandoned"] = counters.get("abandoned", 0) + 1
            return response
        counters["shed"] += 1
        jitter = rng.random() if rng is not None else 0.5
        time.sleep(min(0.016, 0.002 * (2 ** min(attempt, 3)))
                   * (0.5 + jitter))
        attempt += 1


def _run_worker(host: str, port: int, workload: Workload,
                record: bytes, barrier: threading.Barrier,
                result: Dict[str, object], index: int = 0,
                gate: Optional[_LockstepGate] = None,
                max_retries: int = 500,
                rng: Optional[random.Random] = None) -> None:
    latencies: List[float] = []
    counters = {"shed": 0, "errors": 0, "hits": 0, "ops": 0,
                "abandoned": 0, "unavailable": 0}
    result["latencies"] = latencies
    result["counters"] = counters
    result["dropped"] = 0
    try:
        client = LoadClient(host, port)
    except OSError:
        result["dropped"] = 1
        if gate is not None:
            gate.retire(index)
        barrier.wait()
        return
    try:
        barrier.wait()
        for op in workload.operations():
            key = f"user{op.key}"
            if gate is not None:
                # One whole operation per turn (both halves of an
                # rmw), so the server-observed order is the gate's.
                gate.acquire(index)
            t0 = time.perf_counter()
            try:
                if op.kind == "read":
                    response = _request_with_retry(
                        client, protocol.encode_get(key), counters,
                        max_retries, rng)
                    if response == protocol.SHARD_UNAVAILABLE:
                        counters["unavailable"] += 1
                    elif response != protocol.END:
                        counters["hits"] += 1
                elif op.kind in ("update", "insert"):
                    response = _request_with_retry(
                        client, protocol.encode_set(key, record),
                        counters, max_retries, rng)
                    if response == protocol.SHARD_UNAVAILABLE:
                        counters["unavailable"] += 1
                elif op.kind == "rmw":
                    for encoded in (protocol.encode_get(key),
                                    protocol.encode_set(key, record)):
                        response = _request_with_retry(
                            client, encoded, counters, max_retries,
                            rng)
                        if response == protocol.SHARD_UNAVAILABLE:
                            counters["unavailable"] += 1
            finally:
                if gate is not None:
                    gate.release(index)
            latencies.append(time.perf_counter() - t0)
            counters["ops"] += 1
    except (OSError, LoadError):
        result["dropped"] = 1
    finally:
        if gate is not None:
            gate.retire(index)
        client.close()


def _percentile(sorted_values: List[float], pct: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(pct / 100.0 * len(sorted_values)))
    return sorted_values[index]


def run_load(host: str, port: int, workload: str = "C",
             clients: int = 4, ops: int = 1000, records: int = 256,
             seed: int = 42, value_bytes: Optional[int] = None,
             preload: bool = True, lockstep: bool = False,
             max_retries: int = 500) -> Dict[str, object]:
    """Replay ``ops`` total YCSB operations from ``clients`` threads;
    returns the aggregated report (see keys below).

    Determinism: every per-client stream (key choice and op mix), the
    stored payload bytes, and — with ``lockstep`` — the global
    interleaving the server observes are pure functions of ``seed``.
    Without ``lockstep`` the interleaving is whatever the thread
    scheduler produced (the right trade for throughput runs).
    """
    spec = workload_by_name(workload)
    size = value_bytes if value_bytes is not None \
        else spec.record_bytes
    record = _record_bytes(size, seed=seed)
    per_client = max(1, ops // clients)
    if preload:
        client = LoadClient(host, port)
        try:
            counters = {"shed": 0}
            rng = _retry_rng(seed, -1)
            for key in range(records):
                response = _request_with_retry(
                    client, protocol.encode_set(f"user{key}", record),
                    counters, max_retries, rng)
                if response != protocol.STORED:
                    raise LoadError(
                        f"preload of key user{key} answered "
                        f"{response.strip()!r}")
        finally:
            client.close()
    barrier = threading.Barrier(clients + 1)
    gate = _LockstepGate(clients, seed) if lockstep else None
    results: List[Dict[str, object]] = [{} for _ in range(clients)]
    threads = []
    for index in range(clients):
        stream = Workload(spec, records, per_client,
                          seed=_client_seed(seed, index))
        thread = threading.Thread(
            target=_run_worker,
            args=(host, port, stream, record, barrier,
                  results[index], index, gate, max_retries,
                  _retry_rng(seed, index)),
            daemon=True, name=f"loadgen-{index}")
        threads.append(thread)
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    duration = time.perf_counter() - t0
    latencies = sorted(
        value for result in results
        for value in result.get("latencies", ()))
    totals = {"shed": 0, "errors": 0, "hits": 0, "ops": 0,
              "abandoned": 0, "unavailable": 0}
    dropped = 0
    for result in results:
        dropped += int(result.get("dropped", 0))
        for key in totals:
            totals[key] += result.get("counters", {}).get(key, 0)
    return {
        "workload": spec.name,
        "clients": clients,
        "ops": totals["ops"],
        "duration_s": round(duration, 4),
        "ops_per_s": round(totals["ops"] / duration, 1)
        if duration > 0 else 0.0,
        "p50_ms": round(_percentile(latencies, 50) * 1e3, 3),
        "p95_ms": round(_percentile(latencies, 95) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 99) * 1e3, 3),
        "hits": totals["hits"],
        "shed_retries": totals["shed"],
        "abandoned": totals["abandoned"],
        "unavailable": totals["unavailable"],
        "errors": totals["errors"],
        "dropped_connections": dropped,
    }


def format_report(report: Dict[str, object]) -> str:
    return "\n".join([
        f"loadgen: workload {report['workload']} x "
        f"{report['clients']} client(s), {report['ops']} ops in "
        f"{report['duration_s']}s",
        f"  throughput: {report['ops_per_s']} ops/s",
        f"  latency ms: p50={report['p50_ms']} "
        f"p95={report['p95_ms']} p99={report['p99_ms']}",
        f"  shed retries: {report['shed_retries']}  "
        f"abandoned: {report.get('abandoned', 0)}  "
        f"unavailable: {report.get('unavailable', 0)}",
        f"  dropped connections: {report['dropped_connections']}  "
        f"errors: {report['errors']}",
    ])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.serve.loadgen",
        description="YCSB load generator for the repro serve layer")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--workload", default="C",
                        help="YCSB workload: A/B/C/D/F or "
                             "'ycsb-a' aliases (default: C)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default: 4)")
    parser.add_argument("--ops", type=int, default=1000,
                        help="total operations across all clients")
    parser.add_argument("--records", type=int, default=256,
                        help="preloaded keyspace size (default: 256)")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--value-bytes", type=int, default=None,
                        help="value size (default: the workload's "
                             "record_bytes)")
    parser.add_argument("--max-retries", type=int, default=500,
                        help="SERVER_BUSY retries per operation "
                             "before abandoning it (default: 500)")
    parser.add_argument("--no-preload", action="store_true",
                        help="skip preloading the keyspace")
    parser.add_argument("--lockstep", action="store_true",
                        help="serialize client turns into a seeded "
                             "global order (fully deterministic "
                             "interleaving; sacrifices concurrency)")
    parser.add_argument("--json", action="store_true",
                        help="print the report as JSON")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    try:
        report = run_load(
            options.host, options.port, workload=options.workload,
            clients=options.clients, ops=options.ops,
            records=options.records, seed=options.seed,
            value_bytes=options.value_bytes,
            preload=not options.no_preload,
            lockstep=options.lockstep,
            max_retries=options.max_retries)
    except (ValueError, LoadError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if options.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    failed = report["dropped_connections"] or report["errors"] \
        or report["abandoned"]
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
