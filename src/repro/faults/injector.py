"""The fault injector: an adversarial untrusted runtime.

One :class:`FaultInjector` executes a :class:`~repro.faults.plan.
FaultPlan` against a live :class:`~repro.runtime.executor.
PrivagicRuntime` by standing in every place the real untrusted side
stands:

* **channel adversary** — :meth:`on_send` is called by
  :meth:`Channel.push` between the authenticated send and the
  enqueue, exactly the window unsafe memory gives a real attacker; it
  decides what actually lands in the queue (nothing, the message,
  two copies, a corrupted payload, or a swapped pair).
* **Iago corruptor** — :meth:`attach` wraps the targeted untrusted
  externals so their integer return values can be perturbed *after*
  the honest postcondition guard ran; the corrupted value is then
  re-checked, so guarded externals always detect the injection.
* **enclave killer** — :meth:`on_spawn_delivery` is called by the
  trampoline at the spawn-delivery boundary and either replays the
  spawn after a bounded restart or raises
  :class:`~repro.errors.EnclaveCrash`.

The injector never *hides* anything: every injection and every
detection is counted (``injected`` / ``detected``) and emitted on the
tracer's ``fault`` category, feeding the ``faults.*`` metrics.

``net-*`` entries belong to the socket interposition layer
(:mod:`repro.faults.netchaos`), not to the runtime: a plan may mix
both kinds, and this injector deliberately leaves net entries inert
(they are excluded from ``armed`` and never fire here) so one
``--inject`` string can drive both layers without cross-talk.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EnclaveCrash
from repro.faults.plan import (
    CHANNEL_ACTIONS,
    ENCLAVE_ACTIONS,
    IAGO_ACTION,
    NET_ACTIONS,
    FaultPlan,
)
from repro.runtime.iago import GUARDS, verify_external_result
from repro.sgx.enclave import EnclaveFaultModel


class FaultInjector:
    """Executes a fault plan against one runtime (attach/detach)."""

    def __init__(self, plan: FaultPlan,
                 fault_model: Optional[EnclaveFaultModel] = None):
        self.plan = plan
        self.model = fault_model or EnclaveFaultModel()
        self.runtime = None
        #: action -> count of injections performed
        self.injected: Dict[str, int] = {}
        #: detection kind -> count of faults detected (by the channel
        #: auth check, the Iago guards, the watchdog, ...)
        self.detected: Dict[str, int] = {}
        #: (src, dst) -> message withheld by a reorder, delivered
        #: after the next send on the same channel
        self._stash: Dict[Tuple[str, str], object] = {}
        #: external name -> original handler (restored on detach)
        self._wrapped: Dict[str, object] = {}
        #: external name -> last honest result (for ``replay`` mode)
        self._replay_cache: Dict[str, object] = {}

    # -- lifecycle -----------------------------------------------------------------

    def attach(self, runtime) -> "FaultInjector":
        """Install this injector on ``runtime``: channel adversary on
        every worker group (existing and future), Iago corruptors on
        the targeted externals."""
        self.runtime = runtime
        runtime.fault_injector = self
        for group in runtime._groups.values():
            group.matrix.set_adversary(self)
        self._wrap_externals(runtime)
        return self

    def detach(self) -> None:
        runtime = self.runtime
        if runtime is None:
            return
        for name, original in self._wrapped.items():
            runtime.machine.externals[name] = original
        self._wrapped.clear()
        for group in runtime._groups.values():
            group.matrix.set_adversary(None)
        runtime.fault_injector = None
        self.runtime = None

    # -- accounting ----------------------------------------------------------------

    @property
    def armed(self) -> int:
        """Entries this injector can actually fire — net entries are
        the netchaos layer's and do not count."""
        return sum(1 for entry in self.plan.entries
                   if entry.action not in NET_ACTIONS)

    def injected_total(self) -> int:
        return sum(self.injected.values())

    def detected_total(self) -> int:
        return sum(self.detected.values())

    def on_detect(self, kind: str, args: Dict[str, object]) -> None:
        """Detection callback: the runtime's integrity checks call
        this (and emit their own tracer event) before raising."""
        self.detected[kind] = self.detected.get(kind, 0) + 1

    def _emit(self, event: str, kind: str,
              args: Dict[str, object]) -> None:
        tracer = getattr(self.runtime, "tracer", None)
        if tracer is not None:
            fault = getattr(tracer, "fault", None)
            if fault is not None:
                fault(event, kind, args)

    def _note_inject(self, action: str,
                     args: Dict[str, object]) -> None:
        self.injected[action] = self.injected.get(action, 0) + 1
        self._emit("inject", action, args)

    # -- channel adversary ---------------------------------------------------------

    def on_send(self, channel, message) -> List[object]:
        """Decide what ``push`` actually enqueues for ``message``.

        A reordered message is withheld and rides behind the *next*
        send on the same channel (if none follows, the withhold
        degrades into a drop — still detected as a gap or a
        deadlock, never absorbed)."""
        key = (channel.src, channel.dst)
        withheld = self._stash.pop(key, None)
        deliveries: List[object] = [message]
        for entry in self.plan.entries:
            if entry.fired or entry.action not in CHANNEL_ACTIONS:
                continue
            if entry.src not in ("*", channel.src):
                continue
            if entry.dst not in ("*", channel.dst):
                continue
            if entry.msg_kind not in ("*", message.kind):
                continue
            entry.matched += 1
            if entry.matched != entry.nth:
                continue
            entry.fired = True
            self._note_inject(entry.action, {
                "channel": f"{channel.src}->{channel.dst}",
                "kind": message.kind, "spec": entry.spec()})
            if entry.action == "channel-drop":
                deliveries = []
            elif entry.action == "channel-dup":
                deliveries = [message, message]
            elif entry.action == "channel-corrupt":
                self._corrupt_message(message)
            elif entry.action == "channel-reorder":
                self._stash[key] = message
                deliveries = []
        if withheld is not None:
            # The older message lands after the newer one: reordered.
            deliveries.append(withheld)
        return deliveries

    @staticmethod
    def _perturb_value(value):
        if isinstance(value, bool) or value is None:
            return 1 if not value else 0
        if isinstance(value, int):
            return value + 1
        if isinstance(value, str):
            return value + "☠"
        if isinstance(value, list):
            return list(value) + [1]
        return ("corrupt", value)

    def _corrupt_message(self, message) -> None:
        """Rewrite the payload in place.  The authentication tag was
        stamped before we ran, so the receiver's check in
        ``Channel._delivered`` can no longer match — the corruption
        is detectable the moment the message is popped."""
        if message.kind == "spawn":
            if message.args:
                message.args[0] = self._perturb_value(message.args[0])
            else:
                message.chunk = message.chunk + "☠"
        else:
            message.value = self._perturb_value(message.value)

    # -- Iago corruptor ------------------------------------------------------------

    def _wrap_externals(self, runtime) -> None:
        entries = [e for e in self.plan.entries
                   if e.action == IAGO_ACTION]
        if not entries:
            return
        machine = runtime.machine
        names = set()
        for entry in entries:
            if entry.target == "*":
                # Wildcards only reach guarded externals, where the
                # corruption is detectable by construction.
                names.update(GUARDS)
            else:
                names.add(entry.target)
        for name in sorted(names):
            handler = machine.externals.get(name)
            if handler is None:
                continue
            self._wrapped[name] = handler
            machine.externals[name] = self._corrupting(name, handler)

    def _corrupting(self, name: str, handler):
        def corrupted(machine, ctx, args, _name=name, _raw=handler):
            result = _raw(machine, ctx, args)
            if not isinstance(result, int) \
                    or isinstance(result, bool):
                # BLOCK / PushCall / None pass through: only integer
                # results are Iago-corruptible values.
                return result
            for entry in self.plan.entries:
                if entry.fired or entry.action != IAGO_ACTION:
                    continue
                if entry.target not in ("*", _name):
                    continue
                if entry.target == "*" and _name not in GUARDS:
                    continue
                entry.matched += 1
                if entry.matched != entry.nth:
                    continue
                entry.fired = True
                hostile = self._perturb_result(_name, entry.mode,
                                               result)
                self._note_inject(IAGO_ACTION, {
                    "external": _name, "mode": entry.mode,
                    "honest": result, "hostile": hostile,
                    "spec": entry.spec()})
                # Re-run the postcondition against the hostile value:
                # guarded externals detect it here (IagoFault);
                # unguarded ones hand it to the program, where only
                # an unused return keeps the run identical.
                verify_external_result(self.runtime, _name, machine,
                                       ctx, args, hostile)
                return hostile
            self._replay_cache[_name] = result
            return result

        corrupted._iago_injector = True
        return corrupted

    def _perturb_result(self, name: str, mode: str, result: int):
        if mode == "huge":
            return (1 << 62) + result
        if mode == "negative":
            return -abs(result) - 1
        if mode == "zero":
            return 0
        if mode == "replay":
            return self._replay_cache.get(name, result + 1)
        return result + 1  # offset

    # -- enclave killer ------------------------------------------------------------

    def on_spawn_delivery(self, color: str, chunk: str) -> None:
        """Called by the trampoline before a chunk's first
        instruction.  Either returns (no fault, or the worker
        restarted and the spawn is being replayed exactly) or raises
        :class:`EnclaveCrash`."""
        runtime = self.runtime
        for entry in self.plan.entries:
            if entry.fired or entry.action not in ENCLAVE_ACTIONS:
                continue
            if entry.target == "*":
                if runtime is not None \
                        and color == runtime.untrusted:
                    # The untrusted "worker" is the application
                    # thread itself, not an enclave.
                    continue
            elif entry.target != color:
                continue
            entry.matched += 1
            if entry.matched != entry.nth:
                continue
            entry.fired = True
            recover = entry.action == "enclave-restart"
            self._note_inject(entry.action, {
                "color": color, "chunk": chunk,
                "spec": entry.spec()})
            if self.model.crash(color, chunk, recover):
                # Restarted within budget: the crash hit the
                # spawn-delivery boundary, so replaying the pending
                # spawn reproduces the fault-free run exactly.
                self._emit("recover", entry.action,
                           {"color": color, "chunk": chunk})
                continue
            self.on_detect("enclave-crash", {"color": color})
            self._emit("detect", "enclave-crash",
                       {"color": color, "chunk": chunk})
            raise EnclaveCrash(
                f"worker {color} crashed (AEX) while delivering "
                f"{chunk!r}")
