"""Chaos differential harness: identical or typed-fault, never wrong.

The contract under test (ISSUE: chaos differential suite): running a
partitioned program under any injected fault must end in one of two
ways —

* **identical** — result and stdout equal to the fault-free run (the
  injection landed somewhere harmless: an unused return value, a
  cross-kind reorder the selective receive never observes, a restart
  replayed at the delivery boundary), or
* **typed-fault** — a :class:`~repro.errors.RuntimeFault` subclass
  naming what was detected (failed channel authentication, an Iago
  postcondition, a dead worker, a stall).

A third outcome — completing with a *different* result — would mean
injected corruption was absorbed into the answer: **silently-wrong**,
the one thing the runtime promises never happens.

``python -m repro.faults.differential examples/fig7.c --seeds 8``
runs the sweep standalone (the ``scripts/check.sh`` chaos smoke).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import RuntimeFault
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.runtime.executor import PrivagicRuntime

IDENTICAL = "identical"
TYPED_FAULT = "typed-fault"
SILENTLY_WRONG = "silently-wrong"


class Outcome:
    """What one (possibly fault-injected) run observably did."""

    __slots__ = ("status", "fault", "detail", "result", "stdout",
                 "injected")

    def __init__(self, status: str, result: object = None,
                 stdout: str = "", fault: str = "", detail: str = "",
                 injected: Optional[Dict[str, int]] = None):
        self.status = status  # "ok" | "fault"
        self.result = result
        self.stdout = stdout
        self.fault = fault  # RuntimeFault subclass name when "fault"
        self.detail = detail  # first line of the fault message
        self.injected = injected or {}

    def __repr__(self) -> str:
        if self.status == "fault":
            return f"<Outcome fault={self.fault} {self.detail!r}>"
        return f"<Outcome ok result={self.result!r}>"


def run_outcome(program, plan: Optional[FaultPlan] = None,
                entry: str = "main", args: Sequence[object] = (),
                engine: Optional[str] = None,
                externals: Optional[dict] = None,
                max_steps: int = 5_000_000,
                watchdog_steps: Optional[int] = None) -> Outcome:
    """Run ``program`` once (under ``plan``, if given) and capture the
    outcome.  Any non-:class:`RuntimeFault` exception propagates —
    an injected fault must never surface as an untyped error."""
    if plan is not None:
        plan.reset()
    runtime = PrivagicRuntime(program, externals, max_steps, engine,
                              watchdog_steps=watchdog_steps)
    injector = FaultInjector(plan) if plan is not None else None
    if injector is not None:
        injector.attach(runtime)
    try:
        result = runtime.run(entry, list(args))
    except RuntimeFault as fault:
        message = str(fault)
        return Outcome(
            "fault", fault=type(fault).__name__,
            detail=message.splitlines()[0] if message else "",
            stdout=runtime.machine.stdout,
            injected=dict(injector.injected) if injector else {})
    finally:
        if injector is not None:
            injector.detach()
    return Outcome(
        "ok", result=result, stdout=runtime.machine.stdout,
        injected=dict(injector.injected) if injector else {})


def classify(baseline: Outcome, outcome: Outcome) -> str:
    """Judge one injected run against the fault-free baseline."""
    if outcome.status == "fault":
        return TYPED_FAULT
    if (outcome.result == baseline.result
            and outcome.stdout == baseline.stdout):
        return IDENTICAL
    return SILENTLY_WRONG


def chaos_sweep(program, seeds: Sequence[int],
                entry: str = "main", args: Sequence[object] = (),
                engines: Sequence[str] = ("decoded", "traced", "legacy"),
                externals: Optional[dict] = None,
                max_steps: int = 5_000_000) -> List[dict]:
    """Run one seeded random plan per (seed, engine) pair and classify
    every run against that engine's fault-free baseline.

    Returns one record per run: ``{"seed", "engine", "plan",
    "verdict", "fault", "fired"}``.  The caller asserts the invariant
    (no :data:`SILENTLY_WRONG` verdicts); this function only reports.
    """
    colors = sorted(set(program.chunk_colors.values())
                    - {program.untrusted})
    records: List[dict] = []
    for engine in engines:
        baseline = run_outcome(program, None, entry, args, engine,
                               externals, max_steps)
        if baseline.status != "ok":
            raise RuntimeFault(
                f"fault-free baseline failed on engine {engine}: "
                f"{baseline.fault}: {baseline.detail}")
        for seed in seeds:
            plan = FaultPlan.random(seed, colors,
                                    untrusted=program.untrusted)
            outcome = run_outcome(program, plan, entry, args, engine,
                                  externals, max_steps)
            records.append({
                "seed": seed,
                "engine": engine,
                "plan": plan.spec(),
                "verdict": classify(baseline, outcome),
                "fault": outcome.fault,
                "fired": len(plan.fired()),
            })
    return records


def summarize(records: Sequence[dict]) -> Dict[str, int]:
    summary = {IDENTICAL: 0, TYPED_FAULT: 0, SILENTLY_WRONG: 0,
               "runs": len(records),
               "fired": sum(r["fired"] for r in records)}
    for record in records:
        summary[record["verdict"]] += 1
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone sweep over a source file in any registered frontend
    (the check.sh chaos smoke).  Exits 0 iff no run was silently
    wrong."""
    import argparse

    from repro.core.compiler import compile_and_partition

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.differential",
        description="chaos differential sweep over seeded fault plans")
    parser.add_argument("source", help="source file (MiniC or MiniPy)")
    parser.add_argument("--frontend", default=None, metavar="LANG",
                        help="source language (default: by file "
                             "extension)")
    parser.add_argument("--seeds", type=int, default=8,
                        help="number of seeded plans per engine")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--entry", default="main")
    parser.add_argument("--mode", default="relaxed",
                        choices=["relaxed", "hardened"])
    parser.add_argument("--engines", default="decoded,traced,legacy")
    parser.add_argument("--optimize", default=None, metavar="POLICY",
                        help="placement policy arm (none/kl/profile): "
                             "the sweep runs against the optimized "
                             "partition, so optimized placements keep "
                             "the identical-or-typed-fault contract")
    options = parser.parse_args(argv)

    with open(options.source) as handle:
        source = handle.read()
    from repro.secval import resolve_frontend
    frontend = resolve_frontend(options.frontend, options.source)
    program = compile_and_partition(source, mode=options.mode,
                                    optimize=options.optimize,
                                    frontend=frontend.name)
    seeds = range(options.base_seed,
                  options.base_seed + options.seeds)
    records = chaos_sweep(
        program, seeds, entry=options.entry,
        engines=[e.strip() for e in options.engines.split(",")
                 if e.strip()])
    summary = summarize(records)
    for record in records:
        if record["verdict"] == SILENTLY_WRONG:
            print(f"SILENTLY WRONG: seed={record['seed']} "
                  f"engine={record['engine']} plan={record['plan']}")
    print(f"chaos sweep: {summary['runs']} runs, "
          f"{summary['fired']} faults fired, "
          f"{summary[IDENTICAL]} identical, "
          f"{summary[TYPED_FAULT]} typed-fault, "
          f"{summary[SILENTLY_WRONG]} silently-wrong")
    return 1 if summary[SILENTLY_WRONG] else 0


if __name__ == "__main__":
    raise SystemExit(main())
