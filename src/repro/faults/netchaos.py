"""Socket-level fault injection for the serving tier.

PR 4's :mod:`repro.faults.injector` attacks the *in-process* channel
matrix; the sharded serving tier of :mod:`repro.serve.router` moved
the trust boundary onto real TCP sockets, which the adversary model
says belong to the untrusted host.  This module closes that gap: a
seeded, in-process interposition layer that wraps the router<->shard
and client<->router streams and injects the classic network failure
modes, driven by the same single-shot :class:`~repro.faults.plan.
FaultPlan` grammar (``net-reset:shard0:3``, ``net-slow:*:2:50``,
``net-short:shard1:1``, ``net-garble:shard0:4``).

Fault actions (selected per socket *operation*, counted per entry):

* ``net-reset`` — the next matching send/recv raises
  :class:`ConnectionResetError`; the router's death-detection and
  reconnect/replay machinery must absorb it.
* ``net-slow`` — a latency spike: the operation sleeps ``MS``
  milliseconds (default 25) first, exercising the timeout paths.
* ``net-short`` — a partial write (``send`` truncates to half) or a
  short read (``recv`` capped to a few bytes), exercising the
  buffered-write and incremental-framing paths; no bytes are lost.
* ``net-garble`` — received bytes are corrupted (one byte flipped)
  or truncated (the tail dropped after being consumed), so the
  framer sees a desynchronized or silently-stalled stream; detection
  is a :class:`~repro.serve.framing.FrameError` (an IagoFault at the
  router) or a health-layer timeout.

The end-to-end contract extends PR 4's lockstep differential: a
seeded load run with network faults must converge to a digest ledger
identical to the fault-free run, or die with a typed
:class:`~repro.errors.RuntimeFault` — zero silently-wrong responses
and zero hangs.  ``python -m repro.faults.netchaos --seeds 100``
runs that sweep standalone (router + 2 in-process shard servers).
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional, Sequence

from repro.faults.plan import NET_ACTIONS, FaultPlan

#: Which actions can fire on which socket operation.
_SEND_ACTIONS = ("net-reset", "net-slow", "net-short")
_RECV_ACTIONS = ("net-reset", "net-slow", "net-short", "net-garble")

#: net-short caps a recv to this many bytes, so framers must
#: reassemble headers split mid-token.
SHORT_READ_BYTES = 5


class NetChaos:
    """The shared fault engine: one per router, wrapping any number
    of streams.  Entry matching is single-shot and deterministic
    (``plan`` order, per-entry ``nth`` counters); garbling draws from
    a seeded private RNG so a run is a pure function of
    ``(plan, seed)``."""

    def __init__(self, plan: FaultPlan, seed: int = 0):
        self.plan = plan
        self.rng = random.Random(f"netchaos:{seed}")
        self.injected: Dict[str, int] = {}
        self.events = 0
        self._lock = threading.Lock()
        for entry in plan.entries:
            if entry.action not in NET_ACTIONS:
                raise ValueError(
                    f"netchaos plan holds a non-net entry "
                    f"{entry.spec()!r} (actions: "
                    f"{', '.join(NET_ACTIONS)})")

    def wrap(self, sock, endpoint: str) -> "ChaosSocket":
        """Interpose on one stream; ``endpoint`` is the plan-facing
        label (``shard0``.., or ``client``)."""
        return ChaosSocket(sock, endpoint, self)

    def pick(self, op: str, endpoint: str):
        """Count this socket operation against every live matching
        entry; return the first entry that just reached its ``nth``
        (or ``None``)."""
        actions = _SEND_ACTIONS if op == "send" else _RECV_ACTIONS
        with self._lock:
            self.events += 1
            chosen = None
            for entry in self.plan.entries:
                if entry.fired or entry.action not in actions:
                    continue
                if entry.target not in ("*", endpoint):
                    continue
                entry.matched += 1
                if entry.matched >= entry.nth and chosen is None:
                    entry.fired = True
                    self.injected[entry.action] = \
                        self.injected.get(entry.action, 0) + 1
                    chosen = entry
            return chosen

    def garble(self, data: bytes) -> bytes:
        """Corrupt received bytes: flip one byte, or drop the tail
        (the bytes were consumed from the kernel but never reach the
        framer — the silent-stall case only a timeout can catch)."""
        if not data:
            return data
        if len(data) > 1 and self.rng.random() < 0.5:
            return data[:self.rng.randint(1, len(data) - 1)]
        index = self.rng.randrange(len(data))
        mutated = bytearray(data)
        mutated[index] ^= 1 << self.rng.randrange(8)
        return bytes(mutated)


class ChaosSocket:
    """A socket proxy injecting the plan's faults.

    Everything not interposed on (``fileno``, ``setblocking``,
    ``setsockopt``, ``close``, ...) delegates to the real socket, so
    a wrapped socket still registers with ``selectors`` and honors
    blocking-mode changes."""

    def __init__(self, sock, endpoint: str, chaos: NetChaos):
        self._sock = sock
        self._endpoint = endpoint
        self._chaos = chaos

    def __getattr__(self, name):
        return getattr(self._sock, name)

    def _fire(self, op: str):
        entry = self._chaos.pick(op, self._endpoint)
        if entry is None:
            return None
        if entry.action == "net-reset":
            raise ConnectionResetError(
                104, f"injected reset on {self._endpoint} "
                     f"({entry.spec()})")
        if entry.action == "net-slow":
            time.sleep(int(entry.mode) / 1000.0)
        return entry

    def send(self, data):
        entry = self._fire("send")
        if entry is not None and entry.action == "net-short" \
                and len(data) > 1:
            data = bytes(data[:max(1, len(data) // 2)])
        return self._sock.send(data)

    def sendall(self, data):
        entry = self._fire("send")
        if entry is not None and entry.action == "net-short" \
                and len(data) > 1:
            # A partial write the caller never sees: two segments
            # instead of one, no bytes lost.
            half = max(1, len(data) // 2)
            self._sock.sendall(data[:half])
            return self._sock.sendall(data[half:])
        return self._sock.sendall(data)

    def recv(self, bufsize: int):
        entry = self._fire("recv")
        if entry is None:
            return self._sock.recv(bufsize)
        if entry.action == "net-short":
            return self._sock.recv(
                min(bufsize, SHORT_READ_BYTES))
        data = self._sock.recv(bufsize)
        if entry.action == "net-garble":
            return self._chaos.garble(data)
        return data

    def __repr__(self) -> str:
        return f"<ChaosSocket {self._endpoint} on {self._sock!r}>"


# -- the end-to-end differential sweep -------------------------------------------

IDENTICAL = "identical"
TYPED_FAULT = "typed-fault"
SILENTLY_WRONG = "silently-wrong"
HANG = "hang"


def _one_run(program, net_inject: Optional[str], chaos_seed: int,
             load_seed: int, ops: int, clients: int,
             records: int) -> dict:
    """One complete serving run: 2 in-process shard servers, the
    router (with chaos when ``net_inject``), a seeded lockstep load.
    Returns ``{"error", "report", "digests", "stats"}``."""
    from repro.serve import (
        RouterConfig,
        RouterThread,
        SecureKVEngine,
        ServeConfig,
        ServerThread,
    )
    from repro.serve.loadgen import run_load

    shards = [
        ServerThread(ServeConfig(port=0, batch=8),
                     engine=SecureKVEngine(program=program))
        for _ in range(2)]
    router: Optional[RouterThread] = None
    try:
        for shard in shards:
            shard.start()
        config = RouterConfig(
            port=0, shards=2, batch=8,
            external_shards=[("127.0.0.1", shard.server.port)
                             for shard in shards],
            probe_interval=0.25, probe_timeout=2.0,
            forward_timeout=2.5, connect_timeout=2.0,
            connect_retries=2, backoff_base=0.05, backoff_cap=0.2,
            replay_timeout=5.0, drain_timeout=5.0,
            external_reconnect=True,
            net_inject=net_inject, net_chaos_seed=chaos_seed)
        router = RouterThread(config)
        router.start()
        load_error: Optional[BaseException] = None
        report: Optional[dict] = None
        try:
            report = run_load(
                "127.0.0.1", router.router.port, workload="A",
                clients=clients, ops=ops, records=records,
                value_bytes=24, seed=load_seed, lockstep=True)
        except Exception as error:
            # A router abort cuts client connections mid-response;
            # the verdict then belongs to the router's typed fault,
            # not the client-side symptom.
            load_error = error
        try:
            router.stop(timeout=10.0)
        except RuntimeError:
            pass
        return {"error": router.error if router.error is not None
                else load_error,
                "report": report,
                "digests": router.router.final_digests(),
                "stats": router.router.stats()}
    finally:
        if router is not None and router.error is None:
            try:
                router.stop(timeout=5.0)
            except RuntimeError:
                pass
        for shard in shards:
            try:
                shard.stop()
            except Exception:
                pass


def _classify(baseline: dict, outcome: dict) -> str:
    from repro.errors import RuntimeFault

    if isinstance(outcome["error"], RuntimeFault):
        return TYPED_FAULT
    if outcome["error"] is not None:
        return SILENTLY_WRONG
    report = outcome["report"]
    if report["dropped_connections"] or report["errors"] \
            or report.get("abandoned"):
        # Clients saw failures the router never typed: with
        # shard-link-only faults that is a broken contract.
        return SILENTLY_WRONG
    if outcome["digests"] == baseline["digests"]:
        return IDENTICAL
    return SILENTLY_WRONG


def netchaos_sweep(seeds: Sequence[int], load_seed: int = 42,
                   ops: int = 120, clients: int = 2,
                   records: int = 16, watchdog: float = 60.0,
                   progress=None) -> List[dict]:
    """The seeded network-chaos differential: one random net plan per
    seed against a fixed lockstep load, each run classified against
    the fault-free baseline's digest ledger.  Every run executes
    under a wall-clock watchdog — a hang is a verdict, not a stuck
    harness.

    Plans target only the shard links (``shard0``/``shard1`` — never
    the ``*`` wildcard, which would also match the wrapped client
    streams): client-side chaos legitimately changes which
    operations are admitted, so it is covered by unit tests rather
    than the ledger-equality differential.
    """
    from repro.serve.engine import compile_secure_kv

    program = compile_secure_kv()
    baseline = _run_with_watchdog(
        program, None, 0, load_seed, ops, clients, records, watchdog)
    if baseline is None:
        raise RuntimeError("fault-free baseline run hung")
    if baseline["error"] is not None:
        raise RuntimeError(
            f"fault-free baseline faulted: {baseline['error']!r}")
    report = baseline["report"]
    if report["dropped_connections"] or report["errors"]:
        raise RuntimeError(
            f"fault-free baseline saw client errors: {report}")
    records_out: List[dict] = []
    for seed in seeds:
        plan = FaultPlan.random_net(seed, shards=2)
        outcome = _run_with_watchdog(
            program, plan.spec(), seed, load_seed, ops, clients,
            records, watchdog)
        if outcome is None:
            verdict, fault = HANG, ""
        else:
            verdict = _classify(baseline, outcome)
            fault = type(outcome["error"]).__name__ \
                if outcome["error"] is not None else ""
        record = {"seed": seed, "plan": plan.spec(),
                  "verdict": verdict, "fault": fault}
        records_out.append(record)
        if progress is not None:
            progress(record)
    return records_out


def _run_with_watchdog(program, net_inject, chaos_seed, load_seed,
                       ops, clients, records,
                       watchdog: float) -> Optional[dict]:
    """Run :func:`_one_run` on a daemon thread; ``None`` on a hang
    (the thread is abandoned — the sweep process exits anyway)."""
    box: Dict[str, object] = {}

    def run():
        try:
            box["outcome"] = _one_run(
                program, net_inject, chaos_seed, load_seed, ops,
                clients, records)
        except BaseException as error:  # surface harness bugs
            box["raised"] = error

    thread = threading.Thread(target=run, daemon=True,
                              name="netchaos-run")
    thread.start()
    thread.join(watchdog)
    if thread.is_alive():
        return None
    if "raised" in box:
        raise box["raised"]  # type: ignore[misc]
    return box["outcome"]  # type: ignore[return-value]


def summarize(records: Sequence[dict]) -> Dict[str, int]:
    summary = {IDENTICAL: 0, TYPED_FAULT: 0, SILENTLY_WRONG: 0,
               HANG: 0, "runs": len(records)}
    for record in records:
        summary[record["verdict"]] += 1
    return summary


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Standalone sweep (the check.sh netchaos smoke).  Exits 0 iff
    no run was silently wrong or hung."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.faults.netchaos",
        description="seeded socket-chaos differential sweep "
                    "(router + 2 shards)")
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of seeded net plans")
    parser.add_argument("--base-seed", type=int, default=0)
    parser.add_argument("--ops", type=int, default=120)
    parser.add_argument("--clients", type=int, default=2)
    parser.add_argument("--records", type=int, default=16)
    parser.add_argument("--load-seed", type=int, default=42)
    parser.add_argument("--watchdog", type=float, default=60.0,
                        help="per-run wall-clock deadline (s)")
    parser.add_argument("--verbose", action="store_true")
    options = parser.parse_args(argv)

    def progress(record):
        if options.verbose or record["verdict"] in (SILENTLY_WRONG,
                                                    HANG):
            print(f"  seed={record['seed']} "
                  f"verdict={record['verdict']} "
                  f"fault={record['fault'] or '-'} "
                  f"plan={record['plan']}")

    records = netchaos_sweep(
        range(options.base_seed, options.base_seed + options.seeds),
        load_seed=options.load_seed, ops=options.ops,
        clients=options.clients, records=options.records,
        watchdog=options.watchdog, progress=progress)
    summary = summarize(records)
    print(f"netchaos sweep: {summary['runs']} runs, "
          f"{summary[IDENTICAL]} identical, "
          f"{summary[TYPED_FAULT]} typed-fault, "
          f"{summary[SILENTLY_WRONG]} silently-wrong, "
          f"{summary[HANG]} hung")
    return 1 if summary[SILENTLY_WRONG] or summary[HANG] else 0


if __name__ == "__main__":
    raise SystemExit(main())
