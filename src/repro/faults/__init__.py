"""Deterministic fault injection: the adversarial untrusted runtime.

Privagic's guarantees (paper Table 3, the Iago rules) are claims about
what happens when the *untrusted* side misbehaves — yet an honest
simulator only ever exercises the honest path.  This package closes
that gap: a :class:`FaultPlan` (explicit ``--inject`` schedule or a
seeded random plan) drives a :class:`FaultInjector` that interposes on
the three untrusted surfaces of the runtime —

* in-flight channel messages (drop / duplicate / reorder / corrupt),
* return values of untrusted externals (Iago attacks),
* worker enclave lifetime (simulated AEX crash / restart-and-replay),

plus a watchdog for stalls — and the differential harness in
:mod:`repro.faults.differential` checks the only two acceptable
outcomes: a run identical to the fault-free one, or a typed
:class:`~repro.errors.RuntimeFault` naming the injection.  Never
silently wrong.
"""

from repro.faults.plan import (
    FaultEntry,
    FaultPlan,
    FaultSpecError,
)
from repro.faults.injector import FaultInjector

# The differential harness (Outcome, classify, run_outcome,
# chaos_sweep) lives in repro.faults.differential and is imported from
# there directly: it doubles as a ``python -m repro.faults.
# differential`` entry point, and re-exporting it here would make that
# invocation warn about the module being imported twice.

__all__ = [
    "FaultEntry",
    "FaultPlan",
    "FaultSpecError",
    "FaultInjector",
]
