"""Fault plans: deterministic schedules of injected failures.

A plan is a list of :class:`FaultEntry` items, each naming one
injection: *what* to do (``channel-drop``, ``iago-retval``, ...),
*where* (a channel route, an external, an enclave color) and *when*
(the n-th matching event).  Plans come from two places:

* :meth:`FaultPlan.parse` — the explicit ``--inject`` grammar::

      channel-drop:U->green:spawn:2     drop the 2nd spawn on U->green
      channel-corrupt:*:value:1         corrupt the 1st value anywhere
      iago-retval:malloc:1:replay       replay malloc's previous result
      enclave-crash:green:1             AEX the green worker, no restart
      enclave-restart:*:2               crash+replay at the 2nd delivery
      net-reset:shard0:3                reset shard0's link, 3rd socket op
      net-slow:*:2:50                   50ms stall at the 2nd socket op
      net-short:shard1:1                short write/read on shard1's link
      net-garble:shard0:4               truncate/garble received bytes

  Entries are comma-separated; ``*`` wildcards a route endpoint, a
  message kind, an external or a color.

* :meth:`FaultPlan.random` — a seeded PRNG draws a small schedule, the
  engine of the chaos differential sweep.  Same seed, same plan, same
  run: every injection is reproducible from its seed alone.

Matching is single-shot: an entry fires exactly once, at its n-th
matching event, then stays inert.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.errors import PrivagicError

#: Channel-adversary actions (the in-flight message surface).
CHANNEL_ACTIONS = ("channel-drop", "channel-dup", "channel-corrupt",
                   "channel-reorder")
#: Enclave lifetime actions (simulated AEX).
ENCLAVE_ACTIONS = ("enclave-crash", "enclave-restart")
#: The untrusted-external return-value action.
IAGO_ACTION = "iago-retval"
#: Socket-level actions of the netchaos interposition layer
#: (repro.faults.netchaos): applied to a router<->shard or
#: client<->router stream, selected by endpoint label ("shard0",
#: "client", or "*").
NET_ACTIONS = ("net-reset", "net-slow", "net-short", "net-garble")
#: How an Iago injection perturbs an integer return value.
IAGO_MODES = ("offset", "huge", "negative", "zero", "replay")
#: Protocol message kinds a channel entry can select on.
MESSAGE_KINDS = ("spawn", "value", "token")

#: Externals safe for *randomly generated* Iago entries: every one is
#: postcondition-guarded (repro.runtime.iago.GUARDS), so a corrupted
#: return is always detected.  Unguarded externals (printf & co.) can
#: be targeted explicitly, where an unused return makes the corruption
#: harmless by construction.
RANDOM_IAGO_TARGETS = ("malloc", "__privagic_alloc", "strlen",
                       "memcpy", "memset", "strncpy")


class FaultSpecError(PrivagicError):
    """A ``--inject`` spec that does not parse."""


class FaultEntry:
    """One scheduled injection (see module docstring for the grammar).

    ``matched`` counts events seen so far; the entry fires when it
    reaches ``nth`` and then never again (``fired``).
    """

    __slots__ = ("action", "src", "dst", "msg_kind", "target", "nth",
                 "mode", "matched", "fired")

    def __init__(self, action: str, src: str = "*", dst: str = "*",
                 msg_kind: str = "*", target: str = "*", nth: int = 1,
                 mode: str = "offset"):
        if nth < 1:
            raise FaultSpecError(
                f"{action}: occurrence index must be >= 1, got {nth}")
        self.action = action
        self.src = src
        self.dst = dst
        self.msg_kind = msg_kind
        self.target = target
        self.nth = nth
        self.mode = mode
        self.matched = 0
        self.fired = False

    def spec(self) -> str:
        """Render back to the ``--inject`` grammar."""
        if self.action in CHANNEL_ACTIONS:
            if self.src == "*" and self.dst == "*":
                route = "*"
            else:
                route = f"{self.src}->{self.dst}"
            return f"{self.action}:{route}:{self.msg_kind}:{self.nth}"
        if self.action == IAGO_ACTION:
            return f"{self.action}:{self.target}:{self.nth}:{self.mode}"
        if self.action == "net-slow":
            return (f"{self.action}:{self.target}:{self.nth}"
                    f":{self.mode}")
        return f"{self.action}:{self.target}:{self.nth}"

    def __repr__(self) -> str:
        state = "fired" if self.fired else f"matched={self.matched}"
        return f"<FaultEntry {self.spec()} {state}>"


def _parse_nth(action: str, text: str) -> int:
    try:
        nth = int(text)
    except ValueError:
        raise FaultSpecError(
            f"{action}: occurrence index {text!r} is not an integer")
    if nth < 1:
        raise FaultSpecError(
            f"{action}: occurrence index must be >= 1, got {nth}")
    return nth


def _parse_route(action: str, text: str):
    if text == "*":
        return "*", "*"
    if "->" not in text:
        raise FaultSpecError(
            f"{action}: route {text!r} is neither '*' nor 'SRC->DST'")
    src, _, dst = text.partition("->")
    if not src or not dst:
        raise FaultSpecError(
            f"{action}: route {text!r} has an empty endpoint")
    return src, dst


def _parse_entry(text: str) -> FaultEntry:
    parts = text.split(":")
    action = parts[0]
    if action in CHANNEL_ACTIONS:
        if len(parts) != 4:
            raise FaultSpecError(
                f"{action}: expected {action}:ROUTE:KIND:NTH, "
                f"got {text!r}")
        src, dst = _parse_route(action, parts[1])
        kind = parts[2]
        if kind != "*" and kind not in MESSAGE_KINDS:
            raise FaultSpecError(
                f"{action}: unknown message kind {kind!r} "
                f"(expected one of {', '.join(MESSAGE_KINDS)} or '*')")
        return FaultEntry(action, src=src, dst=dst, msg_kind=kind,
                          nth=_parse_nth(action, parts[3]))
    if action == IAGO_ACTION:
        if len(parts) not in (3, 4):
            raise FaultSpecError(
                f"{action}: expected {action}:EXTERNAL:NTH[:MODE], "
                f"got {text!r}")
        mode = parts[3] if len(parts) == 4 else "offset"
        if mode not in IAGO_MODES:
            raise FaultSpecError(
                f"{action}: unknown mode {mode!r} "
                f"(expected one of {', '.join(IAGO_MODES)})")
        return FaultEntry(action, target=parts[1],
                          nth=_parse_nth(action, parts[2]), mode=mode)
    if action in ENCLAVE_ACTIONS:
        if len(parts) != 3:
            raise FaultSpecError(
                f"{action}: expected {action}:COLOR:NTH, got {text!r}")
        return FaultEntry(action, target=parts[1],
                          nth=_parse_nth(action, parts[2]))
    if action in NET_ACTIONS:
        if action == "net-slow":
            if len(parts) not in (3, 4):
                raise FaultSpecError(
                    f"{action}: expected "
                    f"{action}:ENDPOINT:NTH[:MS], got {text!r}")
            ms = parts[3] if len(parts) == 4 else "25"
            try:
                if int(ms) < 1:
                    raise ValueError
            except ValueError:
                raise FaultSpecError(
                    f"{action}: delay {ms!r} is not a positive "
                    f"millisecond count")
            return FaultEntry(action, target=parts[1],
                              nth=_parse_nth(action, parts[2]),
                              mode=ms)
        if len(parts) != 3:
            raise FaultSpecError(
                f"{action}: expected {action}:ENDPOINT:NTH, "
                f"got {text!r}")
        return FaultEntry(action, target=parts[1],
                          nth=_parse_nth(action, parts[2]))
    known = ", ".join(CHANNEL_ACTIONS + (IAGO_ACTION,)
                      + ENCLAVE_ACTIONS + NET_ACTIONS)
    raise FaultSpecError(
        f"unknown fault action {action!r} (expected one of {known})")


class FaultPlan:
    """A deterministic schedule of fault injections."""

    def __init__(self, entries: Iterable[FaultEntry], seed: int = 0):
        self.entries: List[FaultEntry] = list(entries)
        self.seed = seed

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a comma-separated ``--inject`` spec."""
        entries = [
            _parse_entry(part.strip())
            for part in spec.split(",") if part.strip()]
        if not entries:
            raise FaultSpecError("empty fault spec")
        return cls(entries, seed=seed)

    @classmethod
    def random(cls, seed: int, colors: Sequence[str],
               untrusted: str = "U",
               externals: Optional[Sequence[str]] = None,
               count: Optional[int] = None) -> "FaultPlan":
        """Draw a reproducible random plan from ``seed``.

        ``colors`` are the enclave colors of the program under test
        (used for routes and crash targets); ``untrusted`` joins them
        as a route endpoint only.  Iago entries draw from
        ``externals`` (default: the guarded set, so random corruption
        is always detectable).
        """
        rng = random.Random(seed)
        colors = list(colors)
        nodes = [untrusted] + colors
        iago_pool = list(externals if externals is not None
                         else RANDOM_IAGO_TARGETS)
        actions = list(CHANNEL_ACTIONS)
        if iago_pool:
            actions.append(IAGO_ACTION)
        if colors:
            actions.extend(ENCLAVE_ACTIONS)
        entries: List[FaultEntry] = []
        for _ in range(count if count is not None
                       else rng.randint(1, 3)):
            action = rng.choice(actions)
            if action in CHANNEL_ACTIONS:
                src = rng.choice(nodes + ["*"])
                dst = rng.choice([n for n in nodes + ["*"]
                                  if n != src or n == "*"])
                kind = rng.choice(MESSAGE_KINDS + ("*",))
                entries.append(FaultEntry(
                    action, src=src, dst=dst, msg_kind=kind,
                    nth=rng.randint(1, 4)))
            elif action == IAGO_ACTION:
                entries.append(FaultEntry(
                    action, target=rng.choice(iago_pool),
                    nth=rng.randint(1, 3),
                    mode=rng.choice(IAGO_MODES)))
            else:
                entries.append(FaultEntry(
                    action, target=rng.choice(colors),
                    nth=rng.randint(1, 3)))
        return cls(entries, seed=seed)

    @classmethod
    def random_net(cls, seed: int, shards: int,
                   include_client: bool = False,
                   count: Optional[int] = None) -> "FaultPlan":
        """Draw a reproducible socket-chaos plan from ``seed``.

        Entries target the ``shard{i}`` links of a sharded router
        (plus the ``client`` side when ``include_client``); the sweep
        in :mod:`repro.faults.netchaos` keeps the default shard-only
        targeting so the admitted operation stream stays comparable
        to the clean run.  The ``*`` wildcard matches *every* wrapped
        stream at runtime — client links included — so it is only
        drawn under ``include_client``; shard-only plans name their
        shard explicitly.
        """
        rng = random.Random(seed)
        endpoints = [f"shard{i}" for i in range(shards)]
        if include_client:
            endpoints.append("client")
            endpoints.append("*")
        entries: List[FaultEntry] = []
        for _ in range(count if count is not None
                       else rng.randint(1, 3)):
            action = rng.choice(NET_ACTIONS)
            target = rng.choice(endpoints)
            nth = rng.randint(1, 6)
            if action == "net-slow":
                entries.append(FaultEntry(
                    action, target=target, nth=nth,
                    mode=str(rng.choice((10, 25, 50, 100)))))
            else:
                entries.append(FaultEntry(action, target=target,
                                          nth=nth))
        return cls(entries, seed=seed)

    def spec(self) -> str:
        return ",".join(entry.spec() for entry in self.entries)

    def fired(self) -> List[FaultEntry]:
        return [entry for entry in self.entries if entry.fired]

    def reset(self) -> None:
        """Clear the matched/fired state so the plan can drive a
        fresh run."""
        for entry in self.entries:
            entry.matched = 0
            entry.fired = False

    def __repr__(self) -> str:
        return f"<FaultPlan seed={self.seed} [{self.spec()}]>"
