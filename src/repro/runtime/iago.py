"""Iago-hardened wrappers for the untrusted external interface.

An Iago attack (paper §4; Checkoway & Shacham) has the untrusted OS /
libc return a hostile value — ``malloc`` handing back a pointer into
memory the enclave already uses, ``strlen`` reporting a wrong length —
so that correct enclave code corrupts itself.  Privagic's type system
keeps such values F-typed, and the runtime backs that up dynamically:
every external with a checkable postcondition gets a guard that
validates the return value *before* the calling context consumes it.
A violation raises :class:`~repro.errors.IagoFault` naming the
external, so injected corruption (see :mod:`repro.faults`) is detected
at the boundary instead of silently corrupting the run.

Guarded postconditions:

================  ====================================================
``malloc``        result is the base of a live allocation of at least
``__privagic_     the requested size, never handed out before (a
alloc``           replayed pointer would alias live memory)
``strlen``        result is non-negative, the slot at ``addr+result``
                  is NUL and the preceding slot is not
``memcpy`` /      result is the destination pointer
``memset`` /
``strncpy``
================  ====================================================

The checks are exposed separately from the installer so the fault
injector can re-run them against a deliberately corrupted result
(guard-outside-corruption ordering: ``check(perturb(raw))``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import IagoFault, RuntimeFault

#: Check signature: (runtime, machine, ctx, args, result) -> None,
#: raising IagoFault when the result violates the postcondition.
GuardCheck = Callable[[object, object, object, List[object], object],
                      None]


def _detected(runtime, name: str, detail: str) -> None:
    """Record the detection (injector counter + trace event), then
    raise the typed fault."""
    injector = getattr(runtime, "fault_injector", None)
    if injector is not None:
        injector.on_detect("iago-retval", {"external": name})
    tracer = getattr(runtime, "tracer", None)
    if tracer is not None:
        fault = getattr(tracer, "fault", None)
        if fault is not None:
            fault("detect", "iago-retval", {"external": name})
    raise IagoFault(f"iago check failed for @{name}: {detail}")


def _fresh_bases(machine) -> set:
    bases = getattr(machine, "_iago_fresh_bases", None)
    if bases is None:
        bases = machine._iago_fresh_bases = set()
    return bases


def _check_alloc(runtime, machine, ctx, args, result,
                 name: str, size: int) -> None:
    bases = _fresh_bases(machine)
    if not isinstance(result, int) or result <= 0:
        _detected(runtime, name, f"returned non-pointer {result!r}")
    if result in bases:
        _detected(runtime, name,
                  f"returned a previously allocated pointer {result} "
                  f"(replayed allocation would alias live memory)")
    try:
        allocation = machine.memory.allocation_at(result)
    except RuntimeFault:
        _detected(runtime, name, f"returned wild pointer {result}")
    if allocation.base != result:
        _detected(runtime, name,
                  f"returned interior pointer {result} into "
                  f"{allocation!r}")
    if allocation.size < size:
        _detected(runtime, name,
                  f"allocation of {allocation.size} slot(s) is smaller "
                  f"than the {size} requested")
    bases.add(result)


def check_malloc(runtime, machine, ctx, args, result) -> None:
    _check_alloc(runtime, machine, ctx, args, result, "malloc",
                 int(args[0]))


def check_privagic_alloc(runtime, machine, ctx, args, result) -> None:
    _check_alloc(runtime, machine, ctx, args, result,
                 "__privagic_alloc", int(args[1]))


def check_strlen(runtime, machine, ctx, args, result) -> None:
    addr = int(args[0])
    if not isinstance(result, int) or result < 0:
        _detected(runtime, "strlen", f"returned {result!r}")
    try:
        terminator = machine.memory.read(addr + result)
        last = machine.memory.read(addr + result - 1) if result else 1
    except RuntimeFault:
        _detected(runtime, "strlen",
                  f"length {result} points outside the allocation")
    if terminator != 0 or last == 0:
        _detected(runtime, "strlen",
                  f"length {result} does not match the NUL terminator")


def _check_returns_dst(runtime, machine, ctx, args, result,
                       name: str) -> None:
    if result != int(args[0]):
        _detected(runtime, name,
                  f"returned {result!r} instead of the destination "
                  f"pointer {int(args[0])}")


def check_memcpy(runtime, machine, ctx, args, result) -> None:
    _check_returns_dst(runtime, machine, ctx, args, result, "memcpy")


def check_memset(runtime, machine, ctx, args, result) -> None:
    _check_returns_dst(runtime, machine, ctx, args, result, "memset")


def check_strncpy(runtime, machine, ctx, args, result) -> None:
    _check_returns_dst(runtime, machine, ctx, args, result, "strncpy")


#: External name -> postcondition check.
GUARDS: Dict[str, GuardCheck] = {
    "malloc": check_malloc,
    "__privagic_alloc": check_privagic_alloc,
    "strlen": check_strlen,
    "memcpy": check_memcpy,
    "memset": check_memset,
    "strncpy": check_strncpy,
}


def verify_external_result(runtime, name, machine, ctx, args,
                           result) -> None:
    """Re-run the postcondition for ``name`` against ``result`` (used
    by the fault injector after corrupting a return value); a no-op
    for externals without a guard."""
    check = GUARDS.get(name)
    if check is not None:
        check(runtime, machine, ctx, args, result)


def install_iago_guards(runtime) -> None:
    """Wrap every guarded external of the runtime's machine with its
    postcondition check.  Idempotent per runtime; the wrapped handler
    passes BLOCK / PushCall sentinels through untouched."""
    machine = runtime.machine
    for name, check in GUARDS.items():
        handler = machine.externals.get(name)
        if handler is None or getattr(handler, "_iago_guard", False):
            continue

        def guarded(machine, ctx, args, _raw=handler, _check=check):
            result = _raw(machine, ctx, args)
            if isinstance(result, (int, float)):
                _check(runtime, machine, ctx, args, result)
            return result

        guarded._iago_guard = True
        machine.externals[name] = guarded
