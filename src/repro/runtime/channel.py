"""Inter-enclave communication channels.

Each pair of workers (per application thread) communicates through a
FIFO queue stored in unsafe memory (paper §7.3.2).  The original
implements them as lock-free SPSC queues [21, 28]; here a deque plays
that role, and the channel keeps the counters the cost model charges:
every message that crosses an enclave boundary is an enclave-boundary
event, far cheaper than an SDK ecall but not free (§9.3.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple


class Message:
    """A ``cont`` message carrying an F value or a synchronization
    token (§7.3.2, §7.3.3)."""

    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: object = None):
        self.kind = kind  # "value" | "token"
        self.value = value

    def __repr__(self) -> str:
        return f"<Message {self.kind} {self.value!r}>"


class SpawnMessage(Message):
    """A ``spawn`` message: start a chunk on the destination worker,
    with the F arguments (delivered as ``cont`` payloads in the paper;
    carried inline here and counted as messages)."""

    __slots__ = ("chunk", "args", "reply_to")

    def __init__(self, chunk: str, args: List[object],
                 reply_to: Optional[str]):
        super().__init__("spawn")
        self.chunk = chunk
        self.args = list(args)
        self.reply_to = reply_to

    def __repr__(self) -> str:
        return f"<SpawnMessage {self.chunk} args={self.args}>"


class Channel:
    """FIFO queue from one worker to another."""

    def __init__(self, src: str, dst: str):
        self.src = src
        self.dst = dst
        self.queue: Deque[Message] = deque()
        self.sent = 0
        self.received = 0

    def push(self, message: Message) -> None:
        self.queue.append(message)
        self.sent += 1

    def pop_kind(self, kinds: Iterable[str]) -> Optional[Message]:
        """Pop the oldest message whose kind is in ``kinds``."""
        kinds = tuple(kinds)
        for i, message in enumerate(self.queue):
            if message.kind in kinds:
                del self.queue[i]
                self.received += 1
                return message
        return None

    def __len__(self) -> int:
        return len(self.queue)

    def __repr__(self) -> str:
        return (f"<Channel {self.src}->{self.dst} "
                f"pending={len(self.queue)}>")


class ChannelMatrix:
    """All channels of one worker group (one application thread)."""

    def __init__(self):
        self.channels: Dict[Tuple[str, str], Channel] = {}

    def channel(self, src: str, dst: str) -> Channel:
        key = (src, dst)
        if key not in self.channels:
            self.channels[key] = Channel(src, dst)
        return self.channels[key]

    def incoming(self, dst: str) -> List[Channel]:
        return [c for (s, d), c in sorted(self.channels.items())
                if d == dst]

    def total_messages(self) -> int:
        return sum(c.sent for c in self.channels.values())

    def pending(self) -> int:
        return sum(len(c) for c in self.channels.values())

    def message_stats(self) -> Dict[str, int]:
        stats: Dict[str, int] = {"spawn": 0, "value": 0, "token": 0}
        for channel in self.channels.values():
            pass  # per-kind counters tracked by the runtime
        stats["total"] = self.total_messages()
        return stats
