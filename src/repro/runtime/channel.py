"""Inter-enclave communication channels.

Each pair of workers (per application thread) communicates through a
FIFO queue stored in unsafe memory (paper §7.3.2).  The original
implements them as lock-free SPSC queues [21, 28]; here per-kind
deques play that role — the runtime only ever dequeues *by kind*
(``spawn`` / ``value`` / ``token``), so keeping one deque per kind
makes every dequeue O(1) instead of a linear scan of a mixed backlog.
A monotonically increasing sequence number preserves the global FIFO
order for multi-kind receives and debugging views.

The channel also keeps the counters the cost model charges: every
message that crosses an enclave boundary is an enclave-boundary
event, far cheaper than an SDK ecall but not free (§9.3.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple


class Message:
    """A ``cont`` message carrying an F value or a synchronization
    token (§7.3.2, §7.3.3)."""

    __slots__ = ("kind", "value", "seq")

    def __init__(self, kind: str, value: object = None):
        self.kind = kind  # "value" | "token"
        self.value = value
        self.seq = 0  # assigned by Channel.push (per-channel order)

    def __repr__(self) -> str:
        return f"<Message {self.kind} {self.value!r}>"


class SpawnMessage(Message):
    """A ``spawn`` message: start a chunk on the destination worker,
    with the F arguments (delivered as ``cont`` payloads in the paper;
    carried inline here and counted as messages)."""

    __slots__ = ("chunk", "args", "reply_to")

    def __init__(self, chunk: str, args: List[object],
                 reply_to: Optional[str]):
        super().__init__("spawn")
        self.chunk = chunk
        self.args = list(args)
        self.reply_to = reply_to

    def __repr__(self) -> str:
        return f"<SpawnMessage {self.chunk} args={self.args}>"


class Channel:
    """FIFO queue from one worker to another, segregated by kind.

    Counter semantics: ``sent`` / ``received`` / ``kind_sent`` count
    *protocol messages*, not queue entries.  A spawn's F arguments are
    separate ``cont`` messages in the paper's protocol (Fig 7); they
    ride inline in the :class:`SpawnMessage` here, so pushing a spawn
    with *k* arguments counts one ``spawn`` plus *k* ``value``
    messages — keeping these totals in agreement with
    ``RuntimeStats`` (see ``tests/obs/test_differential_stats.py``).
    ``count`` / ``pending`` track queue entries and stay O(1).
    """

    def __init__(self, src: str, dst: str,
                 tracer: Optional[object] = None):
        self.src = src
        self.dst = dst
        self._queues: Dict[str, Deque[Message]] = {}
        self._seq = 0
        #: Total queued right now (kept O(1) for scheduler probes).
        self.count = 0
        self.sent = 0
        self.received = 0
        #: Messages ever pushed, by kind (feeds message_stats()).
        self.kind_sent: Dict[str, int] = {}
        #: Optional :class:`repro.obs.tracer.Tracer`; ``None`` keeps
        #: push/pop free of observer work.
        self.tracer = tracer

    def push(self, message: Message) -> None:
        self._seq += 1
        message.seq = self._seq
        kind = message.kind
        queue = self._queues.get(kind)
        if queue is None:
            queue = self._queues[kind] = deque()
        queue.append(message)
        self.count += 1
        self.sent += 1
        self.kind_sent[kind] = self.kind_sent.get(kind, 0) + 1
        if kind == "spawn":
            inline = len(message.args)
            if inline:
                # Inline F arguments are cont (value) messages on the
                # paper's wire — account them as sent values.
                self.sent += inline
                self.kind_sent["value"] = \
                    self.kind_sent.get("value", 0) + inline
        if self.tracer is not None:
            self.tracer.channel_push(self.src, self.dst, kind,
                                     self.count)

    def _delivered(self, message: Message) -> Message:
        self.count -= 1
        self.received += 1
        if message.kind == "spawn":
            self.received += len(message.args)
        if self.tracer is not None:
            self.tracer.channel_pop(self.src, self.dst, message.kind,
                                    self.count)
        return message

    def pop(self, kind: str) -> Optional[Message]:
        """Pop the oldest message of ``kind`` — O(1)."""
        queue = self._queues.get(kind)
        if not queue:
            return None
        return self._delivered(queue.popleft())

    def pop_kind(self, kinds: Iterable[str]) -> Optional[Message]:
        """Pop the oldest message whose kind is in ``kinds`` (global
        FIFO order across the given kinds)."""
        best: Optional[Deque[Message]] = None
        best_seq = 0
        for kind in kinds:
            queue = self._queues.get(kind)
            if queue and (best is None or queue[0].seq < best_seq):
                best = queue
                best_seq = queue[0].seq
        if best is None:
            return None
        return self._delivered(best.popleft())

    def pending(self, kind: Optional[str] = None) -> int:
        """Queued messages, optionally of one kind only — O(1)."""
        if kind is not None:
            queue = self._queues.get(kind)
            return len(queue) if queue else 0
        return self.count

    @property
    def queue(self) -> List[Message]:
        """Debugging view: all pending messages in arrival order."""
        merged = [m for q in self._queues.values() for m in q]
        merged.sort(key=lambda m: m.seq)
        return merged

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"<Channel {self.src}->{self.dst} "
                f"pending={len(self)}>")


class ChannelMatrix:
    """All channels of one worker group (one application thread)."""

    def __init__(self, tracer: Optional[object] = None):
        self.channels: Dict[Tuple[str, str], Channel] = {}
        self._incoming_cache: Dict[str, List[Channel]] = {}
        self.tracer = tracer

    def channel(self, src: str, dst: str) -> Channel:
        key = (src, dst)
        ch = self.channels.get(key)
        if ch is None:
            ch = self.channels[key] = Channel(src, dst, self.tracer)
            self._incoming_cache.pop(dst, None)
        return ch

    def set_tracer(self, tracer: Optional[object]) -> None:
        """Attach/detach a tracer on this matrix and every existing
        channel (new channels inherit it)."""
        self.tracer = tracer
        for ch in self.channels.values():
            ch.tracer = tracer

    def incoming(self, dst: str) -> List[Channel]:
        cached = self._incoming_cache.get(dst)
        if cached is None:
            cached = [c for (s, d), c in sorted(self.channels.items())
                      if d == dst]
            self._incoming_cache[dst] = cached
        return cached

    def has_pending(self, dst: str, kind: Optional[str] = None) -> bool:
        """Scheduler fast path: is anything queued toward ``dst``
        (optionally of one kind), without dequeuing?"""
        for ch in self.incoming(dst):
            if kind is None:
                if len(ch):
                    return True
            elif ch.pending(kind):
                return True
        return False

    def total_messages(self) -> int:
        return sum(c.sent for c in self.channels.values())

    def pending(self) -> int:
        return sum(len(c) for c in self.channels.values())

    def message_stats(self) -> Dict[str, int]:
        stats: Dict[str, int] = {"spawn": 0, "value": 0, "token": 0}
        for channel in self.channels.values():
            for kind, count in channel.kind_sent.items():
                stats[kind] = stats.get(kind, 0) + count
        stats["total"] = self.total_messages()
        return stats
