"""Inter-enclave communication channels.

Each pair of workers (per application thread) communicates through a
FIFO queue stored in unsafe memory (paper §7.3.2).  The original
implements them as lock-free SPSC queues [21, 28]; here per-kind
deques play that role — the runtime only ever dequeues *by kind*
(``spawn`` / ``value`` / ``token``), so keeping one deque per kind
makes every dequeue O(1) instead of a linear scan of a mixed backlog.
A monotonically increasing sequence number preserves the global FIFO
order for multi-kind receives and debugging views.

The channel also keeps the counters the cost model charges: every
message that crosses an enclave boundary is an enclave-boundary
event, far cheaper than an SDK ecall but not free (§9.3.2).

Because the queues live in *unsafe* memory, the untrusted side can
drop, duplicate, reorder or rewrite anything in flight.  The runtime
therefore authenticates every message: the sender stamps a per-kind
sequence number and an authentication tag over the payload (standing
in for the MAC of an authenticated channel — the adversary can mutate
the message but cannot forge a matching tag), and the receiver
verifies both on every dequeue.  A mismatch raises
:class:`~repro.errors.IagoFault` naming the channel, so injected
corruption is detected at the boundary instead of being absorbed into
a wrong answer.  The ``adversary`` hook (see :mod:`repro.faults`) is
how the chaos harness interposes on in-flight messages; like
``tracer`` it is ``None`` on the honest fast path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.errors import IagoFault


def _payload_key(message: "Message") -> object:
    """A hashable digest-input for the message payload."""
    if message.kind == "spawn":
        args = tuple(tuple(a) if isinstance(a, list) else a
                     for a in message.args)
        return (message.chunk, args, message.reply_to)
    value = message.value
    if isinstance(value, list):
        value = tuple(value)
    try:
        hash(value)
    except TypeError:
        value = repr(value)
    return value


def _auth_tag(src: str, dst: str, kind: str, kseq: int,
              payload: object) -> int:
    """Authentication tag over one message.  A stand-in for the MAC of
    an authenticated channel: the simulated adversary may rewrite the
    payload but (by construction) never recomputes the tag."""
    return hash((src, dst, kind, kseq, payload))


class Message:
    """A ``cont`` message carrying an F value or a synchronization
    token (§7.3.2, §7.3.3)."""

    __slots__ = ("kind", "value", "seq", "kseq", "auth")

    def __init__(self, kind: str, value: object = None):
        self.kind = kind  # "value" | "token"
        self.value = value
        self.seq = 0  # assigned by Channel.push (per-channel order)
        self.kseq = 0  # per-(channel, kind) stream position
        self.auth = None  # authentication tag, stamped by push

    def __repr__(self) -> str:
        return f"<Message {self.kind} {self.value!r}>"


class SpawnMessage(Message):
    """A ``spawn`` message: start a chunk on the destination worker,
    with the F arguments (delivered as ``cont`` payloads in the paper;
    carried inline here and counted as messages)."""

    __slots__ = ("chunk", "args", "reply_to")

    def __init__(self, chunk: str, args: List[object],
                 reply_to: Optional[str]):
        super().__init__("spawn")
        self.chunk = chunk
        self.args = list(args)
        self.reply_to = reply_to

    def __repr__(self) -> str:
        return f"<SpawnMessage {self.chunk} args={self.args}>"


class Channel:
    """FIFO queue from one worker to another, segregated by kind.

    Counter semantics: ``sent`` / ``received`` / ``kind_sent`` count
    *protocol messages*, not queue entries.  A spawn's F arguments are
    separate ``cont`` messages in the paper's protocol (Fig 7); they
    ride inline in the :class:`SpawnMessage` here, so pushing a spawn
    with *k* arguments counts one ``spawn`` plus *k* ``value``
    messages — keeping these totals in agreement with
    ``RuntimeStats`` (see ``tests/obs/test_differential_stats.py``).
    ``count`` / ``pending`` track queue entries and stay O(1).
    """

    def __init__(self, src: str, dst: str,
                 tracer: Optional[object] = None):
        self.src = src
        self.dst = dst
        self._queues: Dict[str, Deque[Message]] = {}
        self._seq = 0
        #: Per-kind send/receive stream positions backing the
        #: authentication check (drop = gap, duplicate = replay).
        self._send_kseq: Dict[str, int] = {}
        self._recv_kseq: Dict[str, int] = {}
        #: Total queued right now (kept O(1) for scheduler probes).
        self.count = 0
        self.sent = 0
        self.received = 0
        #: Messages ever pushed, by kind (feeds message_stats()).
        self.kind_sent: Dict[str, int] = {}
        #: Optional :class:`repro.obs.tracer.Tracer`; ``None`` keeps
        #: push/pop free of observer work.
        self.tracer = tracer
        #: Optional in-flight adversary (:class:`repro.faults.
        #: FaultInjector`): consulted between the authenticated send
        #: and the enqueue, exactly the window the untrusted memory
        #: gives a real attacker.  ``None`` on the honest fast path.
        self.adversary = None

    def push(self, message: Message) -> None:
        kind = message.kind
        self._seq += 1
        message.seq = self._seq
        kseq = self._send_kseq.get(kind, 0) + 1
        self._send_kseq[kind] = kseq
        message.kseq = kseq
        message.auth = _auth_tag(self.src, self.dst, kind, kseq,
                                 _payload_key(message))
        self.sent += 1
        self.kind_sent[kind] = self.kind_sent.get(kind, 0) + 1
        if kind == "spawn":
            inline = len(message.args)
            if inline:
                # Inline F arguments are cont (value) messages on the
                # paper's wire — account them as sent values.
                self.sent += inline
                self.kind_sent["value"] = \
                    self.kind_sent.get("value", 0) + inline
        if self.adversary is None:
            self._enqueue(message)
        else:
            # Counters above describe what the sender *sent*; the
            # adversary decides what actually lands in the queue.
            for delivery in self.adversary.on_send(self, message):
                self._enqueue(delivery)

    def _enqueue(self, message: Message) -> None:
        kind = message.kind
        queue = self._queues.get(kind)
        if queue is None:
            queue = self._queues[kind] = deque()
        queue.append(message)
        self.count += 1
        if self.tracer is not None:
            self.tracer.channel_push(self.src, self.dst, kind,
                                     self.count)

    def _fault(self, reason: str, kind: str, detail: str) -> None:
        """Record a detected channel fault (adversary counter + trace
        event), then raise :class:`IagoFault`."""
        adversary = self.adversary
        if adversary is not None:
            on_detect = getattr(adversary, "on_detect", None)
            if on_detect is not None:
                on_detect(f"channel-{reason}",
                          {"channel": f"{self.src}->{self.dst}",
                           "kind": kind})
        tracer = self.tracer
        if tracer is not None:
            fault = getattr(tracer, "fault", None)
            if fault is not None:
                fault("detect", f"channel-{reason}",
                      {"channel": f"{self.src}->{self.dst}",
                       "kind": kind})
        raise IagoFault(
            f"channel {self.src}->{self.dst}: {detail}")

    def _delivered(self, message: Message) -> Message:
        kind = message.kind
        self.count -= 1
        expected = self._recv_kseq.get(kind, 0) + 1
        if message.auth != _auth_tag(self.src, self.dst, kind,
                                     message.kseq,
                                     _payload_key(message)):
            self._fault(
                "corrupt", kind,
                f"{kind} message #{message.kseq} failed "
                f"authentication (corrupted in transit)")
        if message.kseq != expected:
            if message.kseq < expected:
                self._fault(
                    "replay", kind,
                    f"{kind} message #{message.kseq} replayed "
                    f"(already delivered, expected #{expected})")
            self._fault(
                "gap", kind,
                f"{kind} stream jumped to #{message.kseq} "
                f"(expected #{expected}: a message was dropped or "
                f"reordered)")
        self._recv_kseq[kind] = expected
        self.received += 1
        if kind == "spawn":
            self.received += len(message.args)
        if self.tracer is not None:
            self.tracer.channel_pop(self.src, self.dst, kind,
                                    self.count)
        return message

    def pop(self, kind: str) -> Optional[Message]:
        """Pop the oldest message of ``kind`` — O(1)."""
        queue = self._queues.get(kind)
        if not queue:
            return None
        return self._delivered(queue.popleft())

    def pop_kind(self, kinds: Iterable[str]) -> Optional[Message]:
        """Pop the oldest message whose kind is in ``kinds`` (global
        FIFO order across the given kinds)."""
        best: Optional[Deque[Message]] = None
        best_seq = 0
        for kind in kinds:
            queue = self._queues.get(kind)
            if queue and (best is None or queue[0].seq < best_seq):
                best = queue
                best_seq = queue[0].seq
        if best is None:
            return None
        return self._delivered(best.popleft())

    def pending(self, kind: Optional[str] = None) -> int:
        """Queued messages, optionally of one kind only — O(1)."""
        if kind is not None:
            queue = self._queues.get(kind)
            return len(queue) if queue else 0
        return self.count

    @property
    def queue(self) -> List[Message]:
        """Debugging view: all pending messages in arrival order.

        Always a fresh snapshot list — mutating it never changes the
        channel's internal queues (observers and injectors must go
        through ``push``/the adversary hook to affect delivery).  The
        contained :class:`Message` objects are the live ones; tampering
        with their payloads is exactly what the authentication check in
        :meth:`_delivered` exists to catch.
        """
        merged = [m for q in self._queues.values() for m in q]
        merged.sort(key=lambda m: m.seq)
        return merged

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (f"<Channel {self.src}->{self.dst} "
                f"pending={len(self)}>")


class ChannelMatrix:
    """All channels of one worker group (one application thread)."""

    def __init__(self, tracer: Optional[object] = None):
        self.channels: Dict[Tuple[str, str], Channel] = {}
        self._incoming_cache: Dict[str, Tuple[Channel, ...]] = {}
        self.tracer = tracer
        self.adversary = None

    def channel(self, src: str, dst: str) -> Channel:
        key = (src, dst)
        ch = self.channels.get(key)
        if ch is None:
            ch = self.channels[key] = Channel(src, dst, self.tracer)
            ch.adversary = self.adversary
            self._incoming_cache.pop(dst, None)
        return ch

    def set_tracer(self, tracer: Optional[object]) -> None:
        """Attach/detach a tracer on this matrix and every existing
        channel (new channels inherit it)."""
        self.tracer = tracer
        for ch in self.channels.values():
            ch.tracer = tracer

    def set_adversary(self, adversary: Optional[object]) -> None:
        """Attach/detach a channel adversary (chaos harness) on this
        matrix and every existing channel (new channels inherit it)."""
        self.adversary = adversary
        for ch in self.channels.values():
            ch.adversary = adversary

    def incoming(self, dst: str) -> Tuple[Channel, ...]:
        """Channels delivering to ``dst``, as an immutable tuple — the
        cache is handed out directly on the scheduler fast path, so it
        must not be mutable by callers."""
        cached = self._incoming_cache.get(dst)
        if cached is None:
            cached = tuple(c for (s, d), c
                           in sorted(self.channels.items()) if d == dst)
            self._incoming_cache[dst] = cached
        return cached

    def has_pending(self, dst: str, kind: Optional[str] = None) -> bool:
        """Scheduler fast path: is anything queued toward ``dst``
        (optionally of one kind), without dequeuing?"""
        for ch in self.incoming(dst):
            if kind is None:
                if len(ch):
                    return True
            elif ch.pending(kind):
                return True
        return False

    def total_messages(self) -> int:
        return sum(c.sent for c in self.channels.values())

    def pending(self) -> int:
        return sum(len(c) for c in self.channels.values())

    def message_stats(self) -> Dict[str, int]:
        stats: Dict[str, int] = {"spawn": 0, "value": 0, "token": 0}
        for channel in self.channels.values():
            for kind, count in channel.kind_sent.items():
                stats[kind] = stats.get(kind, 0) + count
        stats["total"] = self.total_messages()
        return stats
