"""Worker contexts, trampolines and the partitioned-program scheduler.

For each application thread, the runtime runs a *worker* in each
enclave (paper §7.3).  Workers are idle interpreter contexts in
enclave mode; a ``spawn`` message makes a worker invoke a chunk, and a
context blocked in ``wait`` runs incoming spawns as trampolines before
retrying — exactly the nested execution of Figure 7, where ``g.U``
runs inside ``main.U``'s ``wait()``.

The runtime installs the ``__privagic_*`` externals the partitioner
emits:

=====================  ==========================================
``__privagic_spawn``   enqueue a spawn (+ F-argument conts) to the
                       worker owning the chunk's color
``__privagic_send``    send an F value (``cont``)
``__privagic_recv``    wait for an F value from a given chunk,
                       running trampolines while blocked
``__privagic_token_*`` synchronization-barrier tokens (§7.3.3)
=====================  ==========================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DeadlockFault,
    RuntimeFault,
    WatchdogTimeout,
)
from repro.core.partition import PartitionedProgram
from repro.ir.interp import (
    BLOCK,
    ExecutionContext,
    Machine,
    PushCall,
)
from repro.runtime.channel import ChannelMatrix, Message, SpawnMessage
from repro.runtime.iago import install_iago_guards


def _parked_runnable(parked) -> bool:
    """Could a context parked on this wait make progress now?

    ``_wait_for`` succeeds in exactly two ways: the awaited
    ``(src, kind)`` message arrives, or a spawn toward its color is
    queued (run as a trampoline).  Any other queued message — e.g. a
    token toward this color that the wait is not selecting on — does
    not unblock it, so it must not wake the context."""
    group, me, src, kind = parked
    matrix = group.matrix
    if matrix.channel(src, me).pending(kind):
        return True
    return matrix.has_pending(me, "spawn")


class WorkerGroup:
    """The workers and channels of one application thread."""

    def __init__(self, runtime: "PrivagicRuntime", group_id: int):
        self.runtime = runtime
        self.group_id = group_id
        self.matrix = ChannelMatrix(runtime.tracer)
        if runtime.fault_injector is not None:
            self.matrix.set_adversary(runtime.fault_injector)
        #: color -> worker context (the untrusted "worker" is the
        #: application thread itself and is not stored here)
        self.workers: Dict[str, ExecutionContext] = {}

    def worker(self, color: str) -> ExecutionContext:
        if color not in self.workers:
            machine = self.runtime.machine
            ctx = machine.new_context(None, (), mode=color,
                                      name=f"worker.{self.group_id}.{color}")
            ctx.keep_alive = True
            ctx.privagic_group = self
            machine.contexts.append(ctx)
            self.workers[color] = ctx
        return self.workers[color]


class RuntimeStats:
    """Counters feeding the evaluation (message = boundary crossing).

    These totals agree by construction with the per-channel
    ``kind_sent`` counts (every increment here accompanies a channel
    push) and with what :meth:`repro.obs.observe.Observability.
    publish` exports; ``tests/obs/test_differential_stats.py`` keeps
    the three layers honest.
    """

    def __init__(self):
        self.spawns = 0
        self.values = 0
        self.tokens = 0
        self.boundary_crossings = 0
        self.trampoline_runs = 0
        #: Per-chunk profile: chunk name -> counts of spawns, inline
        #: F arguments, trampoline runs and replies.
        self.per_chunk: Dict[str, Dict[str, int]] = {}

    @property
    def messages(self) -> int:
        return self.spawns + self.values + self.tokens

    def chunk_event(self, chunk: str, key: str, n: int = 1) -> None:
        profile = self.per_chunk.get(chunk)
        if profile is None:
            profile = self.per_chunk[chunk] = {
                "spawns": 0, "f_args": 0, "trampolines": 0,
                "replies": 0}
        profile[key] += n

    def as_dict(self) -> Dict[str, int]:
        return {
            "spawns": self.spawns,
            "values": self.values,
            "tokens": self.tokens,
            "messages": self.messages,
            "boundary_crossings": self.boundary_crossings,
            "trampoline_runs": self.trampoline_runs,
        }


class PrivagicRuntime:
    """Loads a :class:`PartitionedProgram` and runs it."""

    def __init__(self, program: PartitionedProgram,
                 externals: Optional[dict] = None,
                 max_steps: int = 5_000_000,
                 engine: Optional[str] = None,
                 watchdog_steps: Optional[int] = None):
        self.program = program
        self.untrusted = program.untrusted
        self.stats = RuntimeStats()
        self.max_steps = max_steps
        #: Optional per-context step budget.  ``max_steps`` bounds the
        #: whole run; this bounds each context, so one spinning worker
        #: is reported as such instead of exhausting the global budget.
        self.watchdog_steps = watchdog_steps
        #: Optional :class:`repro.obs.tracer.Tracer`, installed by
        #: :class:`repro.obs.observe.Observability`; ``None`` keeps
        #: every runtime path free of observer work.
        self.tracer = None
        #: Optional :class:`repro.faults.FaultInjector` (the chaos
        #: harness), installed by ``FaultInjector.attach``; ``None``
        #: on the honest path.
        self.fault_injector = None
        self._groups: Dict[int, WorkerGroup] = {}
        self._next_group = 1
        #: Channel traffic of worker groups already retired by
        #: :meth:`retire_finished` — merged into :meth:`channel_traffic`
        #: so a long-lived serving runtime still reports its full
        #: measured history.
        self._retired_traffic: Dict[str, Dict[str, int]] = {}
        ext = {
            "__privagic_spawn": self._ext_spawn,
            "__privagic_send": self._ext_send,
            "__privagic_recv": self._ext_recv,
            "__privagic_token_send": self._ext_token_send,
            "__privagic_token_recv": self._ext_token_recv,
            "thread_create": self._ext_thread_create,
        }
        if externals:
            ext.update(externals)
        self.machine = Machine(program.all_modules(), ext,
                               engine=engine)
        # Postcondition guards on the untrusted externals (Iago
        # defense, see repro.runtime.iago).  Installed unconditionally:
        # the honest handlers always pass, and a fault injector relies
        # on them to *detect* the corruption it introduces.
        install_iago_guards(self)

    # -- group / color helpers ----------------------------------------------------

    def group_of(self, ctx: ExecutionContext) -> WorkerGroup:
        group = getattr(ctx, "privagic_group", None)
        if group is None:
            group = WorkerGroup(self, self._next_group)
            self._next_group += 1
            self._groups[group.group_id] = group
            ctx.privagic_group = group
        return group

    def color_of(self, ctx: ExecutionContext) -> str:
        return ctx.mode if ctx.mode is not None else self.untrusted

    # -- externals -------------------------------------------------------------------

    def _ext_spawn(self, machine: Machine, ctx: ExecutionContext, args):
        chunk = machine.read_cstring(int(args[0]))
        reply = machine.read_cstring(int(args[1]))
        f_args = list(args[2:])
        group = self.group_of(ctx)
        dst = self.program.chunk_colors.get(chunk)
        if dst is None:
            raise RuntimeFault(f"spawn of unknown chunk {chunk!r}")
        src = self.color_of(ctx)
        reply_to = src if reply else None
        group.matrix.channel(src, dst).push(
            SpawnMessage(chunk, f_args, reply_to))
        self.stats.spawns += 1
        # Each F argument is a cont message in the paper's protocol.
        self.stats.values += len(f_args)
        self.stats.chunk_event(chunk, "spawns")
        if f_args:
            self.stats.chunk_event(chunk, "f_args", len(f_args))
        self._count_crossing(src, dst, 1 + len(f_args))
        if self.tracer is not None:
            self.tracer.spawn(chunk, src, dst, len(f_args))
        # Make sure the destination worker exists.
        if dst != self.untrusted:
            group.worker(dst)
        return None

    def _ext_send(self, machine: Machine, ctx: ExecutionContext, args):
        dst = machine.read_cstring(int(args[0]))
        value = args[1]
        src = self.color_of(ctx)
        group = self.group_of(ctx)
        group.matrix.channel(src, dst).push(Message("value", value))
        self.stats.values += 1
        self._count_crossing(src, dst, 1)
        return None

    def _ext_recv(self, machine: Machine, ctx: ExecutionContext, args):
        src = machine.read_cstring(int(args[0]))
        return self._wait_for(ctx, src, "value")

    def _ext_token_send(self, machine: Machine, ctx: ExecutionContext,
                        args):
        dst = machine.read_cstring(int(args[0]))
        src = self.color_of(ctx)
        self.group_of(ctx).matrix.channel(src, dst).push(
            Message("token"))
        self.stats.tokens += 1
        self._count_crossing(src, dst, 1)
        return None

    def _ext_token_recv(self, machine: Machine, ctx: ExecutionContext,
                        args):
        src = machine.read_cstring(int(args[0]))
        result = self._wait_for(ctx, src, "token")
        if result is BLOCK:
            return BLOCK
        if isinstance(result, PushCall):
            return result
        return None

    def _wait_for(self, ctx: ExecutionContext, src: str, kind: str):
        """Wait for a message of ``kind`` from ``src``; while blocked,
        run incoming spawns as trampolines (Fig 7).

        A context that blocks here is *parked* on the exact wait —
        the awaited ``(src, kind)`` message and incoming spawns are
        the only two things that can unblock it, so the scheduler
        skips it until one of them is queued (retrying earlier could
        only re-produce BLOCK, since the wait's outcome depends
        solely on the channel contents)."""
        group = self.group_of(ctx)
        me = self.color_of(ctx)
        message = group.matrix.channel(src, me).pop(kind)
        if message is not None:
            ctx.privagic_parked = None
            return message.value
        trampoline = self._pop_spawn(group, me)
        if trampoline is not None:
            ctx.privagic_parked = None
            return trampoline
        ctx.privagic_parked = (group, me, src, kind)
        return BLOCK

    def _pop_spawn(self, group: WorkerGroup,
                   me: str) -> Optional[PushCall]:
        for channel in group.matrix.incoming(me):
            message = channel.pop("spawn")
            if message is not None:
                return self._trampoline(group, message)
        return None

    def _trampoline(self, group: WorkerGroup,
                    message: SpawnMessage) -> PushCall:
        """Build the chunk invocation for a spawn message: slot the
        cont-carried F arguments into the chunk's signature and, if a
        reply is expected, send the return value back (Fig 7: c5).

        A spawn whose payload does not match the chunk's signature is
        a protocol violation (a buggy partitioner, or a forged message
        in unsafe memory); it faults loudly instead of being papered
        over with zero-padding or silent truncation.
        """
        chunk = message.chunk
        chunk_fn = self.machine.function_named(chunk)
        me = self.program.chunk_colors.get(chunk, self.untrusted)
        arg_colors = self.program.chunk_args.get(chunk, ())
        if len(arg_colors) != len(chunk_fn.args):
            raise RuntimeFault(
                f"spawn of chunk {chunk!r}: partition metadata lists "
                f"{len(arg_colors)} argument color(s) but "
                f"@{chunk_fn.name} takes {len(chunk_fn.args)}")
        f_slots = sum(1 for color in arg_colors if color == "F")
        if len(message.args) != f_slots:
            raise RuntimeFault(
                f"spawn of chunk {chunk!r}: carries "
                f"{len(message.args)} F value(s) but the signature "
                f"has {f_slots} F slot(s)")
        if self.fault_injector is not None:
            # Enclave fault injection fires at the spawn-delivery
            # boundary — before the chunk's first instruction — so a
            # restart can replay the exact same spawn (raises
            # EnclaveCrash when the worker stays down).
            self.fault_injector.on_spawn_delivery(me, chunk)
        f_values = list(message.args)
        call_args: List[object] = [
            f_values.pop(0) if color == "F" else 0
            for color in arg_colors]
        push = PushCall(chunk_fn, call_args, replay=True)
        self.stats.trampoline_runs += 1
        self.stats.chunk_event(chunk, "trampolines")
        if self.tracer is not None:
            self.tracer.trampoline(chunk, me)
        if message.reply_to is not None:
            dst = message.reply_to

            def reply(result, dst=dst, me=me, group=group):
                group.matrix.channel(me, dst).push(
                    Message("value", result))
                self.stats.values += 1
                self.stats.chunk_event(chunk, "replies")
                self._count_crossing(me, dst, 1)
                if self.tracer is not None:
                    self.tracer.reply(chunk, me, dst)

            push.on_return = reply
        return push

    def _ext_thread_create(self, machine: Machine,
                           ctx: ExecutionContext, args):
        """Partitioned programs create application threads through the
        interface functions; each new thread gets its own worker group.
        """
        fn = machine.function_at(int(args[0]))
        arg = args[1] if len(args) > 1 else 0
        child = machine.spawn(fn, [arg], mode=None,
                              name=f"{ctx.name}.child")
        # A fresh group: workers are per application thread (§7.3).
        self.group_of(child)
        return child.ctx_id

    def _count_crossing(self, src: str, dst: str, count: int) -> None:
        if src != dst:
            self.stats.boundary_crossings += count

    def message_stats(self) -> Dict[str, int]:
        """Per-kind protocol message totals aggregated over every
        worker group's channel matrix (one matrix per application
        thread)."""
        totals: Dict[str, int] = {"spawn": 0, "value": 0, "token": 0,
                                  "total": 0}
        for group in self._groups.values():
            for kind, count in group.matrix.message_stats().items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    def channel_traffic(self) -> Dict[str, Dict[str, int]]:
        """Measured per-channel message counts, aggregated over every
        worker group: ``{"src->dst": {kind: count}}``.  This is the
        raw feedback the profile-guided placement policy consumes
        (:func:`repro.core.placement.profile_from_runtime`)."""
        traffic: Dict[str, Dict[str, int]] = {
            channel: dict(kinds)
            for channel, kinds in self._retired_traffic.items()}
        for group in self._groups.values():
            self._merge_traffic(traffic, group)
        return traffic

    @staticmethod
    def _merge_traffic(traffic: Dict[str, Dict[str, int]],
                       group) -> None:
        for (src, dst), channel in group.matrix.channels.items():
            per = traffic.setdefault(f"{src}->{dst}", {})
            for kind, count in channel.kind_sent.items():
                per[kind] = per.get(kind, 0) + count

    # -- scheduling ---------------------------------------------------------------------

    def start(self, entry: str, args: Sequence[object] = ()) \
            -> ExecutionContext:
        """Spawn the interface function of ``entry`` on a fresh
        application thread (normal mode)."""
        ctx = self.machine.spawn(entry, list(args), mode=None,
                                 name=f"app.{entry}")
        self.group_of(ctx)
        return ctx

    def run(self, entry: str = "main",
            args: Sequence[object] = ()) -> object:
        """Run ``entry`` to completion and return its result."""
        main = self.start(entry, args)
        self.run_until_done(main)
        return main.result

    #: Scheduling quantum: a runnable context keeps stepping for up
    #: to this many steps before the next context is scheduled
    #: (bursts also end early on BLOCK, finish, or a spawn).  The
    #: real runtime runs workers on concurrent threads (§7.3), so no
    #: particular interleaving is promised — the quantum only has to
    #: be deterministic and bounded, so that a context spinning on
    #: shared memory cannot starve the others forever.
    BURST = 256

    def run_until_done(self, main: ExecutionContext) -> None:
        steps = 0
        contexts = self.machine.contexts
        while not self._quiescent(main):
            progressed = False
            snapshot = list(contexts)
            for ctx in snapshot:
                if ctx.finished:
                    continue
                if ctx.idle:
                    if not getattr(ctx, "keep_alive", False):
                        continue
                    group = getattr(ctx, "privagic_group", None)
                    if group is None:
                        continue
                    me = self.color_of(ctx)
                    # Fast path: an idle worker with no queued spawn
                    # cannot make progress — skip it without touching
                    # its channels.
                    if not group.matrix.has_pending(me, "spawn"):
                        continue
                    push = self._pop_spawn(group, me)
                    if push is not None:
                        ctx.push_external_call(push.function, push.args)
                        if push.on_return is not None:
                            ctx.stack[-1].on_return = push.on_return
                        progressed = True
                    continue
                parked = getattr(ctx, "privagic_parked", None)
                if parked is not None and not _parked_runnable(parked):
                    # Fast path: a parked context whose awaited
                    # message hasn't arrived (and with no spawn to
                    # trampoline) cannot make progress — stepping it
                    # would only re-produce BLOCK.
                    continue
                before = ctx.steps
                ctx.step()
                steps += 1
                if steps > self.max_steps:
                    self._global_timeout()
                if ctx.steps > before or ctx.finished:
                    progressed = True
                    if not ctx.finished:
                        burst, _advanced = ctx.run_burst(
                            min(self.BURST, self.max_steps - steps + 1),
                            contexts)
                        steps += burst
                        if steps > self.max_steps:
                            self._global_timeout()
                if (self.watchdog_steps is not None
                        and not ctx.finished
                        and ctx.steps > self.watchdog_steps):
                    self._watchdog_timeout(ctx)
            if not progressed:
                self._report_deadlock()

    def retire_finished(self) -> int:
        """Drop finished application contexts and the worker groups
        that served them; returns the number of contexts retired.

        Each :meth:`run` leaves its finished application context and
        its (idle, ``keep_alive``) workers in ``machine.contexts``.
        One-shot callers never notice, but a long-lived host driving
        thousands of runs on one runtime (the repro.serve engine)
        would scan an ever-growing context list on every scheduler
        round.  A group is retired only when no live context belongs
        to it and its channels are drained, so calling this between
        runs is always safe."""
        live_groups = set()
        kept: List[ExecutionContext] = []
        retired = 0
        contexts = self.machine.contexts
        for ctx in contexts:
            if getattr(ctx, "keep_alive", False):
                continue        # workers: decided per group below
            if ctx.finished:
                retired += 1
                continue
            kept.append(ctx)
            group = getattr(ctx, "privagic_group", None)
            if group is not None:
                live_groups.add(group.group_id)
        for group_id in sorted(self._groups):
            group = self._groups[group_id]
            if group_id in live_groups or group.matrix.pending():
                kept.extend(group.workers.values())
            else:
                retired += len(group.workers)
                self._merge_traffic(self._retired_traffic, group)
                del self._groups[group_id]
        contexts[:] = kept
        return retired

    def _quiescent(self, main: ExecutionContext) -> bool:
        """Done when the application thread finished, every worker is
        idle and no message is in flight."""
        if not main.finished:
            return False
        for ctx in self.machine.contexts:
            if not ctx.finished and not ctx.idle:
                return False
        for group in self._groups.values():
            if group.matrix.pending():
                return False
        return True

    def _note_detect(self, kind: str, args: Dict[str, object]) -> None:
        """Record a runtime-side fault detection with the injector
        counters and the tracer before a typed fault is raised."""
        injector = self.fault_injector
        if injector is not None:
            injector.on_detect(kind, args)
        tracer = self.tracer
        if tracer is not None:
            fault = getattr(tracer, "fault", None)
            if fault is not None:
                fault("detect", kind, args)

    def _context_lines(self) -> List[str]:
        """One diagnostic line per live context: current location,
        step count, and — for parked contexts — the awaited
        ``(src, kind)`` that would unblock them."""
        lines: List[str] = []
        for ctx in self.machine.contexts:
            if ctx.finished:
                continue
            where = "idle"
            if ctx.stack:
                frame = ctx.stack[-1]
                instr = (frame.block.instructions[frame.index]
                         if frame.index < len(frame.block.instructions)
                         else None)
                where = (f"@{frame.function.name}:{frame.block.name} "
                         f"{instr.opcode if instr else '?'}")
            parked = getattr(ctx, "privagic_parked", None)
            if parked is not None:
                _group, _me, src, kind = parked
                where += f" [parked on ({src!r}, {kind!r})]"
            lines.append(f"  {ctx.name} mode={ctx.mode} "
                         f"steps={ctx.steps}: {where}")
        return lines

    def _channel_lines(self) -> List[str]:
        """One diagnostic line per non-empty channel: pending counts
        broken down by kind, plus the head of the queue."""
        lines: List[str] = []
        for group in self._groups.values():
            for _key, channel in sorted(group.matrix.channels.items()):
                if len(channel):
                    by_kind = {
                        kind: channel.pending(kind)
                        for kind in ("spawn", "value", "token")
                        if channel.pending(kind)}
                    lines.append(
                        f"  pending {channel!r} by-kind={by_kind}: "
                        f"head={channel.queue[:3]}")
        return lines

    def _global_timeout(self) -> None:
        self._note_detect("watchdog", {"scope": "run"})
        raise WatchdogTimeout(
            f"partitioned run exceeded {self.max_steps} steps")

    def _watchdog_timeout(self, ctx: ExecutionContext) -> None:
        self._note_detect("watchdog", {"scope": "context",
                                       "context": ctx.name})
        lines = [f"context {ctx.name} exceeded its watchdog budget of "
                 f"{self.watchdog_steps} step(s):"]
        lines += self._context_lines()
        lines += self._channel_lines()
        raise WatchdogTimeout("\n".join(lines))

    def _report_deadlock(self) -> None:
        self._note_detect("deadlock", {})
        lines = ["partitioned execution deadlocked:"]
        lines += self._context_lines()
        lines += self._channel_lines()
        raise DeadlockFault("\n".join(lines))


def run_partitioned(program: PartitionedProgram, entry: str = "main",
                    args: Sequence[object] = (),
                    externals: Optional[dict] = None,
                    max_steps: int = 5_000_000,
                    engine: Optional[str] = None,
                    observability=None,
                    watchdog_steps: Optional[int] = None,
                    fault_injector=None
                    ) -> Tuple[object, PrivagicRuntime]:
    """Convenience wrapper: load, run, return (result, runtime).

    ``engine`` picks the interpreter engine ("decoded" or "legacy");
    None uses ``REPRO_ENGINE`` or the default (see repro.ir.interp).
    ``observability`` is an optional :class:`repro.obs.Observability`
    attached for the duration of the run and detached afterwards
    (also on error), so its trace and metrics cover exactly this run.
    ``fault_injector`` is an optional :class:`repro.faults.
    FaultInjector` attached the same way (after observability, so its
    events reach the tracer).
    """
    runtime = PrivagicRuntime(program, externals, max_steps, engine,
                              watchdog_steps=watchdog_steps)
    if observability is not None:
        observability.attach(runtime)
    if fault_injector is not None:
        fault_injector.attach(runtime)
    try:
        result = runtime.run(entry, args)
    finally:
        if fault_injector is not None:
            fault_injector.detach()
        if observability is not None:
            observability.detach()
    return result, runtime
