"""repro.runtime — the Privagic runtime (paper §5, §7.3).

The runtime supposes a memory shared between the enclaves and the
unsafe code, and offers inter-enclave communication primitives:

* :mod:`repro.runtime.channel` — the lock-free FIFO queues between
  workers, with message accounting for the cost model;
* :mod:`repro.runtime.executor` — per-enclave worker contexts (one per
  enclave per application thread), spawn/cont/wait message handling,
  trampolines, and the scheduler driving a partitioned program.

High-level entry point: :func:`repro.runtime.executor.run_partitioned`.
"""

from repro.runtime.channel import Channel, Message, SpawnMessage
from repro.runtime.executor import PrivagicRuntime, run_partitioned

__all__ = [
    "Channel", "Message", "SpawnMessage",
    "PrivagicRuntime", "run_partitioned",
]
