"""Scone-like full-embed deployment model (paper [5], §9.2).

Scone runs the complete application — with the musl C library and its
library OS — inside one enclave, calling the host kernel through
switchless system calls.  Two consequences the evaluation measures:

* a large TCB: §9.2.2 reports 51 271 KiB of binary loaded into the
  enclave (memcached 349 KiB + musl 14.7 MiB + libOS 36.2 MiB), about
  200× Privagic's 268 KiB;
* a high per-request cost: entering/leaving the enclave per request is
  slower than Privagic's message, and every network/lock operation is
  a system call issued from inside the enclave (§9.2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sgx.costmodel import CostMeter, KIB, MIB


#: Table 4 constants (KiB of binary inside the enclave).
SCONE_TCB_KIB = 51_271
SCONE_MEMCACHED_KIB = 349
SCONE_MUSL_KIB = int(14.7 * 1024)
SCONE_LIBOS_KIB = int(36.2 * 1024)

#: lines of LLVM user code when the whole application is embedded
#: (§9.2.2: "78106 lines of LLVM code" + libraries).
SCONE_USER_CODE_LLVM_LINES = 78_106


@dataclass
class SconeCosts:
    """Per-request cost structure of the full-embed deployment."""

    #: enclave enter+leave to process one request
    request_entry_exits: int = 1
    #: system calls per request issued from the enclave: socket read,
    #: socket write, event loop, lock acquire/release, timers ...
    syscalls_per_request: int = 16
    #: all request-handling computation runs in enclave mode
    compute_ops: int = 3


class SconeDeployment:
    """Charges one memcached-style request under Scone."""

    name = "Scone"
    costs = SconeCosts()

    def charge_request(self, meter: CostMeter, struct_accesses: float,
                       value_lines: float, miss_ratio: float,
                       epc_faults: float) -> None:
        c = self.costs
        meter.ecalls(c.request_entry_exits)
        meter.scone_syscalls(c.syscalls_per_request)
        meter.compute(c.compute_ops)
        # Everything — parsing buffers, connection state, the map —
        # lives in the enclave, so every access pays enclave-mode
        # pricing.
        meter.memory_accesses(struct_accesses + value_lines,
                              miss_ratio, in_enclave=True,
                              epc_fault_ratio=epc_faults)

    def pipeline_stages(self, untrusted_cycles: float,
                        enclave_cycles: float):
        """Scone has a single stage: the whole request runs in the
        enclave; nothing overlaps."""
        return [untrusted_cycles + enclave_cycles]
