"""Taint analyses over the IR, in the three styles of Table 1.

All three take *sensitivity roots* (function parameters and globals
the developer marked sensitive, like Glamdring's annotations) and
compute the set of memory locations a sensitive value may flow into.
A partitioning tool then protects exactly those locations.

==================  ====================  =============================
class               models                known blind spot
==================  ====================  =============================
UseDefTaint         Privtrans [9]         no pointer support at all
AbstractInterpTaint Glamdring's Eva       *sequential*: flow-sensitive
                    [17, 23] — flow-      strong updates miss pointer
                    sensitive abstract    mutations performed by other
                    interpretation        threads (Figure 3)
AndersenTaint       points-to based       flow-insensitive: sound on
                    (Montsalvat/Civet     Figure 3 but coarse (protects
                    style [4, 42, 47])    everything a pointer may
                                          reach)
==================  ====================  =============================
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.baselines.dataflow.pointsto import AndersenPointsTo, Location
from repro.ir.cfg import reverse_postorder
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Cmp,
    GEP,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class DataflowPartition:
    """What a data-flow partitioning tool decides to protect."""

    def __init__(self, tool: str):
        self.tool = tool
        self.protected_globals: Set[str] = set()
        self.protected_allocas: Set[object] = set()
        self.tainted_values: Set[Value] = set()
        self.protected_functions: Set[str] = set()

    def __repr__(self) -> str:
        return (f"<DataflowPartition {self.tool} "
                f"globals={sorted(self.protected_globals)}>")


def _roots(module: Module,
           sensitive_params: Sequence[Tuple[str, str]],
           sensitive_globals: Sequence[str]):
    param_values: List[Argument] = []
    for fn_name, arg_name in sensitive_params:
        fn = module.get_function(fn_name)
        for arg in fn.args:
            if arg.name == arg_name:
                param_values.append(arg)
                break
        else:
            raise KeyError(f"{fn_name} has no parameter {arg_name!r}")
    globals_ = [module.get_global(name) for name in sensitive_globals]
    return param_values, globals_


class UseDefTaint:
    """Privtrans-style: pure use-def chains, no pointers [9].

    Taint flows through register operations and through *direct*
    stores/loads of globals and allocas; anything reached through a
    loaded pointer is invisible (Table 1: "does not support pointers").
    """

    def __init__(self, module: Module,
                 sensitive_params: Sequence[Tuple[str, str]] = (),
                 sensitive_globals: Sequence[str] = ()):
        self.module = module
        self.partition = DataflowPartition("usedef")
        self._run(*_roots(module, sensitive_params, sensitive_globals))

    def _run(self, param_roots, global_roots) -> None:
        tainted: Set[Value] = set(param_roots)
        tainted_locs: Set[object] = {gv for gv in global_roots}
        changed = True
        while changed:
            changed = False
            for fn in self.module.defined_functions():
                for instr in fn.instructions():
                    if isinstance(instr, Store):
                        anchor = instr.ptr
                        if isinstance(anchor, (GlobalVariable, Alloca)) \
                                and instr.value in tainted \
                                and anchor not in tainted_locs:
                            tainted_locs.add(anchor)
                            changed = True
                    elif isinstance(instr, Load):
                        if instr.ptr in tainted_locs and \
                                instr not in tainted:
                            tainted.add(instr)
                            changed = True
                    elif isinstance(instr, Call):
                        callee = instr.callee
                        if isinstance(callee, Function) and \
                                not callee.is_declaration:
                            for formal, actual in zip(callee.args,
                                                      instr.args):
                                if actual in tainted and \
                                        formal not in tainted:
                                    tainted.add(formal)
                                    changed = True
                    elif not instr.is_void:
                        if any(op in tainted for op in instr.operands) \
                                and instr not in tainted:
                            tainted.add(instr)
                            changed = True
        self._finish(tainted, tainted_locs)

    def _finish(self, tainted, tainted_locs) -> None:
        part = self.partition
        part.tainted_values = tainted
        for anchor in tainted_locs:
            if isinstance(anchor, GlobalVariable):
                part.protected_globals.add(anchor.name)
            else:
                part.protected_allocas.add(anchor)
        for fn in self.module.defined_functions():
            for instr in fn.instructions():
                if instr in tainted:
                    part.protected_functions.add(fn.name)
                    break


class AndersenTaint:
    """Flow-insensitive taint over Andersen points-to sets."""

    def __init__(self, module: Module,
                 sensitive_params: Sequence[Tuple[str, str]] = (),
                 sensitive_globals: Sequence[str] = ()):
        self.module = module
        self.pointsto = AndersenPointsTo(module)
        self.partition = DataflowPartition("andersen")
        self._run(*_roots(module, sensitive_params, sensitive_globals))

    def _run(self, param_roots, global_roots) -> None:
        tainted: Set[Value] = set(param_roots)
        tainted_locs: Set[Location] = {
            self.pointsto.location_of(gv) for gv in global_roots}
        changed = True
        while changed:
            changed = False
            for fn in self.module.defined_functions():
                for instr in fn.instructions():
                    if isinstance(instr, Store):
                        if instr.value in tainted:
                            for loc in self.pointsto.points_to(instr.ptr):
                                if loc not in tainted_locs:
                                    tainted_locs.add(loc)
                                    changed = True
                    elif isinstance(instr, Load):
                        if instr not in tainted and any(
                                loc in tainted_locs for loc in
                                self.pointsto.points_to(instr.ptr)):
                            tainted.add(instr)
                            changed = True
                    elif isinstance(instr, Call):
                        callee = instr.callee
                        if isinstance(callee, Function) and \
                                not callee.is_declaration:
                            for formal, actual in zip(callee.args,
                                                      instr.args):
                                if actual in tainted and \
                                        formal not in tainted:
                                    tainted.add(formal)
                                    changed = True
                    elif not instr.is_void:
                        if instr not in tainted and any(
                                op in tainted for op in instr.operands):
                            tainted.add(instr)
                            changed = True
        self._finish(tainted, tainted_locs)

    def _finish(self, tainted, tainted_locs) -> None:
        part = self.partition
        part.tainted_values = tainted
        for loc in tainted_locs:
            if loc.kind == "global":
                part.protected_globals.add(loc.anchor.name)
            elif loc.kind == "alloca":
                part.protected_allocas.add(loc.anchor)
        for fn in self.module.defined_functions():
            for instr in fn.instructions():
                if instr in tainted:
                    part.protected_functions.add(fn.name)
                    break


class _AbsVal:
    """Abstract value: may-point-to set + taint bit."""

    __slots__ = ("pts", "taint")

    def __init__(self, pts: Optional[Set[Location]] = None,
                 taint: bool = False):
        self.pts = set(pts) if pts else set()
        self.taint = taint

    def copy(self) -> "_AbsVal":
        return _AbsVal(self.pts, self.taint)

    def merge(self, other: "_AbsVal") -> bool:
        changed = False
        if other.pts - self.pts:
            self.pts |= other.pts
            changed = True
        if other.taint and not self.taint:
            self.taint = True
            changed = True
        return changed


class AbstractInterpTaint:
    """Flow-sensitive abstract interpretation in the style of
    Glamdring's Eva engine [10, 17, 23].

    The analysis walks each function's CFG in order, maintaining a
    per-point abstract state with *strong updates*: after ``x = &a``,
    the state says x points exactly to {a}.  That is what makes it
    precise sequentially — and wrong under concurrency: it cannot see
    the ``x = &b`` executed in parallel by another thread, exactly the
    Figure 3 failure.  Thread-start functions are analyzed one after
    the other, never interleaved (sequential tools explore no
    interleavings; §3).
    """

    def __init__(self, module: Module,
                 sensitive_params: Sequence[Tuple[str, str]] = (),
                 sensitive_globals: Sequence[str] = ()):
        self.module = module
        self.partition = DataflowPartition("abstract-interp")
        #: global, flow-insensitive summary of location states used as
        #: the entry state of each analyzed function
        self.loc_state: Dict[Location, _AbsVal] = {}
        self._locs: Dict[object, Location] = {}
        self._analyzed_returns: Dict[str, _AbsVal] = {}
        #: interprocedural argument summaries: join of the abstract
        #: values flowing into each formal parameter over all call
        #: sites (context-insensitive, like Eva's defaults)
        self._arg_summaries: Dict[Value, _AbsVal] = {}
        self._run(*_roots(module, sensitive_params, sensitive_globals))

    def _location(self, anchor) -> Location:
        if anchor not in self._locs:
            if isinstance(anchor, GlobalVariable):
                self._locs[anchor] = Location("global", anchor,
                                              f"@{anchor.name}")
            elif isinstance(anchor, Alloca):
                self._locs[anchor] = Location(
                    "alloca", anchor, f"%{anchor.name or 'alloca'}")
            else:
                self._locs[anchor] = Location("heap", anchor, "heap")
        return self._locs[anchor]

    def _run(self, param_roots, global_roots) -> None:
        for gv in global_roots:
            self.loc_state[self._location(gv)] = _AbsVal(taint=True)
        self._tainted_params = set(param_roots)
        # Sequential whole-module fixpoint: analyze every defined
        # function (entry points and thread bodies alike) until the
        # global location summary stabilizes.
        for _ in range(20):
            before = self._snapshot()
            for fn in self.module.defined_functions():
                self._analyze_function(fn)
            if before == self._snapshot():
                break
        self._finish()

    def _snapshot(self):
        return (
            {loc: (frozenset(v.pts), v.taint)
             for loc, v in self.loc_state.items()},
            {id(a): (frozenset(v.pts), v.taint)
             for a, v in self._arg_summaries.items()},
            {n: (frozenset(v.pts), v.taint)
             for n, v in self._analyzed_returns.items()},
        )

    # -- per-function flow-sensitive walk ------------------------------------------

    def _analyze_function(self, fn: Function) -> None:
        env: Dict[Value, _AbsVal] = {}
        for arg in fn.args:
            initial = _AbsVal(taint=arg in self._tainted_params)
            summary = self._arg_summaries.get(arg)
            if summary is not None:
                initial.merge(summary)
            env[arg] = initial
        # Block in-states: location map (flow-sensitive view).
        in_states: Dict[object, Dict[Location, _AbsVal]] = {}
        entry_state = {loc: v.copy() for loc, v in self.loc_state.items()}
        order = reverse_postorder(fn)
        if not order:
            return
        in_states[order[0]] = entry_state
        out_states: Dict[object, Dict[Location, _AbsVal]] = {}
        for _ in range(10):
            changed = False
            for block in order:
                state = {loc: v.copy()
                         for loc, v in in_states.get(block, {}).items()}
                for instr in block.instructions:
                    self._transfer(instr, env, state)
                out_states[block] = state
                for succ in block.successors:
                    target = in_states.setdefault(succ, {})
                    for loc, val in state.items():
                        if loc not in target:
                            target[loc] = val.copy()
                            changed = True
                        elif target[loc].merge(val):
                            changed = True
            if not changed:
                break
        # Publish the out-state of every block into the global location
        # summary (join over the function's program points).
        for block_state in out_states.values():
            for loc, val in block_state.items():
                current = self.loc_state.setdefault(loc, _AbsVal())
                current.merge(val)

    def _value(self, env, value: Value) -> _AbsVal:
        if isinstance(value, GlobalVariable):
            return _AbsVal(pts={self._location(value)})
        if isinstance(value, Constant):
            return _AbsVal()
        return env.setdefault(value, _AbsVal())

    def _transfer(self, instr: Instruction, env, state) -> None:
        if isinstance(instr, Alloca):
            env[instr] = _AbsVal(pts={self._location(instr)})
        elif isinstance(instr, Store):
            value = self._value(env, instr.value)
            targets = self._value(env, instr.ptr).pts
            if len(targets) == 1:
                # Strong update — the hallmark of flow sensitivity and
                # the root of the Figure 3 unsoundness.
                (loc,) = targets
                state[loc] = value.copy()
            else:
                for loc in targets:
                    state.setdefault(loc, _AbsVal()).merge(value)
        elif isinstance(instr, Load):
            result = _AbsVal()
            for loc in self._value(env, instr.ptr).pts:
                cell = state.get(loc) or self.loc_state.get(loc)
                if cell is not None:
                    result.merge(cell)
            env[instr] = result
        elif isinstance(instr, (Cast, GEP)):
            src = instr.operands[0] if isinstance(instr, Cast) else \
                instr.ptr
            env[instr] = self._value(env, src).copy()
        elif isinstance(instr, (Phi, Select)):
            result = _AbsVal()
            operands = (instr.operands if isinstance(instr, Phi)
                        else [instr.true_value, instr.false_value])
            for op in operands:
                result.merge(self._value(env, op))
            env[instr] = result
        elif isinstance(instr, Call):
            callee = instr.callee
            if isinstance(callee, Function) and callee.name == "malloc":
                env[instr] = _AbsVal(pts={self._location(instr)})
                return
            if isinstance(callee, Function) and not callee.is_declaration:
                for formal, actual in zip(callee.args, instr.args):
                    summary = self._arg_summaries.setdefault(
                        formal, _AbsVal())
                    summary.merge(self._value(env, actual))
                ret = self._analyzed_returns.get(callee.name)
                env[instr] = ret.copy() if ret else _AbsVal()
            else:
                env[instr] = _AbsVal()
        elif isinstance(instr, Ret):
            if instr.value is not None:
                fn_name = instr.parent.parent.name
                summary = self._analyzed_returns.setdefault(
                    fn_name, _AbsVal())
                summary.merge(self._value(env, instr.value))
        elif not instr.is_void:
            result = _AbsVal()
            for op in instr.operands:
                result.merge(self._value(env, op))
            result.pts = set(result.pts)
            env[instr] = result
        self._note_taint(instr, env)

    def _note_taint(self, instr: Instruction, env) -> None:
        val = env.get(instr)
        if val is not None and val.taint:
            self.partition.tainted_values.add(instr)

    def _finish(self) -> None:
        part = self.partition
        for loc, val in self.loc_state.items():
            if not val.taint:
                continue
            if loc.kind == "global":
                part.protected_globals.add(loc.anchor.name)
            elif loc.kind == "alloca":
                part.protected_allocas.add(loc.anchor)
        for fn in self.module.defined_functions():
            for instr in fn.instructions():
                if instr in part.tainted_values:
                    part.protected_functions.add(fn.name)
                    break


def apply_dataflow_placement(module: Module,
                             partition: DataflowPartition,
                             enclave: str = "dfenclave") -> List[str]:
    """Place the protected globals inside an enclave region, the way a
    Glamdring-style tool rewrites the program.  Returns the protected
    global names.  (The protection is exactly as good as the analysis
    that produced ``partition`` — the Figure 3 bench exploits this.)
    """
    protected = []
    for name in sorted(partition.protected_globals):
        gv = module.get_global(name)
        gv.value_type = gv.value_type.with_color(enclave)
        protected.append(name)
    return protected
