"""Sequential data-flow analyses (the Table 1 family)."""

from repro.baselines.dataflow.pointsto import AndersenPointsTo
from repro.baselines.dataflow.taint import (
    AbstractInterpTaint,
    AndersenTaint,
    UseDefTaint,
    DataflowPartition,
    apply_dataflow_placement,
)

__all__ = [
    "AndersenPointsTo",
    "AbstractInterpTaint", "AndersenTaint", "UseDefTaint",
    "DataflowPartition", "apply_dataflow_placement",
]
