"""A Glamdring-style end-to-end partitioner [23] on top of the
data-flow analyses.

Glamdring's pipeline: the developer annotates sensitive function
arguments/variables; an abstract-interpretation engine (Frama-C's Eva)
computes which memory and which functions touch sensitive data; the
tool then splits at *function* granularity — sensitive functions and
globals move into the enclave, with ecall stubs at the boundary.

This module reproduces that pipeline over our IR so Table 1's
comparison covers complete tools, not just analyses: it yields a
:class:`GlamdringPartition` with the enclave function/global sets, a
TCB estimate, and an executable placement (globals colored into the
enclave region) whose soundness the Figure 3 bench probes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from repro.baselines.dataflow.taint import (
    AbstractInterpTaint,
    DataflowPartition,
)
from repro.ir.instructions import Call
from repro.ir.module import Function, Module


class GlamdringPartition:
    """Function-granularity split, the way Glamdring deploys it."""

    def __init__(self, module: Module, analysis: DataflowPartition):
        self.module = module
        self.analysis = analysis
        #: functions moved into the enclave (touch sensitive data,
        #: plus transitive callees — Glamdring pulls in what enclave
        #: code calls so it does not ocall back out for helpers)
        self.enclave_functions: Set[str] = set(
            analysis.protected_functions)
        self._close_over_callees()
        self.enclave_globals: Set[str] = set(
            analysis.protected_globals)
        #: boundary functions: untrusted code calling into the enclave
        #: (each call site becomes an ecall in the real tool)
        self.ecall_targets: Set[str] = self._boundary()

    def _close_over_callees(self) -> None:
        changed = True
        while changed:
            changed = False
            for name in list(self.enclave_functions):
                fn = self.module.functions.get(name)
                if fn is None or fn.is_declaration:
                    continue
                for instr in fn.instructions():
                    if isinstance(instr, Call) and isinstance(
                            instr.callee, Function):
                        callee = instr.callee
                        if not callee.is_declaration and \
                                callee.name not in self.enclave_functions:
                            self.enclave_functions.add(callee.name)
                            changed = True

    def _boundary(self) -> Set[str]:
        targets: Set[str] = set()
        for fn in self.module.defined_functions():
            if fn.name in self.enclave_functions:
                continue
            for instr in fn.instructions():
                if isinstance(instr, Call) and isinstance(
                        instr.callee, Function) and \
                        instr.callee.name in self.enclave_functions:
                    targets.add(instr.callee.name)
        # Entry points that are themselves enclave functions are
        # ecalls too.
        for fn in self.module.entry_points():
            if fn.name in self.enclave_functions:
                targets.add(fn.name)
        return targets

    # -- metrics ---------------------------------------------------------------

    def tcb_instructions(self) -> int:
        total = 0
        for name in self.enclave_functions:
            fn = self.module.functions.get(name)
            if fn is not None and not fn.is_declaration:
                total += sum(len(b.instructions) for b in fn.blocks)
        return total

    def ecalls_per_boundary_call(self) -> int:
        return len(self.ecall_targets)

    def apply_placement(self, enclave: str = "dfenclave") -> List[str]:
        """Color the protected globals into the enclave region so the
        interpreter places them there (the runtime attack surface)."""
        placed = []
        for name in sorted(self.enclave_globals):
            gv = self.module.get_global(name)
            gv.value_type = gv.value_type.with_color(enclave)
            placed.append(name)
        return placed

    def __repr__(self) -> str:
        return (f"<GlamdringPartition enclave_fns="
                f"{sorted(self.enclave_functions)} globals="
                f"{sorted(self.enclave_globals)}>")


def glamdring_partition(module: Module,
                        sensitive_params: Sequence[Tuple[str, str]] = (),
                        sensitive_globals: Sequence[str] = ()
                        ) -> GlamdringPartition:
    """Run the full Glamdring-style pipeline on ``module``."""
    analysis = AbstractInterpTaint(module, sensitive_params,
                                   sensitive_globals)
    return GlamdringPartition(module, analysis.partition)
