"""Andersen-style inclusion-based points-to analysis [4].

Flow- and context-insensitive: one points-to set per value for the
whole program.  Abstract locations are global variables, allocas and
heap-allocation sites.  This is the analysis family behind the
Java partitioning tools of Table 1 (Montsalvat, Civet); on C it is
sound for the Figure 3 pattern but coarse — the precision/soundness
trade-off the Table 1 bench quantifies.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.ir.instructions import (
    Alloca,
    Call,
    Cast,
    GEP,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from repro.ir.module import Function, Module
from repro.ir.values import Argument, GlobalVariable, Value

#: Heap-allocating externals treated as allocation sites.
_ALLOCATORS = frozenset({"malloc", "__privagic_alloc"})


class Location:
    """An abstract memory location."""

    __slots__ = ("kind", "anchor", "label")

    def __init__(self, kind: str, anchor: object, label: str):
        self.kind = kind      # "global" | "alloca" | "heap"
        self.anchor = anchor  # the defining IR object
        self.label = label

    def __repr__(self) -> str:
        return f"<Loc {self.label}>"


class AndersenPointsTo:
    """Computes ``points_to(value) -> set of Locations``."""

    def __init__(self, module: Module):
        self.module = module
        self.locations: Dict[object, Location] = {}
        self.pts: Dict[Value, Set[Location]] = {}
        #: contents of a location: the points-to set of stored pointers
        self.heap_pts: Dict[Location, Set[Location]] = {}
        self._compute()

    # -- locations ---------------------------------------------------------------

    def location_of(self, anchor: object) -> Location:
        if anchor not in self.locations:
            if isinstance(anchor, GlobalVariable):
                loc = Location("global", anchor, f"@{anchor.name}")
            elif isinstance(anchor, Alloca):
                loc = Location("alloca", anchor,
                               f"%{anchor.name or 'alloca'}")
            else:
                loc = Location("heap", anchor, "heap")
            self.locations[anchor] = loc
        return self.locations[anchor]

    def points_to(self, value: Value) -> Set[Location]:
        return self.pts.get(value, set())

    def contents(self, loc: Location) -> Set[Location]:
        return self.heap_pts.get(loc, set())

    # -- solver ---------------------------------------------------------------------

    def _compute(self) -> None:
        copies: Dict[Value, Set[Value]] = {}   # dst <- src edges
        loads: List[Load] = []
        stores: List[Store] = []
        calls: List[Call] = []

        def copy_edge(dst: Value, src: Value) -> None:
            copies.setdefault(dst, set()).add(src)

        for fn in self.module.defined_functions():
            for instr in fn.instructions():
                if isinstance(instr, Alloca):
                    self.pts.setdefault(instr, set()).add(
                        self.location_of(instr))
                elif isinstance(instr, (Cast, GEP)):
                    copy_edge(instr, instr.operands[0]
                              if isinstance(instr, Cast) else instr.ptr)
                elif isinstance(instr, Phi):
                    for value, _ in instr.incomings:
                        copy_edge(instr, value)
                elif isinstance(instr, Select):
                    copy_edge(instr, instr.true_value)
                    copy_edge(instr, instr.false_value)
                elif isinstance(instr, Load):
                    loads.append(instr)
                elif isinstance(instr, Store):
                    stores.append(instr)
                elif isinstance(instr, Call):
                    calls.append(instr)
                    callee = instr.callee
                    if isinstance(callee, Function):
                        if callee.name in _ALLOCATORS:
                            self.pts.setdefault(instr, set()).add(
                                self.location_of(instr))
                        elif not callee.is_declaration:
                            for formal, actual in zip(callee.args,
                                                      instr.args):
                                copy_edge(formal, actual)
                            for ret in self._returns(callee):
                                if ret.value is not None:
                                    copy_edge(instr, ret.value)

        # Seed: globals used as values point to their storage.
        for gv in self.module.globals.values():
            self.pts.setdefault(gv, set()).add(self.location_of(gv))

        changed = True
        while changed:
            changed = False
            for dst, srcs in copies.items():
                target = self.pts.setdefault(dst, set())
                for src in srcs:
                    new = self.pts.get(src, set()) - target
                    if new:
                        target |= new
                        changed = True
            for store in stores:
                value_pts = self.pts.get(store.value, set())
                if not value_pts:
                    continue
                for loc in self.pts.get(store.ptr, set()):
                    cell = self.heap_pts.setdefault(loc, set())
                    new = value_pts - cell
                    if new:
                        cell |= new
                        changed = True
            for load in loads:
                target = self.pts.setdefault(load, set())
                for loc in self.pts.get(load.ptr, set()):
                    new = self.heap_pts.get(loc, set()) - target
                    if new:
                        target |= new
                        changed = True

    @staticmethod
    def _returns(fn: Function) -> Iterable[Ret]:
        for instr in fn.instructions():
            if isinstance(instr, Ret):
                yield instr
