"""repro.baselines — the systems Privagic is compared against.

* :mod:`repro.baselines.dataflow` — sequential data-flow analyses in
  the style of the Table 1 tools: use-def-chain taint (Privtrans),
  flow-sensitive abstract-interpretation taint (Glamdring/Eva) and
  flow-insensitive Andersen points-to taint.  The flow-sensitive
  analysis is deliberately *sequential* and reproduces the Figure 3
  failure on multi-threaded programs.
* :mod:`repro.baselines.scone` — the full-embed deployment (whole
  application + libc + libOS inside one enclave, switchless syscalls).
* :mod:`repro.baselines.intelsdk` — the EDL/ecall deployment with
  lock-based switchless calls (§9.3.2).
"""

from repro.baselines.dataflow import (
    AbstractInterpTaint,
    AndersenPointsTo,
    AndersenTaint,
    UseDefTaint,
    DataflowPartition,
    apply_dataflow_placement,
)
from repro.baselines.dataflow.glamdring import (
    GlamdringPartition,
    glamdring_partition,
)

__all__ = [
    "AbstractInterpTaint", "AndersenPointsTo", "AndersenTaint",
    "UseDefTaint", "DataflowPartition", "apply_dataflow_placement",
    "GlamdringPartition", "glamdring_partition",
]
