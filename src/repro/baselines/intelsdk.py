"""Intel-SDK (EDL/ecall) deployment model (§9.3).

Intel-sdk-1 exposes the map interface (get/put) in EDL and crosses
into the enclave with a *lock-based* switchless call ([40, 43] in the
paper); §9.3.2 attributes its deficit against Privagic to that lock:
the caller spins on a shared slot while the enclave thread works, and
falls back to a futex sleep/wakeup when the enclave operation is long.
Intel-sdk-2 uses two enclaves (keys and values) and needs several
ecalls plus manual copies per operation (§9.3.1: "a whole redesign of
the code").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sgx.costmodel import CostMeter


@dataclass
class SdkCallModel:
    """Cost of one lock-based switchless call as a function of the
    enclave-side work it waits for."""

    #: fixed protocol cost (slot handshake, lock acquire/release)
    base_cycles: float = 6_000.0
    #: wasted spinning, proportional to the enclave-side latency
    spin_waste: float = 1.3
    #: beyond this the waiter sleeps: bounded waste + futex wakeup
    spin_cap_cycles: float = 2_000_000.0
    wakeup_cycles: float = 18_000.0

    def call_overhead(self, enclave_cycles: float) -> float:
        spin = self.spin_waste * enclave_cycles
        if spin <= self.spin_cap_cycles:
            return self.base_cycles + spin
        return self.base_cycles + self.spin_cap_cycles + \
            self.wakeup_cycles


class IntelSDKDeployment:
    """One or two EDL enclaves in front of the map."""

    def __init__(self, enclaves: int = 1):
        self.enclaves = enclaves
        self.call_model = SdkCallModel()

    @property
    def name(self) -> str:
        return f"Intel-sdk-{self.enclaves}"

    def charge_op(self, meter: CostMeter, enclave_cycles: float) -> None:
        """Charge the boundary-crossing cost for one map operation;
        the enclave-side work itself is charged by the experiment."""
        if self.enclaves == 1:
            meter.charge("sdk_switchless",
                         self.call_model.call_overhead(enclave_cycles),
                         1)
        else:
            # Two enclaves: an ecall into the key enclave, an ecall
            # into the value enclave, plus copies staged through
            # untrusted memory in both directions (the manual §9.3.1
            # redesign), each a full eenter/eexit pair.
            per_enclave = enclave_cycles / 2.0
            for _ in range(self.enclaves):
                meter.ecalls(2)  # call + result copy-back
                meter.charge(
                    "sdk_switchless",
                    self.call_model.call_overhead(per_enclave), 1)
