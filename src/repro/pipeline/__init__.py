"""repro.pipeline — the staged compilation pipeline.

An LLVM-style pass manager over the Privagic toolchain: named passes,
a shared analysis cache with explicit invalidation, per-pass metrics
and tracing, and default pipelines the compiler, frontend and CLI all
delegate to.
"""

from repro.pipeline.analyses import AnalysisCache
from repro.pipeline.context import CompilationContext, PassTiming
from repro.pipeline.manager import (
    ANALYZE_PIPELINE,
    DEFAULT_PIPELINE,
    FRONTEND_PIPELINE,
    PASS_REGISTRY,
    PassManager,
    parse_pipeline,
)
from repro.pipeline.passes import (
    ConstFoldPass,
    DCEPass,
    FunctionPass,
    Mem2RegPass,
    OptimizePlacementPass,
    PartitionPass,
    Pass,
    SecureTypeAnalysisPass,
    SimplifyCFGPass,
    StructRewritePass,
    VerifyPass,
)

__all__ = [
    "AnalysisCache",
    "CompilationContext",
    "PassTiming",
    "PassManager",
    "parse_pipeline",
    "PASS_REGISTRY",
    "DEFAULT_PIPELINE",
    "ANALYZE_PIPELINE",
    "FRONTEND_PIPELINE",
    "Pass",
    "FunctionPass",
    "Mem2RegPass",
    "SimplifyCFGPass",
    "ConstFoldPass",
    "DCEPass",
    "StructRewritePass",
    "SecureTypeAnalysisPass",
    "OptimizePlacementPass",
    "PartitionPass",
    "VerifyPass",
]
