"""The named passes the :class:`~repro.pipeline.manager.PassManager`
schedules.

Each pass declares whether it preserves the CFG shape
(``preserves_cfg``); CFG-mutating passes cause the shared
:class:`~repro.pipeline.analyses.AnalysisCache` to be invalidated
after they run.  ``run`` returns an optional dict of statistics that
is published as per-pass metrics.

The heavyweight imports (analysis, partitioner, struct rewriting)
happen inside ``run`` so the pipeline package stays import-light and
free of cycles with ``repro.core``.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.pipeline.context import CompilationContext


class Pass:
    """Base class: a named transformation or analysis over a module."""

    #: Registry/CLI name of the pass.
    name = "pass"
    #: True when the pass never adds/removes blocks or edges, so every
    #: cached CFG analysis stays valid across it.
    preserves_cfg = False

    def run(self, ctx: CompilationContext) -> Optional[Dict[str, object]]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Pass {self.name}>"


class FunctionPass(Pass):
    """A pass applied to every defined function independently."""

    def run(self, ctx: CompilationContext) -> Dict[str, object]:
        totals: Dict[str, float] = {}
        for fn in ctx.module.defined_functions():
            stats = self.run_on_function(ctx, fn) or {}
            for key, value in stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def run_on_function(self, ctx: CompilationContext, fn):
        raise NotImplementedError


class Mem2RegPass(FunctionPass):
    """Promote allocas to SSA registers (paper §5.1)."""

    name = "mem2reg"
    preserves_cfg = True

    def run_on_function(self, ctx, fn):
        from repro.ir.passes.mem2reg import mem2reg
        return {"promoted": mem2reg(fn, cache=ctx.cache)}


class SimplifyCFGPass(FunctionPass):
    """Fold trivial branches, drop unreachable blocks, merge
    single-predecessor/single-successor chains."""

    name = "simplify-cfg"
    preserves_cfg = False

    def run_on_function(self, ctx, fn):
        from repro.ir.passes.simplifycfg import simplify_cfg
        simplified = simplify_cfg(fn)
        if simplified:
            ctx.cache.invalidate(fn)
        return {"simplified": simplified}


class ConstFoldPass(FunctionPass):
    """Fold arithmetic/comparison/select/cast operations whose
    operands are constants."""

    name = "constfold"
    preserves_cfg = True

    def run_on_function(self, ctx, fn):
        from repro.ir.passes.constfold import constant_fold
        return {"folded": constant_fold(fn)}


class DCEPass(FunctionPass):
    """Erase instructions with no users and no side effects."""

    name = "dce"
    preserves_cfg = True

    def run_on_function(self, ctx, fn):
        from repro.ir.passes.dce import dead_code_elimination
        return {"erased_dce": dead_code_elimination(fn)}


class StructRewritePass(Pass):
    """Split multi-color structures into per-color shadows (paper
    §7.2, relaxed mode; rejects them in hardened mode)."""

    name = "struct-rewrite"
    preserves_cfg = True

    def run(self, ctx):
        from repro.core.structs import rewrite_multicolor_structs
        rewrite_multicolor_structs(ctx.module, ctx.mode)
        return None


class SecureTypeAnalysisPass(Pass):
    """The stabilizing secure type analysis (paper §6).  Deposits the
    :class:`~repro.core.analysis.AnalysisResult` on the context; typing
    errors are collected, not raised — the ``partition`` pass (or the
    caller) decides whether to enforce them."""

    name = "secure-types"
    # Specializations are *added* but no existing CFG changes.
    preserves_cfg = True

    def run(self, ctx):
        from repro.core.analysis import analyze_module
        ctx.analysis = analyze_module(ctx.module, ctx.mode,
                                      entries=ctx.entries, check=False,
                                      cache=ctx.cache)
        return {"analysis_passes": ctx.analysis.passes,
                "analysis_errors": len(ctx.analysis.errors)}


class OptimizePlacementPass(Pass):
    """Cost-aware placement optimization (ROADMAP item 3): build the
    partition graph over the planner's protocol decisions, run the
    selected :class:`~repro.core.placement.PlacementPolicy`, and
    deposit the shared planner plus the verified decisions for the
    ``partition`` pass.  A no-op with the default ``none`` policy, so
    pipelines that never opt in stay bit-identical."""

    name = "optimize-placement"
    preserves_cfg = True

    def run(self, ctx):
        policy = ctx.optimize or "none"
        if policy == "none":
            return {"placement_moves": 0}
        from repro.core.analysis import analyze_module
        from repro.core.placement import (
            optimize_placement,
            placement_report,
        )
        if ctx.analysis is None:
            ctx.analysis = analyze_module(ctx.module, ctx.mode,
                                          entries=ctx.entries, check=False,
                                          cache=ctx.cache)
        ctx.analysis.check()
        ctx.planner, ctx.placement_graph, ctx.placement = \
            optimize_placement(ctx.analysis, policy,
                               profile=ctx.profile, cache=ctx.cache)
        ctx.placement_report = placement_report(ctx.placement_graph,
                                                ctx.placement)
        return {"placement_moves": ctx.placement.moves,
                "placement_gain_cycles": round(
                    ctx.placement.gain_cycles, 1)}


class PartitionPass(Pass):
    """Rewrite the analyzed module into per-color partitions (paper
    §7).  Raises the first :class:`SecureTypeError` if the preceding
    analysis found violations.  Consumes the shared planner and the
    placement decisions when ``optimize-placement`` ran, and re-checks
    the optimized output structurally."""

    name = "partition"
    preserves_cfg = False

    def run(self, ctx):
        from repro.core.analysis import analyze_module
        from repro.core.partition import partition
        if ctx.analysis is None:
            ctx.analysis = analyze_module(ctx.module, ctx.mode,
                                          entries=ctx.entries, check=False,
                                          cache=ctx.cache)
        ctx.program = partition(ctx.analysis, ctx.sync_barriers,
                                cache=ctx.cache, planner=ctx.planner,
                                placement=ctx.placement)
        if ctx.placement is not None:
            from repro.core.placement import verify_placement
            verify_placement(ctx.program)
        return {"partitions": len(ctx.program.modules)}


class TraceCompilePass(Pass):
    """Precompute trace-tier loop-region plans (:mod:`repro.ir.trace`)
    for every function — the partition modules when partitioning ran,
    the input module otherwise — and stamp them with the structural
    fingerprint so a traced machine trusts them only while the IR is
    unchanged (and replans itself otherwise)."""

    name = "trace-compile"
    preserves_cfg = True

    def run(self, ctx):
        from repro.ir.engine import _fingerprint
        from repro.ir.trace import plan_function
        modules = (list(ctx.program.modules.values())
                   if ctx.program is not None else [ctx.module])
        functions = regions = 0
        for module in modules:
            for fn in module.defined_functions():
                plan = plan_function(fn, ctx.cache)
                fn._trace_plan = plan
                fn._trace_plan_fp = _fingerprint(fn)
                functions += 1
                regions += len(plan)
        return {"functions": functions, "regions": regions}


class VerifyPass(Pass):
    """Structural IR verification; fails the pipeline on malformed IR."""

    name = "verify"
    preserves_cfg = True

    def run(self, ctx):
        from repro.ir.verifier import verify_module
        verify_module(ctx.module, cache=ctx.cache)
        return None
