"""Cached CFG analyses for the compilation pipeline.

Every consumer of dominator information (``mem2reg``, the Rule-4 block
coloring, the partitioner's chunk builder, the verifier) used to
rebuild :class:`~repro.ir.cfg.DominatorTree` from scratch on each use.
The :class:`AnalysisCache` memoizes the CFG-shape analyses per
function and is the *only* place a ``DominatorTree`` is constructed;
passes declare whether they preserve the CFG and the
:class:`~repro.pipeline.manager.PassManager` invalidates accordingly.

All cached analyses depend exclusively on the CFG shape (blocks and
terminator edges), so a CFG-preserving pass (``mem2reg``, ``dce``,
``constfold``) keeps the whole cache valid, while a CFG-mutating pass
(``simplify-cfg``, anything merging or deleting blocks) must
invalidate it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.cfg import DominatorTree, reverse_postorder
from repro.ir.module import BasicBlock, Function


class AnalysisCache:
    """Per-function memo of CFG analyses, keyed by function identity.

    :class:`~repro.ir.module.Function` objects hash by identity, so a
    specialized clone gets its own cache entries and never aliases its
    template's.
    """

    DOMTREE = "domtree"
    POSTDOMTREE = "postdomtree"
    RPO = "rpo"
    REACHABLE = "reachable"
    FRONTIER = "frontier"

    def __init__(self):
        self._cache: Dict[Function, Dict[str, object]] = {}
        self.hits = 0
        self.misses = 0

    # -- memoization -----------------------------------------------------------

    def _get(self, fn: Function, kind: str, build):
        per_fn = self._cache.setdefault(fn, {})
        try:
            value = per_fn[kind]
            self.hits += 1
            return value
        except KeyError:
            self.misses += 1
            value = per_fn[kind] = build()
            return value

    # -- analyses --------------------------------------------------------------

    def dominators(self, fn: Function) -> DominatorTree:
        return self._get(fn, self.DOMTREE,
                         lambda: DominatorTree(fn, post=False))

    def postdominators(self, fn: Function) -> DominatorTree:
        return self._get(fn, self.POSTDOMTREE,
                         lambda: DominatorTree(fn, post=True))

    def reverse_postorder(self, fn: Function) -> List[BasicBlock]:
        return self._get(fn, self.RPO, lambda: reverse_postorder(fn))

    def reachable(self, fn: Function) -> Set[BasicBlock]:
        return self._get(fn, self.REACHABLE,
                         lambda: set(self.reverse_postorder(fn)))

    def frontier(self, fn: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
        return self._get(fn, self.FRONTIER,
                         lambda: self.dominators(fn).frontier())

    # -- invalidation ----------------------------------------------------------

    def invalidate(self, fn: Optional[Function] = None) -> None:
        """Forget cached analyses for ``fn``, or for every function
        when ``fn`` is None (a pass mutated CFGs module-wide)."""
        if fn is None:
            self._cache.clear()
        else:
            self._cache.pop(fn, None)

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "functions": len(self._cache)}
