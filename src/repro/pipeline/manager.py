"""The pass manager: named pipelines over a compilation context.

The Figure-5 toolchain is expressed as a default pipeline of named
passes rather than a hard-coded call sequence, so stages can be
inspected (``--print-after-each``), timed (``--time-passes``),
reordered or dropped (``--passes mem2reg,dce``), and verified after
every step (``REPRO_VERIFY_EACH_PASS=1``).
"""

from __future__ import annotations

import os
import sys
import time
from typing import Iterable, List, Optional, Sequence, Union

from repro.errors import IRError
from repro.pipeline.context import CompilationContext, PassTiming
from repro.pipeline.passes import (
    ConstFoldPass,
    DCEPass,
    FunctionPass,
    Mem2RegPass,
    OptimizePlacementPass,
    PartitionPass,
    Pass,
    SecureTypeAnalysisPass,
    SimplifyCFGPass,
    StructRewritePass,
    TraceCompilePass,
    VerifyPass,
)

#: Every pass the manager can schedule by name.
PASS_REGISTRY = {cls.name: cls for cls in (
    Mem2RegPass, SimplifyCFGPass, ConstFoldPass, DCEPass,
    StructRewritePass, SecureTypeAnalysisPass, OptimizePlacementPass,
    PartitionPass, TraceCompilePass, VerifyPass,
)}

#: The paper's Figure-5 compile pipeline, with the optimization trio
#: (constfold, simplify-cfg, dce) run between mem2reg and the struct
#: rewriting to shrink the type-inference workload.  Constant folding
#: runs first so branch conditions it proves constant cascade into
#: simplify-cfg's branch folding, and DCE last to sweep the operands
#: both passes orphaned.
DEFAULT_PIPELINE = ("mem2reg", "constfold", "simplify-cfg", "dce",
                    "struct-rewrite", "secure-types",
                    "optimize-placement", "partition", "trace-compile")

#: Same pipeline without partitioning or trace planning — ``repro
#: analyze`` stops after the placement optimizer, so it can report
#: the partition plan and quality without materializing chunks.
ANALYZE_PIPELINE = DEFAULT_PIPELINE[:-2]

#: What the MiniC frontend runs on freshly generated IR.
FRONTEND_PIPELINE = ("verify",)

#: Environment switch for satellite-1 debugging: verify after every pass.
VERIFY_EACH_ENV = "REPRO_VERIFY_EACH_PASS"

PipelineSpec = Union[str, Sequence[Union[str, Pass]], None]


def parse_pipeline(spec: PipelineSpec) -> List[Pass]:
    """Resolve a pipeline description into pass instances.

    Accepts a comma-separated string (``"mem2reg,dce"``), an iterable
    of names and/or :class:`Pass` instances, or None (the default
    pipeline).  Unknown names raise :class:`IRError` listing the
    available passes.
    """
    if spec is None:
        spec = DEFAULT_PIPELINE
    if isinstance(spec, str):
        spec = [part.strip() for part in spec.split(",") if part.strip()]
    passes: List[Pass] = []
    for item in spec:
        if isinstance(item, Pass):
            passes.append(item)
            continue
        cls = PASS_REGISTRY.get(item)
        if cls is None:
            known = ", ".join(sorted(PASS_REGISTRY))
            raise IRError(f"unknown pass {item!r}; available: {known}")
        passes.append(cls())
    return passes


class PassManager:
    """Runs a pipeline of passes over a :class:`CompilationContext`.

    Parameters
    ----------
    passes:
        Pipeline description (see :func:`parse_pipeline`); defaults to
        :data:`DEFAULT_PIPELINE`.
    verify_each:
        Run :func:`verify_module` after every pass (uses a fresh
        analysis cache so stale cached trees cannot mask breakage).
        Defaults to the ``REPRO_VERIFY_EACH_PASS`` environment switch.
    time_passes:
        Collect and render per-pass wall times (always collected into
        metrics; this controls the human-readable table).
    print_after_each:
        Print the module IR after every pass to ``stream``.
    stream:
        Destination for diagnostics (default ``sys.stderr``).
    """

    def __init__(self, passes: PipelineSpec = None,
                 verify_each: Optional[bool] = None,
                 time_passes: bool = False,
                 print_after_each: bool = False,
                 stream=None):
        self.passes = parse_pipeline(passes)
        if verify_each is None:
            verify_each = os.environ.get(VERIFY_EACH_ENV, "") not in (
                "", "0")
        self.verify_each = verify_each
        self.time_passes = time_passes
        self.print_after_each = print_after_each
        self.stream = stream

    # -- driving ---------------------------------------------------------------

    def run(self, target, mode: str = "hardened",
            entries: Optional[Sequence[str]] = None,
            sync_barriers: bool = True, metrics=None,
            tracer=None, optimize: Optional[str] = None,
            profile: Optional[dict] = None) -> CompilationContext:
        """Run the pipeline over ``target`` (a Module or an existing
        :class:`CompilationContext`) and return the context."""
        if isinstance(target, CompilationContext):
            ctx = target
        else:
            ctx = CompilationContext(target, mode=mode, entries=entries,
                                     sync_barriers=sync_barriers,
                                     metrics=metrics, tracer=tracer,
                                     optimize=optimize, profile=profile)
        for p in self.passes:
            self._run_one(ctx, p)
        ctx.publish_cache_stats()
        if self.time_passes:
            print(self.render_timings(ctx), file=self._out())
        return ctx

    def _run_one(self, ctx: CompilationContext, p: Pass) -> None:
        before = ctx.module.instruction_count()
        ts_us = ctx.tracer.now_us() if ctx.tracer is not None else 0.0
        t0 = time.perf_counter()
        stats = p.run(ctx) or {}
        seconds = time.perf_counter() - t0
        after = ctx.module.instruction_count()
        timing = PassTiming(p.name, seconds, before, after, dict(stats))
        ctx.record(timing)
        if ctx.tracer is not None:
            ctx.tracer.pass_span(p.name, ts_us, seconds * 1e6,
                                 {"instrs_before": before,
                                  "instrs_after": after, **{
                                      k: v for k, v in stats.items()
                                      if isinstance(v, (int, float))}})
        if not p.preserves_cfg:
            ctx.cache.invalidate()
        if self.verify_each:
            self._verify_after(ctx, p)
        if self.print_after_each:
            self._print_after(ctx, p)

    def _verify_after(self, ctx: CompilationContext, p: Pass) -> None:
        # A deliberately fresh cache: verifying through the shared one
        # would trust exactly the data a buggy pass failed to
        # invalidate.
        from repro.ir.verifier import verify_module
        try:
            verify_module(ctx.module)
            if ctx.program is not None:
                for module in ctx.program.modules.values():
                    verify_module(module)
        except IRError as error:
            raise IRError(f"after pass '{p.name}': {error}") from error

    def _print_after(self, ctx: CompilationContext, p: Pass) -> None:
        from repro.ir.printer import print_module
        out = self._out()
        print(f"; === IR after {p.name} ===", file=out)
        if ctx.program is not None:
            for color in ctx.program.colors:
                print(f"; --- partition {color} ---", file=out)
                print(print_module(ctx.program.modules[color]), file=out)
        else:
            print(print_module(ctx.module), file=out)

    def _out(self):
        return self.stream if self.stream is not None else sys.stderr

    # -- reporting -------------------------------------------------------------

    @staticmethod
    def render_timings(ctx: CompilationContext) -> str:
        """Human-readable per-pass timing table (``--time-passes``)."""
        lines = ["=== pass timings ==="]
        total = 0.0
        for t in ctx.timings:
            total += t.seconds
            delta = t.instrs_after - t.instrs_before
            extra = "".join(
                f" {k}={v}" for k, v in sorted(t.stats.items()))
            lines.append(f"{t.name:<14} {t.seconds * 1e3:8.2f} ms  "
                         f"instrs {t.instrs_before:>5} -> "
                         f"{t.instrs_after:<5} ({delta:+d}){extra}")
        lines.append(f"{'total':<14} {total * 1e3:8.2f} ms")
        return "\n".join(lines)
