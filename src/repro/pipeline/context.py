"""The state threaded through a pipeline run.

A :class:`CompilationContext` carries everything a pass may need: the
module under compilation, the analysis mode, the shared
:class:`~repro.pipeline.analyses.AnalysisCache`, the metrics registry
per-pass statistics are published into, an optional tracer, and the
results the analysis/partition passes deposit (``analysis`` and
``program``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import MetricsRegistry
from repro.pipeline.analyses import AnalysisCache


@dataclass
class PassTiming:
    """Wall time and instruction-count delta of one executed pass."""

    name: str
    seconds: float
    instrs_before: int
    instrs_after: int
    stats: Dict[str, object] = field(default_factory=dict)

    @property
    def erased(self) -> int:
        return max(self.instrs_before - self.instrs_after, 0)

    @property
    def added(self) -> int:
        return max(self.instrs_after - self.instrs_before, 0)


class CompilationContext:
    """Everything shared between the passes of one pipeline run."""

    def __init__(self, module, mode: str = "hardened",
                 entries: Optional[Sequence[str]] = None,
                 sync_barriers: bool = True,
                 metrics: Optional[MetricsRegistry] = None,
                 tracer=None,
                 cache: Optional[AnalysisCache] = None,
                 optimize: Optional[str] = None,
                 profile: Optional[dict] = None):
        self.module = module
        self.mode = mode
        self.entries = list(entries) if entries is not None else None
        self.sync_barriers = sync_barriers
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer
        self.cache = cache if cache is not None else AnalysisCache()
        #: Placement policy name for the ``optimize-placement`` pass
        #: (None/"none" keeps the historical color-home placement).
        self.optimize = optimize
        #: Measured traffic profile for the ``profile`` policy.
        self.profile = profile
        #: AnalysisResult deposited by the ``secure-types`` pass.
        self.analysis = None
        #: Shared PartitionPlanner deposited by ``optimize-placement``.
        self.planner = None
        #: PlacementDecisions deposited by ``optimize-placement``.
        self.placement = None
        #: PartitionGraph deposited by ``optimize-placement``.
        self.placement_graph = None
        #: Before/after summary deposited by ``optimize-placement``.
        self.placement_report = None
        #: PartitionedProgram deposited by the ``partition`` pass.
        self.program = None
        #: One entry per executed pass, in order.
        self.timings: List[PassTiming] = []

    def record(self, timing: PassTiming) -> None:
        self.timings.append(timing)
        name = timing.name
        self.metrics.inc(f"pipeline.pass.runs[{name}]")
        self.metrics.inc(f"pipeline.pass.seconds[{name}]",
                         round(timing.seconds, 6))
        self.metrics.inc(f"pipeline.pass.erased[{name}]", timing.erased)
        self.metrics.inc(f"pipeline.pass.added[{name}]", timing.added)
        for key, value in timing.stats.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self.metrics.inc(f"pipeline.pass.{key}[{name}]", value)

    def publish_cache_stats(self) -> None:
        stats = self.cache.stats()
        self.metrics.set("pipeline.analysis_cache.hits", stats["hits"])
        self.metrics.set("pipeline.analysis_cache.misses", stats["misses"])
