"""Command-line interface: ``python -m repro <command>``.

Commands mirror the Privagic toolchain of Figure 5:

``analyze``
    Run the secure type analysis on a MiniC file and report the
    inferred color sets or the typing errors.

``compile``
    Analyze and partition; print the per-color modules (optionally to
    a directory, one ``.ir`` file per partition).

``run``
    Compile, partition and execute an entry point on the simulated
    SGX machine, reporting the result and the message traffic.

All three drive the :mod:`repro.pipeline` pass manager and accept
``--passes PIPELINE`` (comma-separated pass names),
``--print-after-each`` and ``--time-passes``.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.core.colors import HARDENED, RELAXED
from repro.core.compiler import PrivagicCompiler
from repro.errors import PrivagicError
from repro.ir.interp import ENGINES
from repro.ir.printer import print_module
from repro.pipeline import ANALYZE_PIPELINE, PassManager


def _read(path: str) -> str:
    with open(path) as handle:
        return handle.read()


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("file", help="source file (MiniC or MiniPy)")
    parser.add_argument("--mode", choices=[HARDENED, RELAXED],
                        default=HARDENED,
                        help="analysis mode (default: hardened)")
    parser.add_argument("--frontend", metavar="LANG", default=None,
                        help="source language: minic or minipy "
                             "(default: by file extension; .c/.mc/"
                             ".minic is MiniC, .mpy/.minipy is MiniPy)")
    parser.add_argument("--passes", metavar="PIPELINE", default=None,
                        help="comma-separated pass pipeline (default: "
                             "the full Figure-5 pipeline)")
    parser.add_argument("--print-after-each", action="store_true",
                        help="print the IR after every pass (stderr)")
    parser.add_argument("--time-passes", action="store_true",
                        help="print a per-pass wall-time table (stderr)")
    parser.add_argument("--optimize", metavar="POLICY", default=None,
                        help="placement policy for the "
                             "optimize-placement pass: none (default), "
                             "kl (Kernighan-Lin boundary refinement) "
                             "or profile (needs --profile-in)")
    parser.add_argument("--profile-in", metavar="PROFILE.json",
                        default=None,
                        help="measured traffic profile from a prior "
                             "run's --profile-out; drives "
                             "--optimize profile")
    parser.add_argument("--partition-stats", action="store_true",
                        help="print the per-color partition table "
                             "(chunks, instructions, TCB, boundary "
                             "call sites) and, with --optimize, the "
                             "placement quality report")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Privagic reproduction toolchain (MIDDLEWARE'24)")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze",
                             help="type-check and infer colors")
    _add_common(analyze)

    compile_cmd = sub.add_parser("compile",
                                 help="partition into per-color modules")
    _add_common(compile_cmd)
    compile_cmd.add_argument("-o", "--output",
                             help="directory for per-partition .ir files")
    compile_cmd.add_argument("--stats", action="store_true",
                             help="print the compilation metrics "
                                  "(per-pass timings, cache hits)")

    run = sub.add_parser("run", help="compile and execute")
    _add_common(run)
    run.add_argument("--entry", default="main",
                     help="entry point (default: main)")
    run.add_argument("--engine", choices=list(ENGINES), default=None,
                     help="interpreter engine (default: decoded, or "
                          "REPRO_ENGINE; 'traced' adds the hot-loop "
                          "superinstruction tier, tunable via "
                          "REPRO_TRACE_THRESHOLD)")
    run.add_argument("--max-steps", type=int, default=None,
                     metavar="N",
                     help="abort the run after N scheduler steps")
    run.add_argument("--inject", metavar="SPEC", default=None,
                     help="fault-injection schedule, e.g. "
                          "'channel-drop:U->green:spawn:2,"
                          "iago-retval:malloc:1:replay' "
                          "(see repro.faults.plan)")
    run.add_argument("--chaos-seed", type=int, default=None,
                     metavar="SEED",
                     help="draw a random fault plan from SEED "
                          "instead of an explicit --inject spec")
    run.add_argument("--watchdog-steps", type=int, default=None,
                     metavar="N",
                     help="per-context step budget; exceeding it "
                          "raises WatchdogTimeout with stall "
                          "diagnostics")
    run.add_argument("--trace", metavar="OUT.json", default=None,
                     help="write a Chrome trace_event JSON of the run "
                          "(load in chrome://tracing or Perfetto)")
    run.add_argument("--stats", action="store_true",
                     help="print the full metrics dump after the run")
    run.add_argument("--profile-out", metavar="PROFILE.json",
                     default=None,
                     help="write the measured per-channel traffic "
                          "after the run (feeds --optimize profile)")
    run.add_argument("args", nargs="*", type=int,
                     help="integer arguments for the entry point")

    serve = sub.add_parser(
        "serve",
        help="host the partitioned KV application behind TCP "
             "(memcached text protocol)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=11311,
                       help="listening port; 0 picks an ephemeral "
                            "port, printed on startup (default: "
                            "11311)")
    serve.add_argument("--shards", type=int, default=None,
                       metavar="N",
                       help="serve through N shard-worker processes "
                            "behind a consistent-hash router "
                            "(default: single-process)")
    serve.add_argument("--batch", type=int, default=16,
                       help="max requests per interpreter drive "
                            "(1 disables batching; default: 16)")
    serve.add_argument("--batch-window", type=float, default=None,
                       metavar="SECONDS",
                       help="adaptive batch-coalescing cap "
                            "(default: 0.002)")
    serve.add_argument("--queue-depth", type=int, default=128,
                       help="pending-request bound; beyond it "
                            "requests are shed with SERVER_BUSY "
                            "(default: 128)")
    serve.add_argument("--capacity-bytes", type=int,
                       default=64 * 1024 * 1024,
                       help="untrusted cache LRU capacity")
    serve.add_argument("--engine", choices=list(ENGINES),
                       default=None,
                       help="interpreter engine (default: traced, "
                            "or REPRO_ENGINE)")
    serve.add_argument("--max-steps", type=int,
                       default=50_000_000, metavar="N",
                       help="per-drive scheduler step budget")
    serve.add_argument("--watchdog-steps", type=int, default=None,
                       metavar="N",
                       help="per-context step budget (raises "
                            "WatchdogTimeout)")
    serve.add_argument("--max-requests", type=int, default=None,
                       metavar="N",
                       help="drain and exit after accepting N "
                            "requests (tests/smoke)")
    serve.add_argument("--inject", metavar="SPEC", default=None,
                       help="fault-injection schedule (see "
                            "repro.faults.plan)")
    serve.add_argument("--chaos-seed", type=int, default=None,
                       metavar="SEED",
                       help="random fault plan from SEED")
    serve.add_argument("--kill-shard", metavar="K:N", default=None,
                       help="chaos: shard K simulates an AEX (hard "
                            "process exit) after N operations "
                            "(requires --shards)")
    serve.add_argument("--no-recover", action="store_true",
                       help="do not restart dead shards; a shard "
                            "death becomes a typed EnclaveCrash")
    serve.add_argument("--on-death", default="restart",
                       choices=["restart", "rebalance", "degrade",
                                "fault"],
                       help="confirmed-shard-death policy (requires "
                            "--shards; default: restart)")
    serve.add_argument("--max-restarts", type=int, default=3,
                       metavar="N",
                       help="consecutive recoveries per shard before "
                            "its circuit breaker opens (default: 3)")
    serve.add_argument("--spawn-timeout", type=float, default=60.0,
                       metavar="SECONDS",
                       help="shard-worker ready-line deadline "
                            "(default: 60)")
    serve.add_argument("--connect-timeout", type=float, default=10.0,
                       metavar="SECONDS",
                       help="per-attempt shard connect cap "
                            "(default: 10)")
    serve.add_argument("--connect-retries", type=int, default=3,
                       metavar="N",
                       help="extra shard connect attempts with "
                            "exponential backoff (default: 3)")
    serve.add_argument("--probe-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="probe an idle shard after this many "
                            "reply-free seconds (default: off)")
    serve.add_argument("--probe-timeout", type=float, default=5.0,
                       metavar="SECONDS",
                       help="an unanswered probe older than this is "
                            "a confirmed shard death (default: 5)")
    serve.add_argument("--forward-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="a busy shard whose oldest in-flight "
                            "request is older than this is dead "
                            "(default: off)")
    serve.add_argument("--orphan-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="shard workers self-terminate after "
                            "this many connection-free seconds "
                            "(default: off)")
    serve.add_argument("--net-inject", metavar="SPEC", default=None,
                       help="socket-chaos schedule for the shard "
                            "links (net-reset/-slow/-short/-garble; "
                            "see repro.faults.netchaos)")
    serve.add_argument("--net-chaos-seed", type=int, default=None,
                       metavar="SEED",
                       help="seed for the socket-chaos RNG")
    serve.add_argument("--trace", metavar="OUT.json", default=None,
                       help="write a Chrome trace_event JSON of the "
                            "serving run")
    serve.add_argument("--stats", action="store_true",
                       help="print the full metrics dump on "
                            "shutdown")

    loadgen = sub.add_parser(
        "loadgen",
        help="replay a YCSB workload against a running server")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=11311)
    loadgen.add_argument("--workload", default="C",
                         help="YCSB workload: A/B/C/D/F or "
                              "'ycsb-a' aliases (default: C)")
    loadgen.add_argument("--clients", type=int, default=4,
                         help="concurrent client threads")
    loadgen.add_argument("--ops", type=int, default=1000,
                         help="total operations across all clients")
    loadgen.add_argument("--records", type=int, default=256,
                         help="preloaded keyspace size")
    loadgen.add_argument("--seed", type=int, default=42)
    loadgen.add_argument("--value-bytes", type=int, default=None,
                         help="value size (default: the workload's "
                              "record_bytes)")
    loadgen.add_argument("--max-retries", type=int, default=500,
                         help="SERVER_BUSY retries per operation "
                              "before abandoning it (default: 500)")
    loadgen.add_argument("--no-preload", action="store_true",
                         help="skip preloading the keyspace")
    loadgen.add_argument("--lockstep", action="store_true",
                         help="serialize client turns into a seeded "
                              "global order (fully deterministic "
                              "interleaving)")
    loadgen.add_argument("--json", action="store_true",
                         help="print the report as JSON")
    return parser


def _frontend_for(options):
    """The registered frontend the options select: an explicit
    --frontend name wins (unknown names get a did-you-mean error),
    otherwise the file extension decides."""
    from repro.secval import resolve_frontend
    return resolve_frontend(options.frontend, options.file)


def _profile_for(options) -> Optional[dict]:
    if getattr(options, "profile_in", None) is None:
        return None
    from repro.core.placement import load_profile
    return load_profile(options.profile_in)


def _compiler_for(options, **kwargs) -> PrivagicCompiler:
    return PrivagicCompiler(
        mode=options.mode, passes=options.passes,
        time_passes=options.time_passes,
        print_after_each=options.print_after_each,
        optimize=options.optimize, profile=_profile_for(options),
        **kwargs)


def _print_partition_stats(ctx, program) -> None:
    """The --partition-stats tail: per-color table plus the placement
    quality report when the optimizer ran."""
    from repro.core.placement import (format_partition_stats,
                                      partition_stats)
    print(format_partition_stats(partition_stats(program)))
    if ctx is not None and ctx.placement_report is not None:
        import json as json_module
        print("placement report:")
        print(json_module.dumps(ctx.placement_report, indent=2,
                                sort_keys=True))


def cmd_analyze(options) -> int:
    module = _frontend_for(options).compile_source(
        _read(options.file), os.path.basename(options.file))
    manager = PassManager(options.passes or ANALYZE_PIPELINE,
                          time_passes=options.time_passes,
                          print_after_each=options.print_after_each)
    ctx = manager.run(module, mode=options.mode,
                      optimize=options.optimize,
                      profile=_profile_for(options))
    result = ctx.analysis
    if result is None:
        print("pipeline ran no 'secure-types' pass; nothing to report",
              file=sys.stderr)
        return 1
    if result.errors:
        for error in result.errors:
            print(f"error: {error}", file=sys.stderr)
        return 1
    print(f"analysis OK in {result.passes} pass(es); "
          f"colors: {sorted(result.named_colors()) or '(none)'}")
    for name in sorted(result.functions):
        fa = result.functions[name]
        print(f"  {name}: colorset={sorted(fa.color_set) or ['F']} "
              f"returns={fa.return_color}")
    if options.partition_stats:
        # The analyze pipeline stops before materialization; partition
        # quietly (sharing the planner and any placement decisions) so
        # the per-color table reflects what compile would emit.
        from repro.core.partition import partition
        program = ctx.program
        if program is None:
            program = partition(result, cache=ctx.cache,
                                planner=ctx.planner,
                                placement=ctx.placement)
        _print_partition_stats(ctx, program)
    return 0


def cmd_compile(options) -> int:
    compiler = _compiler_for(options)
    program = compiler.compile_source(_read(options.file),
                                      os.path.basename(options.file),
                                      frontend=_frontend_for(options).name)
    if program is not None:
        for color in program.colors:
            module = program.modules[color]
            text = print_module(module)
            if options.output:
                os.makedirs(options.output, exist_ok=True)
                path = os.path.join(options.output, f"{color}.ir")
                with open(path, "w") as handle:
                    handle.write(text)
                print(f"wrote {path} "
                      f"({module.instruction_count()} instructions)")
            else:
                print(text)
    else:
        # The pipeline stopped before partitioning: emit the
        # (optimized) single module instead.
        text = print_module(compiler.context.module)
        if options.output:
            os.makedirs(options.output, exist_ok=True)
            path = os.path.join(options.output, "module.ir")
            with open(path, "w") as handle:
                handle.write(text)
            print(f"wrote {path}")
        else:
            print(text)
    if options.partition_stats and program is not None:
        _print_partition_stats(compiler.context, program)
    if options.stats:
        from repro.obs.export import metrics_to_text
        print(metrics_to_text(compiler.context.metrics))
    return 0


def cmd_run(options) -> int:
    from repro.runtime import PrivagicRuntime
    from repro.sgx import SGXAccessPolicy

    obs = None
    metrics = tracer = None
    if options.trace or options.stats:
        from repro.obs import Observability
        obs = Observability(trace=options.trace is not None)
        # Compile through the same registry/tracer so the pipeline's
        # per-pass metrics and spans land next to the runtime's.
        metrics, tracer = obs.registry, obs.tracer
    compiler = _compiler_for(options, metrics=metrics, tracer=tracer)
    program = compiler.compile_source(_read(options.file),
                                      os.path.basename(options.file),
                                      frontend=_frontend_for(options).name)
    if program is None:
        raise PrivagicError(
            "the pass pipeline did not produce a partitioned program "
            "(add 'partition' to --passes)")
    kwargs = {}
    if options.max_steps is not None:
        kwargs["max_steps"] = options.max_steps
    if options.watchdog_steps is not None:
        kwargs["watchdog_steps"] = options.watchdog_steps
    runtime = PrivagicRuntime(program, engine=options.engine, **kwargs)
    SGXAccessPolicy().attach(runtime.machine)
    if obs is not None:
        obs.attach(runtime)
    injector = _build_injector(options, program)
    if injector is not None:
        # After obs, so injection/detection events reach the tracer.
        injector.attach(runtime)
        print(f"chaos: injecting [{injector.plan.spec()}]",
              file=sys.stderr)
    try:
        result = runtime.run(options.entry, options.args)
    finally:
        if obs is not None:
            obs.detach()
        # The trace is most valuable when the run died with a typed
        # fault, so write it on the failure path too (stderr there,
        # to keep stdout clean for the fault-free contract).
        if obs is not None and options.trace:
            obs.write_trace(options.trace)
            print(f"trace: wrote {options.trace} "
                  f"({len(obs.tracer.events)} events)",
                  file=sys.stdout if sys.exc_info()[0] is None
                  else sys.stderr)
    if runtime.machine.stdout:
        sys.stdout.write(runtime.machine.stdout)
    print(f"{options.entry}({', '.join(map(str, options.args))}) "
          f"= {result}")
    print(f"messages: {runtime.stats.as_dict()}")
    if options.profile_out:
        from repro.core.placement import (profile_from_runtime,
                                          save_profile)
        save_profile(options.profile_out,
                     profile_from_runtime(runtime))
        print(f"profile: wrote {options.profile_out} "
              f"({runtime.stats.messages} message(s) measured)")
    if options.partition_stats:
        _print_partition_stats(compiler.context, program)
    if injector is not None:
        print(f"faults: injected={injector.injected_total()} "
              f"detected={injector.detected_total()} "
              f"of {injector.armed} armed")
    if obs is not None and options.stats:
        print(obs.metrics_text())
    return 0


def cmd_serve(options) -> int:
    import signal
    import threading

    from repro.serve.server import PrivagicServer, ServeConfig

    if options.shards is not None:
        return _cmd_serve_sharded(options)
    if options.kill_shard is not None:
        print("error: --kill-shard requires --shards",
              file=sys.stderr)
        return 1
    obs = None
    if options.trace or options.stats:
        from repro.obs import Observability
        obs = Observability(trace=options.trace is not None)
    config = ServeConfig(
        host=options.host, port=options.port, batch=options.batch,
        queue_depth=options.queue_depth,
        capacity_bytes=options.capacity_bytes,
        engine=options.engine, max_steps=options.max_steps,
        watchdog_steps=options.watchdog_steps,
        max_requests=options.max_requests)
    if options.batch_window is not None:
        config.batch_window = options.batch_window
    server = PrivagicServer(
        config,
        registry=obs.registry if obs is not None else None,
        tracer=obs.tracer if obs is not None else None)
    if obs is not None:
        obs.attach(server.engine.runtime)
    injector = _build_injector(options, server.engine.program)
    if injector is not None:
        injector.attach(server.engine.runtime)
        print(f"chaos: injecting [{injector.plan.spec()}]",
              file=sys.stderr)
    port = server.bind()
    print(f"serve: listening on {options.host}:{port} "
          f"(batch={options.batch}, "
          f"queue-depth={options.queue_depth})", flush=True)
    previous_handler = None
    in_main = threading.current_thread() is threading.main_thread()
    if in_main:
        previous_handler = signal.signal(
            signal.SIGINT, lambda *_args: server.request_stop())
    try:
        server.serve_forever()
    finally:
        if in_main and previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
        if obs is not None:
            obs.detach()
            if options.trace:
                obs.write_trace(options.trace)
                print(f"trace: wrote {options.trace} "
                      f"({len(obs.tracer.events)} events)",
                      file=sys.stdout if sys.exc_info()[0] is None
                      else sys.stderr)
    registry = server.registry
    requests = registry.counter("serve.requests").get()
    drives = registry.counter("serve.drives").get()
    batch_hist = registry.histogram("serve.batch_size")
    print(f"serve: {'drained cleanly' if server.drained else 'stopped'}: "
          f"{requests} request(s) over {drives} drive(s) "
          f"(mean batch {batch_hist.mean:.2f}), "
          f"shed={registry.counter('serve.shed').get()}")
    if injector is not None:
        print(f"faults: injected={injector.injected_total()} "
              f"detected={injector.detected_total()} "
              f"of {injector.armed} armed")
    if obs is not None and options.stats:
        print(obs.metrics_text())
    return 0


def _parse_kill_shard(spec: str, shards: int):
    """``K:N`` — shard K hard-exits after N operations."""
    try:
        index_text, after_text = spec.split(":", 1)
        index, after = int(index_text), int(after_text)
    except ValueError:
        raise PrivagicError(
            f"--kill-shard wants K:N (shard index, op count), "
            f"got {spec!r}")
    if not 0 <= index < shards:
        raise PrivagicError(
            f"--kill-shard index {index} out of range for "
            f"{shards} shard(s)")
    if after < 1:
        raise PrivagicError(
            f"--kill-shard op count must be >= 1, got {after}")
    return {index: after}


def _cmd_serve_sharded(options) -> int:
    import signal
    import threading

    from repro.serve.router import RouterConfig, ShardRouter

    if options.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 1
    obs = None
    if options.trace or options.stats:
        from repro.obs import Observability
        obs = Observability(trace=options.trace is not None)
    config = RouterConfig(
        host=options.host, port=options.port,
        shards=options.shards, batch=options.batch,
        batch_window=options.batch_window,
        queue_depth=options.queue_depth,
        capacity_bytes=options.capacity_bytes,
        engine=options.engine, max_steps=options.max_steps,
        watchdog_steps=options.watchdog_steps,
        max_requests=options.max_requests,
        recover=not options.no_recover,
        on_death=options.on_death,
        max_restarts=options.max_restarts,
        spawn_timeout=options.spawn_timeout,
        connect_timeout=options.connect_timeout,
        connect_retries=options.connect_retries,
        probe_interval=options.probe_interval,
        probe_timeout=options.probe_timeout,
        forward_timeout=options.forward_timeout,
        orphan_timeout=options.orphan_timeout,
        net_inject=options.net_inject,
        net_chaos_seed=options.net_chaos_seed,
        crash_after=_parse_kill_shard(options.kill_shard,
                                      options.shards)
        if options.kill_shard is not None else {},
        inject=options.inject, chaos_seed=options.chaos_seed)
    router = ShardRouter(
        config,
        registry=obs.registry if obs is not None else None,
        tracer=obs.tracer if obs is not None else None)
    port = router.bind()
    print(f"serve: routing {options.host}:{port} over "
          f"{options.shards} shard(s) (batch={options.batch}, "
          f"queue-depth={options.queue_depth}, "
          f"recover={'on' if config.recover else 'off'})",
          flush=True)
    in_main = threading.current_thread() is threading.main_thread()
    previous_handler = None
    if in_main:
        previous_handler = signal.signal(
            signal.SIGINT, lambda *_args: router.request_stop())
    try:
        router.serve_forever()
    finally:
        if in_main and previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
        if obs is not None and options.trace:
            obs.write_trace(options.trace)
            print(f"trace: wrote {options.trace} "
                  f"({len(obs.tracer.events)} events)",
                  file=sys.stdout if sys.exc_info()[0] is None
                  else sys.stderr)
    stats = router.stats()
    registry = router.registry
    print(f"serve: "
          f"{'drained cleanly' if router.drained else 'stopped'}: "
          f"{stats['routed']} request(s) over {stats['shards']} "
          f"shard(s), ledger={stats['ledger_keys']} key(s), "
          f"restarts={stats['restarts']}, "
          f"shed={registry.counter('router.shed').get()}")
    if obs is not None and options.stats:
        print(obs.metrics_text())
    return 0


def cmd_loadgen(options) -> int:
    import json as json_module

    from repro.serve.loadgen import LoadError, format_report, run_load

    try:
        report = run_load(
            options.host, options.port, workload=options.workload,
            clients=options.clients, ops=options.ops,
            records=options.records, seed=options.seed,
            value_bytes=options.value_bytes,
            preload=not options.no_preload,
            lockstep=options.lockstep,
            max_retries=options.max_retries)
    except (ValueError, LoadError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    if options.json:
        print(json_module.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_report(report))
    failed = report["dropped_connections"] or report["errors"] \
        or report["abandoned"]
    return 1 if failed else 0


def _build_injector(options, program):
    """The fault injector requested by --inject / --chaos-seed, or
    ``None`` for an honest run."""
    if options.inject is None and options.chaos_seed is None:
        return None
    from repro.faults import FaultInjector, FaultPlan

    if options.inject is not None:
        plan = FaultPlan.parse(options.inject,
                               seed=options.chaos_seed or 0)
    else:
        colors = sorted(set(program.chunk_colors.values())
                        - {program.untrusted})
        plan = FaultPlan.random(options.chaos_seed, colors,
                                untrusted=program.untrusted)
    return FaultInjector(plan)


def main(argv: Optional[List[str]] = None) -> int:
    from repro.errors import RuntimeFault, fault_exit_code

    options = build_parser().parse_args(argv)
    handler = {"analyze": cmd_analyze, "compile": cmd_compile,
               "run": cmd_run, "serve": cmd_serve,
               "loadgen": cmd_loadgen}[options.command]
    try:
        return handler(options)
    except RuntimeFault as error:
        # One structured line per fault, then the diagnostic detail;
        # the exit code identifies the fault class (errors.py).
        code = fault_exit_code(error)
        lines = str(error).splitlines() or [""]
        print(f"fault[{type(error).__name__}] exit={code}: {lines[0]}",
              file=sys.stderr)
        for line in lines[1:]:
            print(line, file=sys.stderr)
        return code
    except PrivagicError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
