"""repro — a reproduction of *Privagic: automatic code partitioning with
explicit secure typing* (MIDDLEWARE 2024).

The package is organised as one subpackage per subsystem:

``repro.ir``
    An SSA intermediate representation modelled on LLVM IR, with a
    builder, textual printer/parser, verifier, CFG analyses, the
    ``mem2reg`` and dead-code-elimination passes, and a step-based
    interpreter with a simulated flat address space.

``repro.frontend``
    A small C-like language ("MiniC") compiler that plays the role of
    clang: it understands the ``color(...)`` secure-type qualifier and
    the ``within`` / ``ignore`` / ``entry`` annotations of the paper.

``repro.core``
    The paper's contribution: the color lattice (Table 2), the secure
    type system (Table 3), the stabilizing inference algorithm with
    per-call-site specialization, and the partitioner that rewrites a
    program into per-color chunks.

``repro.sgx``
    An Intel SGX simulator: enclaves, processor modes, access checks
    and a calibrated cost model (enclave transitions, amplified LLC
    misses in enclave mode, EPC limits).

``repro.runtime``
    The Privagic runtime: lock-free FIFO channels, spawn/cont/wait
    messages, per-enclave worker threads and the partitioned-program
    loader.

``repro.baselines``
    Comparators: sequential data-flow analyses (use-def taint,
    Andersen points-to, abstract-interpretation taint), a Scone-like
    full-embed deployment and an Intel-SDK-like ecall deployment.

``repro.workloads`` / ``repro.datastructures`` / ``repro.apps``
    YCSB workload generation, the evaluated data structures, and
    minicache, the memcached stand-in of the evaluation.

``repro.bench``
    The experiment harness regenerating every table and figure of the
    paper's evaluation section.
"""

from repro.errors import (
    PrivagicError,
    SecureTypeError,
    PartitionError,
    IRError,
    FrontendError,
)

__version__ = "1.0.0"

__all__ = [
    "PrivagicError",
    "SecureTypeError",
    "PartitionError",
    "IRError",
    "FrontendError",
    "__version__",
]
