"""MiniC recursive-descent parser."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import FrontendError
from repro.frontend import ast_nodes as ast
from repro.frontend.lexer import Token, tokenize

#: Tokens that start a type.
_TYPE_KEYWORDS = ("void", "char", "int", "long", "float", "double",
                  "unsigned", "struct", "union", "const")

#: Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_COMPOUND_ASSIGN = {"+=": "+", "-=": "-", "*=": "*", "/=": "/",
                    "%=": "%", "&=": "&", "|=": "|", "^=": "^",
                    "<<=": "<<", ">>=": ">>"}


class Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "eof":
            self.pos += 1
        return token

    def error(self, message: str, token: Optional[Token] = None):
        token = token or self.current
        raise FrontendError(message, token.line, token.column)

    def expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            self.error(f"expected {op!r}, found {self.current.text!r}")
        return self.advance()

    def expect_ident(self) -> Token:
        if self.current.kind != "ident":
            self.error(f"expected identifier, found {self.current.text!r}")
        return self.advance()

    def accept_op(self, op: str) -> bool:
        if self.current.is_op(op):
            self.advance()
            return True
        return False

    def _pos(self, token: Token) -> dict:
        return {"line": token.line, "column": token.column}

    # -- types -----------------------------------------------------------------------

    def at_type(self, offset: int = 0) -> bool:
        return self.peek(offset).is_kw(*_TYPE_KEYWORDS)

    def parse_type(self) -> ast.TypeExpr:
        """Parse ``base [color(name)] '*'*``; arrays are handled by the
        declarator parsing."""
        token = self.current
        while self.current.is_kw("const"):
            self.advance()
        if self.current.is_kw("struct", "union"):
            kw = self.advance()
            name = self.expect_ident().text
            base: object = (kw.text, name)
        elif self.current.is_kw(*_TYPE_KEYWORDS):
            base = self.advance().text
            if base == "unsigned":
                # "unsigned int" / bare "unsigned" both map to int.
                if self.current.is_kw("char", "int", "long"):
                    base = self.advance().text
                else:
                    base = "int"
            elif base == "long" and self.current.is_kw("long", "int"):
                self.advance()
        else:
            self.error(f"expected a type, found {self.current.text!r}")
        color = self._parse_color()
        type_expr = ast.TypeExpr(base, color, **self._pos(token))
        while self.current.is_op("*"):
            self.advance()
            type_expr = type_expr.pointer_to()
            trailing = self._parse_color()
            if trailing is not None:
                # `int * color(blue) p` would color the pointer itself,
                # which rule 4 forbids; colors belong to pointees.
                self.error("a pointer cannot carry its own color; "
                           "write `T color(c)* p`")
        return type_expr

    def _parse_color(self) -> Optional[str]:
        if self.current.is_kw("color"):
            self.advance()
            self.expect_op("(")
            name = self.expect_ident().text
            self.expect_op(")")
            return name
        return None

    # -- top level ---------------------------------------------------------------------

    def parse_translation_unit(self) -> ast.TranslationUnit:
        decls: List[ast.Node] = []
        while self.current.kind != "eof":
            decls.extend(self.parse_top_level())
        return ast.TranslationUnit(decls, line=1, column=1)

    def parse_top_level(self) -> List[ast.Node]:
        annotations = []
        while self.current.is_kw("extern", "within", "ignore", "entry",
                                 "static"):
            kw = self.advance().text
            if kw != "static":
                annotations.append(kw)

        # struct/union definitions: `struct Name { ... };`
        if self.current.is_kw("struct", "union") and \
                self.peek(1).kind == "ident" and self.peek(2).is_op("{"):
            return [self._parse_record_decl()]

        ret = self.parse_type()

        # Function-pointer global: `ret (*name)(params);`
        if self.current.is_op("(") and self.peek(1).is_op("*"):
            return [self._parse_funcptr_decl(ret, annotations)]

        name = self.expect_ident()
        if self.current.is_op("("):
            return [self._parse_function(ret, name, annotations)]
        return self._parse_global_vars(ret, name)

    def _parse_record_decl(self) -> ast.Node:
        kw = self.advance()  # struct / union
        name = self.expect_ident().text
        self.expect_op("{")
        fields: List[Tuple[ast.TypeExpr, str]] = []
        while not self.current.is_op("}"):
            ftype = self.parse_type()
            fname = self.expect_ident().text
            ftype = self._parse_array_suffix(ftype)
            fields.append((ftype, fname))
            self.expect_op(";")
        self.expect_op("}")
        self.expect_op(";")
        cls = ast.StructDecl if kw.text == "struct" else ast.UnionDecl
        return cls(name, fields, **self._pos(kw))

    def _parse_array_suffix(self, type_expr: ast.TypeExpr) -> ast.TypeExpr:
        if self.current.is_op("["):
            self.advance()
            if self.current.kind != "int":
                self.error("array size must be an integer literal")
            size = int(self.advance().value)
            self.expect_op("]")
            type_expr = ast.TypeExpr(type_expr.base, type_expr.color,
                                     type_expr.pointer_depth, size,
                                     line=type_expr.line,
                                     column=type_expr.column)
        return type_expr

    def _parse_funcptr_decl(self, ret, annotations) -> ast.Node:
        self.expect_op("(")
        self.expect_op("*")
        name = self.expect_ident()
        self.expect_op(")")
        params = self._parse_funcptr_params()
        self.expect_op(";")
        type_expr = ast.FuncPtrTypeExpr(ret, params, **self._pos(name))
        return ast.GlobalDecl(type_expr, name.text, None,
                              **self._pos(name))

    def _parse_funcptr_params(self) -> List[ast.TypeExpr]:
        self.expect_op("(")
        params: List[ast.TypeExpr] = []
        if not self.current.is_op(")"):
            while True:
                params.append(self.parse_type())
                if self.current.kind == "ident":
                    self.advance()  # parameter name is optional/ignored
                if not self.accept_op(","):
                    break
        self.expect_op(")")
        return params

    def _parse_function(self, ret, name: Token,
                        annotations: List[str]) -> ast.FunctionDecl:
        self.expect_op("(")
        params: List[ast.Param] = []
        vararg = False
        if not self.current.is_op(")"):
            if self.current.is_kw("void") and self.peek(1).is_op(")"):
                self.advance()
            else:
                while True:
                    if self.current.is_op("..."):
                        self.advance()
                        vararg = True
                        break
                    ptype = self.parse_type()
                    if self.current.is_op("(") and self.peek(1).is_op("*"):
                        self.expect_op("(")
                        self.expect_op("*")
                        pname = self.expect_ident().text
                        self.expect_op(")")
                        fp_params = self._parse_funcptr_params()
                        ptype = ast.FuncPtrTypeExpr(
                            ptype, fp_params, **self._pos(self.current))
                    elif self.current.kind == "ident":
                        pname = self.advance().text
                    else:
                        pname = f"p{len(params)}"
                    params.append(ast.Param(ptype, pname,
                                            **self._pos(self.current)))
                    if not self.accept_op(","):
                        break
        self.expect_op(")")
        if self.accept_op(";"):
            body = None
            if "within" not in annotations and "ignore" not in annotations:
                annotations = list(annotations) + ["extern"]
        else:
            body = self.parse_block()
        return ast.FunctionDecl(ret, name.text, params, body, annotations,
                                vararg, **self._pos(name))

    def _parse_global_vars(self, type_expr, first_name: Token) -> List[ast.Node]:
        decls: List[ast.Node] = []
        name = first_name
        while True:
            vtype = self._parse_array_suffix(type_expr)
            init = None
            if self.accept_op("="):
                init = self.parse_assignment()
            decls.append(ast.GlobalDecl(vtype, name.text, init,
                                        **self._pos(name)))
            if not self.accept_op(","):
                break
            name = self.expect_ident()
        self.expect_op(";")
        return decls

    # -- statements ------------------------------------------------------------------------

    def parse_block(self) -> ast.Block:
        start = self.expect_op("{")
        statements: List[ast.Stmt] = []
        while not self.current.is_op("}"):
            statements.append(self.parse_statement())
        self.expect_op("}")
        return ast.Block(statements, **self._pos(start))

    def parse_statement(self) -> ast.Stmt:
        token = self.current
        if token.is_op("{"):
            return self.parse_block()
        if token.is_op(";"):
            self.advance()
            return ast.Block([], **self._pos(token))
        if token.is_kw("if"):
            return self._parse_if()
        if token.is_kw("while"):
            return self._parse_while()
        if token.is_kw("do"):
            return self._parse_do_while()
        if token.is_kw("for"):
            return self._parse_for()
        if token.is_kw("return"):
            self.advance()
            value = None if self.current.is_op(";") else self.parse_expression()
            self.expect_op(";")
            return ast.Return(value, **self._pos(token))
        if token.is_kw("break"):
            self.advance()
            self.expect_op(";")
            return ast.Break(**self._pos(token))
        if token.is_kw("continue"):
            self.advance()
            self.expect_op(";")
            return ast.Continue(**self._pos(token))
        if self.at_type():
            return self._parse_var_decl()
        expr = self.parse_expression()
        self.expect_op(";")
        return ast.ExprStmt(expr, **self._pos(token))

    def _parse_var_decl(self, consume_semicolon: bool = True) -> ast.Stmt:
        type_expr = self.parse_type()
        # Function-pointer local: `ret (*name)(params);`
        if self.current.is_op("(") and self.peek(1).is_op("*"):
            self.expect_op("(")
            self.expect_op("*")
            name = self.expect_ident()
            self.expect_op(")")
            params = self._parse_funcptr_params()
            fp_type = ast.FuncPtrTypeExpr(type_expr, params,
                                          **self._pos(name))
            init = None
            if self.accept_op("="):
                init = self.parse_assignment()
            if consume_semicolon:
                self.expect_op(";")
            return ast.VarDecl(fp_type, name.text, init,
                               **self._pos(name))
        statements: List[ast.Stmt] = []
        while True:
            name = self.expect_ident()
            vtype = self._parse_array_suffix(type_expr)
            init = None
            if self.accept_op("="):
                init = self.parse_assignment()
            statements.append(ast.VarDecl(vtype, name.text, init,
                                          **self._pos(name)))
            if not self.accept_op(","):
                break
        if consume_semicolon:
            self.expect_op(";")
        if len(statements) == 1:
            return statements[0]
        return ast.Block(statements, **self._pos(name))

    def _parse_if(self) -> ast.If:
        token = self.advance()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        then = self.parse_statement()
        orelse = None
        if self.current.is_kw("else"):
            self.advance()
            orelse = self.parse_statement()
        return ast.If(cond, then, orelse, **self._pos(token))

    def _parse_while(self) -> ast.While:
        token = self.advance()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.While(cond, body, **self._pos(token))

    def _parse_do_while(self) -> ast.DoWhile:
        token = self.advance()
        body = self.parse_statement()
        if not self.current.is_kw("while"):
            self.error("expected 'while' after do-body")
        self.advance()
        self.expect_op("(")
        cond = self.parse_expression()
        self.expect_op(")")
        self.expect_op(";")
        return ast.DoWhile(body, cond, **self._pos(token))

    def _parse_for(self) -> ast.For:
        token = self.advance()
        self.expect_op("(")
        init: Optional[ast.Stmt] = None
        if not self.current.is_op(";"):
            if self.at_type():
                init = self._parse_var_decl(consume_semicolon=False)
            else:
                init = ast.ExprStmt(self.parse_expression(),
                                    **self._pos(token))
        self.expect_op(";")
        cond = None if self.current.is_op(";") else self.parse_expression()
        self.expect_op(";")
        step = None if self.current.is_op(")") else self.parse_expression()
        self.expect_op(")")
        body = self.parse_statement()
        return ast.For(init, cond, step, body, **self._pos(token))

    # -- expressions -------------------------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        expr = self.parse_assignment()
        while self.accept_op(","):
            expr = self.parse_assignment()  # comma keeps the last value
        return expr

    def parse_assignment(self) -> ast.Expr:
        lhs = self._parse_conditional()
        token = self.current
        if token.is_op("="):
            self.advance()
            rhs = self.parse_assignment()
            return ast.Assign(lhs, rhs, None, **self._pos(token))
        if token.kind == "op" and token.text in _COMPOUND_ASSIGN:
            self.advance()
            rhs = self.parse_assignment()
            return ast.Assign(lhs, rhs, _COMPOUND_ASSIGN[token.text],
                              **self._pos(token))
        return lhs

    def _parse_conditional(self) -> ast.Expr:
        cond = self._parse_binary(1)
        if self.current.is_op("?"):
            token = self.advance()
            then = self.parse_expression()
            self.expect_op(":")
            orelse = self.parse_assignment()
            return ast.Conditional(cond, then, orelse, **self._pos(token))
        return cond

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        lhs = self._parse_unary()
        while True:
            token = self.current
            prec = _PRECEDENCE.get(token.text) if token.kind == "op" else None
            if prec is None or prec < min_precedence:
                return lhs
            self.advance()
            rhs = self._parse_binary(prec + 1)
            lhs = ast.Binary(token.text, lhs, rhs, **self._pos(token))

    def _parse_unary(self) -> ast.Expr:
        token = self.current
        if token.kind == "op" and token.text in ("-", "!", "~", "*", "&",
                                                 "++", "--", "+"):
            self.advance()
            operand = self._parse_unary()
            if token.text == "+":
                return operand
            return ast.Unary(token.text, operand, **self._pos(token))
        if token.is_kw("sizeof"):
            self.advance()
            self.expect_op("(")
            if self.at_type():
                type_expr = self.parse_type()
                node = ast.SizeofExpr(type=type_expr, **self._pos(token))
            else:
                node = ast.SizeofExpr(operand=self.parse_expression(),
                                      **self._pos(token))
            self.expect_op(")")
            return node
        # Cast: '(' type ')' unary
        if token.is_op("(") and self.at_type(1):
            self.advance()
            type_expr = self.parse_type()
            self.expect_op(")")
            operand = self._parse_unary()
            return ast.CastExpr(type_expr, operand, **self._pos(token))
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self.current
            if token.is_op("("):
                self.advance()
                args: List[ast.Expr] = []
                if not self.current.is_op(")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept_op(","):
                            break
                self.expect_op(")")
                expr = ast.CallExpr(expr, args, **self._pos(token))
            elif token.is_op("["):
                self.advance()
                index = self.parse_expression()
                self.expect_op("]")
                expr = ast.Index(expr, index, **self._pos(token))
            elif token.is_op("."):
                self.advance()
                field = self.expect_ident().text
                expr = ast.Member(expr, field, False, **self._pos(token))
            elif token.is_op("->"):
                self.advance()
                field = self.expect_ident().text
                expr = ast.Member(expr, field, True, **self._pos(token))
            elif token.is_op("++", "--"):
                self.advance()
                expr = ast.Postfix(token.text, expr, **self._pos(token))
            else:
                return expr

    def _parse_primary(self) -> ast.Expr:
        token = self.current
        if token.kind == "int" or token.kind == "char":
            self.advance()
            return ast.IntLiteral(int(token.value), **self._pos(token))
        if token.kind == "float":
            self.advance()
            return ast.FloatLiteral(float(token.value), **self._pos(token))
        if token.kind == "string":
            self.advance()
            return ast.StringLiteral(token.value, **self._pos(token))
        if token.kind == "ident":
            self.advance()
            return ast.Identifier(token.text, **self._pos(token))
        if token.is_op("("):
            self.advance()
            expr = self.parse_expression()
            self.expect_op(")")
            return expr
        self.error(f"unexpected token {token.text!r} in expression")


def parse(source: str, filename: str = "<source>") -> ast.TranslationUnit:
    return Parser(tokenize(source, filename)).parse_translation_unit()
