"""MiniPy lexer.

MiniPy is the second Privagic frontend: a Python-like secure scripting
language (functions, 64-bit ints, byte strings, ``while``/``if``,
calls, and ``secure(...)``/``public(...)`` declarations) that lowers
through the same secure-value contract (:mod:`repro.secval`) as MiniC.

The token stream is Python-shaped: logical lines end in ``newline``
tokens and indentation changes surface as ``indent``/``dedent`` pairs,
which is all the parser needs to recover block structure.  Inside
parentheses, newlines and indentation are suppressed (implicit line
joining).
"""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from repro.errors import FrontendError

KEYWORDS = frozenset({
    "def", "return", "if", "elif", "else", "while",
    "pass", "break", "continue",
    "and", "or", "not", "True", "False",
})

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "//=", "<<=", ">>=",
    "//", "<<", ">>", "<=", ">=", "==", "!=",
    "+=", "-=", "*=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "%", "=", "<", ">", "~", "&", "|", "^",
    "(", ")", ",", ":", "@",
]


class Token(NamedTuple):
    kind: str   # "kw", "ident", "int", "string", "op",
                # "newline", "indent", "dedent", "eof"
    text: str
    value: object
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.text in ops

    def is_kw(self, *kws: str) -> bool:
        return self.kind == "kw" and self.text in kws


_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
            "\\": "\\", "'": "'", '"': '"'}


class Lexer:
    """Converts MiniPy source text into a token stream."""

    def __init__(self, source: str, filename: str = "<source>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1
        self._indents: List[int] = [0]
        self._paren_depth = 0
        self._at_line_start = True
        self._emitted_any = False

    def tokens(self) -> Iterator[Token]:
        while True:
            if self._at_line_start and self._paren_depth == 0 and \
                    self.pos < len(self.source):
                token = self._handle_indentation()
                if token is not None:
                    yield token
                    continue
                if self._at_line_start and self.pos < len(self.source):
                    continue  # blank or comment-only line consumed
            self._skip_trivia()
            if self.pos >= len(self.source):
                # Close the final logical line and any open blocks.
                if self._emitted_any and not self._at_line_start:
                    self._at_line_start = True
                    yield Token("newline", "", None, self.line, self.column)
                while len(self._indents) > 1:
                    self._indents.pop()
                    yield Token("dedent", "", None, self.line, self.column)
                yield Token("eof", "", None, self.line, self.column)
                return
            if self._peek() == "\n":
                line, column = self.line, self.column
                self._advance()
                if self._paren_depth == 0 and not self._at_line_start:
                    self._at_line_start = True
                    yield Token("newline", "", None, line, column)
                continue
            token = self._next_token()
            self._at_line_start = False
            self._emitted_any = True
            yield token

    # -- internals -------------------------------------------------------------

    def _error(self, message: str) -> FrontendError:
        return FrontendError(message, self.line, self.column)

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos:self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += n
        return text

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _handle_indentation(self):
        """Measure the indentation of the next non-blank logical line
        and emit one indent/dedent step if the level changed."""
        # Measure leading spaces; blank and comment-only lines do not
        # affect the block structure.
        start = self.pos
        width = 0
        while self._peek() in " \t":
            if self._peek() == "\t":
                raise self._error("tabs are not allowed in indentation")
            self._advance()
            width += 1
        if self._peek() in ("\n", "#", ""):
            if self._peek() == "#":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            if self._peek() == "\n":
                self._advance()
                return None
            if self.pos >= len(self.source):
                self._at_line_start = True
                return None
            return None
        if width > self._indents[-1]:
            self._indents.append(width)
            self._at_line_start = False
            # Re-lex from the first real character of the line.
            return Token("indent", "", None, self.line, self.column)
        if width < self._indents[-1]:
            if width not in self._indents:
                raise self._error(
                    f"unindent to column {width + 1} matches no outer "
                    f"indentation level")
            self._indents.pop()
            # Stay at line start: further dedents may follow before
            # the line's first token is produced.
            self.pos = start
            self.column = 1
            return Token("dedent", "", None, self.line, self.column)
        self._at_line_start = False
        return None

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r":
                self._advance()
            elif ch == "#":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "\\" and self._peek(1) == "\n":
                self._advance(2)  # explicit line joining
            elif ch == "\n" and self._paren_depth > 0:
                self._advance()
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()
        if (ch == "b" and self._peek(1) in "\"'"):
            self._advance()
            return self._lex_string(line, column)
        if ch.isalpha() or ch == "_":
            text = self._lex_word()
            kind = "kw" if text in KEYWORDS else "ident"
            value: object = text
            if text == "True":
                value = 1
            elif text == "False":
                value = 0
            return Token(kind, text, value, line, column)
        if ch.isdigit():
            return self._lex_number(line, column)
        if ch in "\"'":
            return self._lex_string(line, column)
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                if op == "(":
                    self._paren_depth += 1
                elif op == ")":
                    self._paren_depth = max(0, self._paren_depth - 1)
                return Token("op", op, op, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_word(self) -> str:
        start = self.pos
        while self.pos < len(self.source) and (
                self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        return self.source[start:self.pos]

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            return Token("int", text, int(text, 16), line, column)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            raise self._error("MiniPy has no floats; values are 64-bit "
                              "integers")
        text = self.source[start:self.pos]
        return Token("int", text, int(text), line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        quote = self._advance()
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise self._error("unterminated string literal")
            if ch == quote:
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._advance()
                chars.append(_ESCAPES.get(esc, esc))
            else:
                chars.append(self._advance())
        text = "".join(chars)
        return Token("string", text, text, line, column)


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    return list(Lexer(source, filename).tokens())
