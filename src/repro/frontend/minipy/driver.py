"""MiniPy compilation driver — the secure-value lowering contract.

Implements the same two functions as the MiniC driver
(:mod:`repro.frontend.driver`), so the frontend registry can treat
both languages uniformly and ``compile_cross`` can lower mixed-language
programs into one module.
"""

from __future__ import annotations

from repro.frontend.minipy.codegen import CodeGenerator
from repro.frontend.minipy.parser import parse
from repro.ir import Module
from repro.secval.lowering import run_frontend_pipeline


def lower_source(source: str, module: Module,
                 filename: str = "<source>") -> None:
    """Lower one MiniPy source text into an existing module."""
    program = parse(source, filename)
    CodeGenerator(module.name, module=module).generate(program)


def compile_source(source: str, module_name: str = "minipy",
                   verify: bool = True, passes=None) -> Module:
    """Compile MiniPy source text into a verified IR module."""
    module = Module(module_name)
    lower_source(source, module, filename=module_name)
    return run_frontend_pipeline(module, verify=verify, passes=passes)
