"""MiniPy — the second Privagic frontend.

A Python-like secure scripting language: functions over 64-bit
integers and byte strings, ``while``/``if``, calls, and
``secure("color", value)`` / ``public(value)`` module-level
declarations.  Lowers through :mod:`repro.secval` onto the same IR,
pipeline, partitioner and engines as MiniC; a module lowered from
MiniPy is indistinguishable from one lowered from MiniC.

    secret = secure("blue", 41)
    out = public(0)

    @entry
    def main():
        out = declass(secret + 1)
        return out

    @ignore
    def declass(x):
        return x
"""

from repro.frontend.minipy.driver import compile_source, lower_source
from repro.frontend.minipy.lexer import tokenize
from repro.frontend.minipy.parser import parse

__all__ = ["compile_source", "lower_source", "parse", "tokenize"]
