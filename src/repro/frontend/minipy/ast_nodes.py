"""MiniPy abstract syntax tree.

Same philosophy as the MiniC AST: plain records carrying source
positions; no separate semantic-analysis pass — code generation checks
as it lowers onto the secure-value contract.
"""

from __future__ import annotations

from typing import List, Optional


class Node:
    """Base AST node with source position."""

    def __init__(self, line: int = 0, column: int = 0):
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        attrs = {k: v for k, v in self.__dict__.items()
                 if k not in ("line", "column")}
        inner = ", ".join(f"{k}={v!r}" for k, v in attrs.items())
        return f"{type(self).__name__}({inner})"


# -- module level ----------------------------------------------------------------


class Program(Node):
    """One MiniPy source file: function definitions and globals."""

    def __init__(self, body: List[Node], **pos):
        super().__init__(**pos)
        self.body = body


class FunctionDef(Node):
    """``@entry``-style decorators + ``def name(params):`` + suite.

    Every parameter and the return value are 64-bit integers; the
    decorators must come from the shared annotation vocabulary
    (:data:`repro.secval.ANNOTATIONS`).
    """

    def __init__(self, name: str, params: List[str],
                 decorators: List["Decorator"], body: List[Node], **pos):
        super().__init__(**pos)
        self.name = name
        self.params = params
        self.decorators = decorators
        self.body = body


class Decorator(Node):
    def __init__(self, name: str, **pos):
        super().__init__(**pos)
        self.name = name


class GlobalDef(Node):
    """A module-level binding: ``name = secure("blue", init)``,
    ``name = public(init)``, or a bare literal.  ``color`` is the
    enclave color or None; ``init`` is an IntLiteral or StringLiteral.
    """

    def __init__(self, name: str, init: Node,
                 color: Optional[str] = None, **pos):
        super().__init__(**pos)
        self.name = name
        self.init = init
        self.color = color


# -- statements ------------------------------------------------------------------


class Assign(Node):
    """``target = value`` or augmented ``target op= value``."""

    def __init__(self, target: str, value: Node,
                 op: Optional[str] = None, **pos):
        super().__init__(**pos)
        self.target = target
        self.value = value
        self.op = op


class ExprStmt(Node):
    def __init__(self, expr: Node, **pos):
        super().__init__(**pos)
        self.expr = expr


class If(Node):
    """``if``/``elif``/``else``; an ``elif`` chain parses as a nested
    If in ``orelse``."""

    def __init__(self, cond: Node, body: List[Node],
                 orelse: List[Node], **pos):
        super().__init__(**pos)
        self.cond = cond
        self.body = body
        self.orelse = orelse


class While(Node):
    def __init__(self, cond: Node, body: List[Node], **pos):
        super().__init__(**pos)
        self.cond = cond
        self.body = body


class Return(Node):
    def __init__(self, value: Optional[Node], **pos):
        super().__init__(**pos)
        self.value = value


class Break(Node):
    pass


class Continue(Node):
    pass


class Pass(Node):
    pass


# -- expressions -----------------------------------------------------------------


class IntLiteral(Node):
    def __init__(self, value: int, **pos):
        super().__init__(**pos)
        self.value = value


class StringLiteral(Node):
    """A ``"..."`` or ``b"..."`` literal; lowers to an i8-array global
    exactly like a MiniC string."""

    def __init__(self, value: str, **pos):
        super().__init__(**pos)
        self.value = value


class Name(Node):
    def __init__(self, name: str, **pos):
        super().__init__(**pos)
        self.name = name


class Call(Node):
    def __init__(self, callee: str, args: List[Node], **pos):
        super().__init__(**pos)
        self.callee = callee
        self.args = args


class BinOp(Node):
    def __init__(self, op: str, lhs: Node, rhs: Node, **pos):
        super().__init__(**pos)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Compare(Node):
    def __init__(self, op: str, lhs: Node, rhs: Node, **pos):
        super().__init__(**pos)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class BoolOp(Node):
    """Short-circuit ``and`` / ``or``."""

    def __init__(self, op: str, lhs: Node, rhs: Node, **pos):
        super().__init__(**pos)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class UnaryOp(Node):
    def __init__(self, op: str, operand: Node, **pos):
        super().__init__(**pos)
        self.op = op
        self.operand = operand
