"""MiniPy recursive-descent parser.

Grammar sketch (indentation-structured, Python-flavored):

    program     := (funcdef | globaldef | NEWLINE)* EOF
    funcdef     := ("@" IDENT NEWLINE)* "def" IDENT "(" params ")" ":" suite
    globaldef   := IDENT "=" ("secure" "(" STRING "," literal ")"
                              | "public" "(" literal ")"
                              | literal) NEWLINE
    suite       := NEWLINE INDENT statement+ DEDENT
    statement   := simple NEWLINE | ifstmt | whilestmt
    simple      := "return" [expr] | "pass" | "break" | "continue"
                 | IDENT augop expr | IDENT "=" expr | expr
    ifstmt      := "if" expr ":" suite
                   ("elif" expr ":" suite)* ["else" ":" suite]
    whilestmt   := "while" expr ":" suite
    expr        := or_expr
    or_expr     := and_expr ("or" and_expr)*
    and_expr    := not_expr ("and" not_expr)*
    not_expr    := "not" not_expr | comparison
    comparison  := bitor [("=="|"!="|"<"|"<="|">"|">=") bitor]
    bitor       := bitxor ("|" bitxor)*        (then ^, &, shifts,
    addsub      := muldiv (("+"|"-") muldiv)*   +/-, * // %, unary -/~)
    atom        := INT | STRING | "True" | "False" | IDENT ["(" args ")"]
                 | "(" expr ")"

Chained comparisons (``a < b < c``) are rejected with a typed error
rather than silently misparsed.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import FrontendError
from repro.frontend.minipy import ast_nodes as ast
from repro.frontend.minipy.lexer import Token, tokenize

_AUG_OPS = ("+=", "-=", "*=", "//=", "%=", "&=", "|=", "^=",
            "<<=", ">>=")
_CMP_OPS = ("==", "!=", "<", "<=", ">", ">=")


class Parser:
    def __init__(self, tokens: List[Token], filename: str = "<source>"):
        self.tokens = tokens
        self.filename = filename
        self.pos = 0

    # -- token plumbing --------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def _error(self, message: str,
               token: Optional[Token] = None) -> FrontendError:
        token = token or self.current
        return FrontendError(message, token.line, token.column)

    def _expect_op(self, op: str) -> Token:
        if not self.current.is_op(op):
            raise self._error(f"expected {op!r}, got "
                              f"{self.current.text or self.current.kind!r}")
        return self._advance()

    def _expect_kw(self, kw: str) -> Token:
        if not self.current.is_kw(kw):
            raise self._error(f"expected {kw!r}, got "
                              f"{self.current.text or self.current.kind!r}")
        return self._advance()

    def _expect(self, kind: str) -> Token:
        if self.current.kind != kind:
            raise self._error(f"expected {kind}, got "
                              f"{self.current.text or self.current.kind!r}")
        return self._advance()

    def _pos(self, token: Token) -> dict:
        return {"line": token.line, "column": token.column}

    # -- program ---------------------------------------------------------------

    def parse_program(self) -> ast.Program:
        body: List[ast.Node] = []
        while self.current.kind != "eof":
            if self.current.kind == "newline":
                self._advance()
                continue
            if self.current.is_op("@") or self.current.is_kw("def"):
                body.append(self._parse_funcdef())
            elif self.current.kind == "ident":
                body.append(self._parse_globaldef())
            else:
                raise self._error(
                    f"expected a function definition or a module-level "
                    f"assignment, got {self.current.text!r}")
        return ast.Program(body)

    def _parse_funcdef(self) -> ast.FunctionDef:
        decorators: List[ast.Decorator] = []
        while self.current.is_op("@"):
            at = self._advance()
            name = self._expect("ident")
            decorators.append(ast.Decorator(name.text, **self._pos(at)))
            self._expect("newline")
        start = self._expect_kw("def")
        name = self._expect("ident")
        self._expect_op("(")
        params: List[str] = []
        while not self.current.is_op(")"):
            params.append(self._expect("ident").text)
            if not self.current.is_op(","):
                break
            self._advance()
        self._expect_op(")")
        self._expect_op(":")
        body = self._parse_suite()
        return ast.FunctionDef(name.text, params, decorators, body,
                               **self._pos(start))

    def _parse_globaldef(self) -> ast.GlobalDef:
        name = self._expect("ident")
        self._expect_op("=")
        color: Optional[str] = None
        if self.current.kind == "ident" and \
                self.current.text in ("secure", "public"):
            which = self._advance()
            self._expect_op("(")
            if which.text == "secure":
                color_token = self._expect("string")
                color = color_token.value
                self._expect_op(",")
            init = self._parse_literal()
            self._expect_op(")")
        else:
            init = self._parse_literal()
        self._expect("newline")
        return ast.GlobalDef(name.text, init, color, **self._pos(name))

    def _parse_literal(self) -> ast.Node:
        token = self.current
        if token.kind == "int":
            self._advance()
            return ast.IntLiteral(token.value, **self._pos(token))
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(token.value, **self._pos(token))
        if token.is_kw("True", "False"):
            self._advance()
            return ast.IntLiteral(token.value, **self._pos(token))
        if token.is_op("-"):
            self._advance()
            inner = self._expect("int")
            return ast.IntLiteral(-inner.value, **self._pos(token))
        raise self._error("a module-level value must be an int or "
                          "string literal")

    # -- statements ------------------------------------------------------------

    def _parse_suite(self) -> List[ast.Node]:
        self._expect("newline")
        self._expect("indent")
        statements: List[ast.Node] = []
        while self.current.kind not in ("dedent", "eof"):
            statements.append(self._parse_statement())
        self._expect("dedent")
        return statements

    def _parse_statement(self) -> ast.Node:
        token = self.current
        if token.is_kw("if"):
            return self._parse_if()
        if token.is_kw("while"):
            return self._parse_while()
        stmt = self._parse_simple()
        self._expect("newline")
        return stmt

    def _parse_if(self) -> ast.If:
        start = self._advance()  # "if" or "elif"
        cond = self.parse_expr()
        self._expect_op(":")
        body = self._parse_suite()
        orelse: List[ast.Node] = []
        if self.current.is_kw("elif"):
            orelse = [self._parse_if()]
        elif self.current.is_kw("else"):
            self._advance()
            self._expect_op(":")
            orelse = self._parse_suite()
        return ast.If(cond, body, orelse, **self._pos(start))

    def _parse_while(self) -> ast.While:
        start = self._expect_kw("while")
        cond = self.parse_expr()
        self._expect_op(":")
        body = self._parse_suite()
        return ast.While(cond, body, **self._pos(start))

    def _parse_simple(self) -> ast.Node:
        token = self.current
        if token.is_kw("return"):
            self._advance()
            value = None
            if self.current.kind != "newline":
                value = self.parse_expr()
            return ast.Return(value, **self._pos(token))
        if token.is_kw("pass"):
            self._advance()
            return ast.Pass(**self._pos(token))
        if token.is_kw("break"):
            self._advance()
            return ast.Break(**self._pos(token))
        if token.is_kw("continue"):
            self._advance()
            return ast.Continue(**self._pos(token))
        if token.kind == "ident" and self.pos + 1 < len(self.tokens):
            nxt = self.tokens[self.pos + 1]
            if nxt.is_op("="):
                self._advance()
                self._advance()
                value = self.parse_expr()
                return ast.Assign(token.text, value, **self._pos(token))
            if nxt.is_op(*_AUG_OPS):
                self._advance()
                op_token = self._advance()
                value = self.parse_expr()
                return ast.Assign(token.text, value,
                                  op=op_token.text[:-1],
                                  **self._pos(token))
        expr = self.parse_expr()
        return ast.ExprStmt(expr, **self._pos(token))

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> ast.Node:
        return self._parse_or()

    def _parse_or(self) -> ast.Node:
        node = self._parse_and()
        while self.current.is_kw("or"):
            op = self._advance()
            node = ast.BoolOp("or", node, self._parse_and(),
                              **self._pos(op))
        return node

    def _parse_and(self) -> ast.Node:
        node = self._parse_not()
        while self.current.is_kw("and"):
            op = self._advance()
            node = ast.BoolOp("and", node, self._parse_not(),
                              **self._pos(op))
        return node

    def _parse_not(self) -> ast.Node:
        if self.current.is_kw("not"):
            op = self._advance()
            return ast.UnaryOp("not", self._parse_not(), **self._pos(op))
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Node:
        node = self._parse_bitor()
        if self.current.is_op(*_CMP_OPS):
            op = self._advance()
            node = ast.Compare(op.text, node, self._parse_bitor(),
                               **self._pos(op))
            if self.current.is_op(*_CMP_OPS):
                raise self._error("chained comparisons are not "
                                  "supported; parenthesize")
        return node

    def _binary_level(self, ops, next_level):
        node = next_level()
        while self.current.is_op(*ops):
            op = self._advance()
            node = ast.BinOp(op.text, node, next_level(),
                             **self._pos(op))
        return node

    def _parse_bitor(self) -> ast.Node:
        return self._binary_level(("|",), self._parse_bitxor)

    def _parse_bitxor(self) -> ast.Node:
        return self._binary_level(("^",), self._parse_bitand)

    def _parse_bitand(self) -> ast.Node:
        return self._binary_level(("&",), self._parse_shift)

    def _parse_shift(self) -> ast.Node:
        return self._binary_level(("<<", ">>"), self._parse_addsub)

    def _parse_addsub(self) -> ast.Node:
        return self._binary_level(("+", "-"), self._parse_muldiv)

    def _parse_muldiv(self) -> ast.Node:
        return self._binary_level(("*", "//", "%"), self._parse_unary)

    def _parse_unary(self) -> ast.Node:
        token = self.current
        if token.is_op("-", "~"):
            self._advance()
            return ast.UnaryOp(token.text, self._parse_unary(),
                               **self._pos(token))
        return self._parse_atom()

    def _parse_atom(self) -> ast.Node:
        token = self.current
        if token.kind == "int":
            self._advance()
            return ast.IntLiteral(token.value, **self._pos(token))
        if token.kind == "string":
            self._advance()
            return ast.StringLiteral(token.value, **self._pos(token))
        if token.is_kw("True", "False"):
            self._advance()
            return ast.IntLiteral(token.value, **self._pos(token))
        if token.kind == "ident":
            self._advance()
            if self.current.is_op("("):
                self._advance()
                args: List[ast.Node] = []
                while not self.current.is_op(")"):
                    args.append(self.parse_expr())
                    if not self.current.is_op(","):
                        break
                    self._advance()
                self._expect_op(")")
                return ast.Call(token.text, args, **self._pos(token))
            return ast.Name(token.text, **self._pos(token))
        if token.is_op("("):
            self._advance()
            node = self.parse_expr()
            self._expect_op(")")
            return node
        raise self._error(
            f"unexpected {token.text or token.kind!r} in expression")


def parse(source: str, filename: str = "<source>") -> ast.Program:
    return Parser(tokenize(source, filename), filename).parse_program()
