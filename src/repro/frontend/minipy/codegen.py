"""MiniPy code generation: AST → repro IR via the secure-value contract.

The lowering is deliberately boring: every MiniPy value is a 64-bit
integer (comparisons are i1 until used, byte-string literals are
``i8*`` like MiniC strings), every local is an entry-block ``alloca``
promoted by ``mem2reg``, and the surface `secure`/`public`
declarations disappear into colored IR types — by the time the secure
type analysis runs there is no way to tell which frontend produced
the module.

Cross-language composition falls out of the contract: when lowering
into a shared module (``repro.secval.compile_cross``), a MiniPy call
site resolves MiniC-defined functions (and the shared mini-libc
builtins) by name, with normal argument coercion to the callee's
parameter types.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import FrontendError
from repro.frontend.minipy import ast_nodes as ast
from repro.ir import (
    ArrayType,
    BasicBlock,
    Constant,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    IRType,
    Module,
    PointerType,
    I1,
    I8,
    I64,
    VOID,
)
from repro.ir.types import IntType
from repro.secval.lowering import auto_declare_builtin, validate_annotation
from repro.secval.model import validate_color_name

#: Module-level declaration forms; calling these inside a function is
#: a frontend error (colors are static, paper §4).
_DECL_FORMS = ("secure", "public")


class CodeGenerator:
    """Generates one IR module from one MiniPy program."""

    def __init__(self, module_name: str = "minipy",
                 module: Optional[Module] = None):
        # Lower into ``module`` when given (cross-language composition
        # via repro.secval.compile_cross), else into a fresh module.
        self.module = module if module is not None else Module(module_name)
        self._string_counter = 0
        # per-function state
        self.builder: Optional[IRBuilder] = None
        self.function: Optional[Function] = None
        self.locals: Dict[str, object] = {}
        self._loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []

    # -- entry point --------------------------------------------------------------

    def generate(self, program: ast.Program) -> Module:
        functions = [d for d in program.body
                     if isinstance(d, ast.FunctionDef)]
        globals_ = [d for d in program.body
                    if isinstance(d, ast.GlobalDef)]

        for decl in globals_:
            self._define_global(decl)
        for decl in functions:
            self._declare_function(decl)
        for decl in functions:
            self._define_function(decl)
        return self.module

    # -- globals -----------------------------------------------------------------------

    def _define_global(self, decl: ast.GlobalDef) -> None:
        color = decl.color
        if color is not None:
            color = validate_color_name(color)
        if isinstance(decl.init, ast.IntLiteral):
            vtype: IRType = I64 if color is None else I64.with_color(color)
            init = Constant(vtype, decl.init.value)
        elif isinstance(decl.init, ast.StringLiteral):
            element = I8 if color is None else I8.with_color(color)
            vtype = ArrayType(element, len(decl.init.value) + 1)
            init = Constant(vtype, decl.init.value)
        else:
            raise FrontendError("a module-level value must be an int "
                                "or string literal",
                                decl.line, decl.column)
        self.module.add_global(GlobalVariable(decl.name, vtype, init))

    # -- functions ----------------------------------------------------------------------

    def _declare_function(self, decl: ast.FunctionDef) -> None:
        annotations = {validate_annotation(d.name, d.line, d.column)
                       for d in decl.decorators}
        ftype = FunctionType(I64, [I64] * len(decl.params))
        existing = self.module.functions.get(decl.name)
        if existing is not None:
            raise FrontendError(f"duplicate definition of {decl.name!r}",
                                decl.line, decl.column)
        fn = Function(decl.name, ftype, list(decl.params), annotations)
        self.module.add_function(fn)

    def _define_function(self, decl: ast.FunctionDef) -> None:
        fn = self.module.get_function(decl.name)
        self.function = fn
        self.locals = {}
        self._loop_stack = []
        entry = fn.add_block("entry")
        self.builder = IRBuilder(entry)

        # Python function semantics: one flat namespace.  Every
        # parameter and every name the body assigns gets an i64
        # entry-block slot (promoted by mem2reg), so a value survives
        # loop iterations regardless of where the first assignment
        # sits.
        for arg in fn.args:
            slot = self.builder.alloca(I64, f"{arg.name}.addr")
            self.builder.store(arg, slot)
            self.locals[arg.name] = slot
        # A name bound at module level stays global — assignment
        # writes through (C-style; MiniPy has no ``global`` keyword).
        for name in _assigned_names(decl.body):
            if name in self.locals or name in self.module.globals:
                continue
            slot = self.builder.alloca(I64, name)
            self.builder.store(self.builder.const_i64(0), slot)
            self.locals[name] = slot

        self._gen_body(decl.body)

        if self.builder.block is not None and \
                not self.builder.block.is_terminated:
            self.builder.ret(self.builder.const_i64(0))
        for block in fn.blocks:
            if not block.is_terminated:
                IRBuilder(block).ret(IRBuilder.const_i64(0))
        self.function = None
        self.builder = None
        self.locals = {}

    # -- statements ------------------------------------------------------------------------

    def _gen_body(self, statements: List[ast.Node]) -> None:
        for stmt in statements:
            self._gen_statement(stmt)

    def _gen_statement(self, stmt: ast.Node) -> None:
        self.builder.set_loc(stmt)
        if isinstance(stmt, ast.Assign):
            self._gen_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_rvalue(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._gen_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._gen_continue(stmt)
        elif isinstance(stmt, ast.Pass):
            pass
        else:
            raise FrontendError(f"cannot generate {type(stmt).__name__}",
                                stmt.line, stmt.column)

    def _gen_assign(self, stmt: ast.Assign) -> None:
        slot = self.locals.get(stmt.target)
        if slot is None:
            gv = self.module.globals.get(stmt.target)
            if gv is None:
                raise FrontendError(
                    f"undefined variable {stmt.target!r}",
                    stmt.line, stmt.column)
            slot = gv
        value = self._gen_rvalue(stmt.value)
        if stmt.op is not None:
            old = self.builder.load(slot)
            value = self.builder.binop(
                _ARITH_MAP[stmt.op],
                self._coerce(old, I64, stmt),
                self._coerce(value, I64, stmt))
        self.builder.set_loc(stmt)
        value = self._coerce(value, slot.type.pointee, stmt)
        self.builder.store(value, slot)

    def _gen_if(self, stmt: ast.If) -> None:
        cond = self._gen_condition(stmt.cond)
        fn = self.function
        then_block = fn.add_block("if.then")
        merge_block = fn.add_block("if.end")
        else_block = fn.add_block("if.else") if stmt.orelse else merge_block
        self.builder.branch(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._gen_body(stmt.body)
        if not self.builder.block.is_terminated:
            self.builder.jump(merge_block)

        if stmt.orelse:
            self.builder.position_at_end(else_block)
            self._gen_body(stmt.orelse)
            if not self.builder.block.is_terminated:
                self.builder.jump(merge_block)

        self.builder.position_at_end(merge_block)

    def _gen_while(self, stmt: ast.While) -> None:
        fn = self.function
        cond_block = fn.add_block("while.cond")
        body_block = fn.add_block("while.body")
        end_block = fn.add_block("while.end")
        self.builder.jump(cond_block)

        self.builder.position_at_end(cond_block)
        cond = self._gen_condition(stmt.cond)
        self.builder.branch(cond, body_block, end_block)

        self.builder.position_at_end(body_block)
        self._loop_stack.append((end_block, cond_block))
        self._gen_body(stmt.body)
        self._loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.jump(cond_block)

        self.builder.position_at_end(end_block)

    def _gen_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.builder.ret(self.builder.const_i64(0))
        else:
            value = self._gen_rvalue(stmt.value)
            self.builder.ret(self._coerce(value, I64, stmt))
        self.builder.position_at_end(self.function.add_block("dead"))

    def _gen_break(self, stmt: ast.Break) -> None:
        if not self._loop_stack:
            raise FrontendError("break outside a loop", stmt.line,
                                stmt.column)
        self.builder.jump(self._loop_stack[-1][0])
        self.builder.position_at_end(self.function.add_block("dead"))

    def _gen_continue(self, stmt: ast.Continue) -> None:
        if not self._loop_stack:
            raise FrontendError("continue outside a loop", stmt.line,
                                stmt.column)
        self.builder.jump(self._loop_stack[-1][1])
        self.builder.position_at_end(self.function.add_block("dead"))

    # -- expressions --------------------------------------------------------------------

    def _gen_rvalue(self, expr: ast.Node):
        self.builder.set_loc(expr)
        if isinstance(expr, ast.IntLiteral):
            return self.builder.const_i64(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return self._gen_string(expr.value)
        if isinstance(expr, ast.Name):
            return self._gen_name(expr)
        if isinstance(expr, ast.Call):
            return self._gen_call(expr)
        if isinstance(expr, ast.BinOp):
            return self._gen_binop(expr)
        if isinstance(expr, ast.Compare):
            return self._gen_compare(expr)
        if isinstance(expr, ast.BoolOp):
            return self._gen_bool_op(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._gen_unary(expr)
        raise FrontendError(f"cannot generate {type(expr).__name__}",
                            expr.line, expr.column)

    def _gen_string(self, text: str):
        # Same namespace as MiniC strings; skip names an earlier unit
        # in a cross-language module already claimed.
        name = f".str{self._string_counter}"
        self._string_counter += 1
        while name in self.module.globals:
            name = f".str{self._string_counter}"
            self._string_counter += 1
        arr_type = ArrayType(I8, len(text) + 1)
        gv = self.module.add_global(
            GlobalVariable(name, arr_type, Constant(arr_type, text)))
        zero = self.builder.const_int(0)
        return self.builder.gep(gv, [zero, zero])

    def _gen_name(self, expr: ast.Name):
        slot = self.locals.get(expr.name)
        if slot is None:
            gv = self.module.globals.get(expr.name)
            if gv is not None:
                slot = gv
            else:
                fn = self.module.functions.get(expr.name) or \
                    auto_declare_builtin(self.module, expr.name)
                if fn is not None:
                    return fn
                raise FrontendError(f"undefined variable {expr.name!r}",
                                    expr.line, expr.column)
        if isinstance(slot.type.pointee, ArrayType):
            zero = self.builder.const_int(0)
            return self.builder.gep(slot, [zero, zero])
        return self.builder.load(slot)

    def _gen_call(self, expr: ast.Call):
        if expr.callee in _DECL_FORMS:
            raise FrontendError(
                f"{expr.callee}(...) declarations are only allowed at "
                f"module level; colors are fixed at compile time "
                f"(paper §4)", expr.line, expr.column)
        args = [self._gen_rvalue(a) for a in expr.args]
        self.builder.set_loc(expr)
        callee = self.module.functions.get(expr.callee) or \
            auto_declare_builtin(self.module, expr.callee)
        if callee is None:
            raise FrontendError(f"undefined function {expr.callee!r}",
                                expr.line, expr.column)
        ftype = callee.ftype
        fixed = len(ftype.params)
        if len(args) < fixed or (len(args) > fixed and not ftype.vararg):
            raise FrontendError(
                f"call expects {fixed} arguments, got {len(args)}",
                expr.line, expr.column)
        coerced = [self._coerce(a, t, expr)
                   for a, t in zip(args, ftype.params)]
        coerced.extend(args[fixed:])
        return self.builder.call(callee, coerced)

    _CMP_MAP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                ">": "sgt", ">=": "sge"}

    def _gen_compare(self, expr: ast.Compare):
        lhs = self._gen_rvalue(expr.lhs)
        rhs = self._gen_rvalue(expr.rhs)
        self.builder.set_loc(expr)
        if not (isinstance(lhs.type, PointerType)
                and isinstance(rhs.type, PointerType)):
            lhs = self._coerce(lhs, I64, expr)
            rhs = self._coerce(rhs, I64, expr)
        return self.builder.cmp(self._CMP_MAP[expr.op], lhs, rhs)

    def _gen_binop(self, expr: ast.BinOp):
        lhs = self._gen_rvalue(expr.lhs)
        rhs = self._gen_rvalue(expr.rhs)
        self.builder.set_loc(expr)
        lhs = self._coerce(lhs, I64, expr)
        rhs = self._coerce(rhs, I64, expr)
        return self.builder.binop(_ARITH_MAP[expr.op], lhs, rhs)

    def _gen_bool_op(self, expr: ast.BoolOp):
        fn = self.function
        rhs_block = fn.add_block("sc.rhs")
        merge_block = fn.add_block("sc.end")
        lhs = self._to_bool(self._gen_rvalue(expr.lhs))
        lhs_block = self.builder.block
        if expr.op == "and":
            self.builder.branch(lhs, rhs_block, merge_block)
        else:
            self.builder.branch(lhs, merge_block, rhs_block)

        self.builder.position_at_end(rhs_block)
        rhs = self._to_bool(self._gen_rvalue(expr.rhs))
        rhs_end = self.builder.block
        self.builder.jump(merge_block)

        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(I1)
        phi.add_incoming(self.builder.const_bool(expr.op == "or"),
                         lhs_block)
        phi.add_incoming(rhs, rhs_end)
        return phi

    def _gen_unary(self, expr: ast.UnaryOp):
        operand = self._gen_rvalue(expr.operand)
        self.builder.set_loc(expr)
        if expr.op == "not":
            as_bool = self._to_bool(operand)
            return self.builder.cmp("eq", as_bool,
                                    self.builder.const_bool(False))
        operand = self._coerce(operand, I64, expr)
        if expr.op == "-":
            return self.builder.sub(Constant(I64, 0), operand)
        if expr.op == "~":
            return self.builder.binop("xor", operand, Constant(I64, -1))
        raise FrontendError(f"unsupported unary {expr.op!r}",
                            expr.line, expr.column)

    # -- helpers ------------------------------------------------------------------------------------

    def _gen_condition(self, expr: ast.Node):
        return self._to_bool(self._gen_rvalue(expr))

    def _to_bool(self, value):
        if isinstance(value.type, IntType) and value.type.bits == 1:
            return value
        if isinstance(value.type, PointerType):
            as_int = self.builder.cast("ptrtoint", value, I64)
            return self.builder.cmp("ne", as_int, Constant(I64, 0))
        return self.builder.cmp("ne", self._coerce(value, I64, None),
                                Constant(I64, 0))

    def _coerce(self, value, to_type: IRType, node):
        """Convert ``value`` to ``to_type``, inserting casts as needed.

        Unlike C, a MiniPy boolean widens with ``zext`` so ``True``
        is 1, not -1.
        """
        from_type = value.type
        if from_type == to_type:
            return value
        if not isinstance(to_type, PointerType) and \
                from_type.strip_color() == to_type.strip_color():
            return value
        if isinstance(from_type, IntType) and isinstance(to_type, IntType):
            if isinstance(value, Constant):
                return Constant(to_type.strip_color(), value.value)
            if from_type.bits == to_type.bits:
                return value
            if from_type.bits > to_type.bits:
                kind = "trunc"
            else:
                kind = "zext" if from_type.bits == 1 else "sext"
            return self.builder.cast(kind, value, to_type.strip_color())
        if isinstance(from_type, PointerType) and isinstance(to_type,
                                                             PointerType):
            return self.builder.bitcast(value, to_type)
        if isinstance(to_type, PointerType) and isinstance(value, Constant) \
                and value.value == 0:
            return Constant(to_type, 0)
        if isinstance(from_type, PointerType) and isinstance(to_type,
                                                             IntType):
            return self.builder.cast("ptrtoint", value,
                                     to_type.strip_color())
        if isinstance(from_type, IntType) and isinstance(to_type,
                                                         PointerType):
            return self.builder.cast("inttoptr", value, to_type)
        raise FrontendError(
            f"cannot convert {from_type} to {to_type}",
            getattr(node, "line", 0), getattr(node, "column", 0))


_ARITH_MAP = {"+": "add", "-": "sub", "*": "mul", "//": "sdiv",
              "%": "srem", "&": "and", "|": "or", "^": "xor",
              "<<": "shl", ">>": "ashr"}


def _assigned_names(statements: List[ast.Node]) -> List[str]:
    """Every name the body assigns, in document order (Python's
    function-local namespace, computed statically)."""
    names: List[str] = []

    def visit(stmts: List[ast.Node]) -> None:
        for stmt in stmts:
            if isinstance(stmt, ast.Assign):
                if stmt.target not in names:
                    names.append(stmt.target)
            elif isinstance(stmt, ast.If):
                visit(stmt.body)
                visit(stmt.orelse)
            elif isinstance(stmt, ast.While):
                visit(stmt.body)

    visit(statements)
    return names
