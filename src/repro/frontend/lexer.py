"""MiniC lexer."""

from __future__ import annotations

from typing import Iterator, List, NamedTuple

from repro.errors import FrontendError

KEYWORDS = frozenset({
    "void", "char", "int", "long", "float", "double", "unsigned",
    "struct", "union", "sizeof", "typedef",
    "if", "else", "while", "for", "do", "return", "break", "continue",
    "extern", "static", "const",
    # Privagic surface syntax (paper Fig 1, §6.2-§6.4):
    "color", "within", "ignore", "entry",
})

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
]


class Token(NamedTuple):
    kind: str          # "kw", "ident", "int", "float", "char", "string", "op", "eof"
    text: str
    value: object
    line: int
    column: int

    def is_op(self, *ops: str) -> bool:
        return self.kind == "op" and self.text in ops

    def is_kw(self, *kws: str) -> bool:
        return self.kind == "kw" and self.text in kws


class Lexer:
    """Converts MiniC source text into a token stream."""

    def __init__(self, source: str, filename: str = "<source>"):
        self.source = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self.pos >= len(self.source):
                yield Token("eof", "", None, self.line, self.column)
                return
            yield self._next_token()

    # -- internals -------------------------------------------------------------

    def _error(self, message: str) -> FrontendError:
        return FrontendError(message, self.line, self.column)

    def _advance(self, n: int = 1) -> str:
        text = self.source[self.pos:self.pos + n]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.pos += n
        return text

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_trivia(self) -> None:
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.source) and not (
                        self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if self.pos >= len(self.source):
                    raise self._error("unterminated block comment")
                self._advance(2)
            elif ch == "#":
                # Preprocessor lines are ignored (the color macro of the
                # paper is a language keyword here).
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()
        if ch.isalpha() or ch == "_":
            text = self._lex_word()
            kind = "kw" if text in KEYWORDS else "ident"
            return Token(kind, text, text, line, column)
        if ch.isdigit():
            return self._lex_number(line, column)
        if ch == '"':
            return self._lex_string(line, column)
        if ch == "'":
            return self._lex_char(line, column)
        for op in OPERATORS:
            if self.source.startswith(op, self.pos):
                self._advance(len(op))
                return Token("op", op, op, line, column)
        raise self._error(f"unexpected character {ch!r}")

    def _lex_word(self) -> str:
        start = self.pos
        while self.pos < len(self.source) and (
                self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        return self.source[start:self.pos]

    def _lex_number(self, line: int, column: int) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in "xX":
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.source[start:self.pos]
            return Token("int", text, int(text, 16), line, column)
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (self._peek(1).isdigit() or (
                self._peek(1) in "+-" and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.source[start:self.pos]
        while self._peek() in "uUlLfF":  # suffixes are ignored
            suffix = self._advance()
            if suffix in "fF":
                is_float = True
        if is_float:
            return Token("float", text, float(text), line, column)
        return Token("int", text, int(text), line, column)

    _ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0",
                "\\": "\\", "'": "'", '"': '"'}

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        chars: List[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise self._error("unterminated string literal")
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                self._advance()
                esc = self._advance()
                chars.append(self._ESCAPES.get(esc, esc))
            else:
                chars.append(self._advance())
        text = "".join(chars)
        return Token("string", text, text, line, column)

    def _lex_char(self, line: int, column: int) -> Token:
        self._advance()
        ch = self._advance()
        if ch == "\\":
            ch = self._ESCAPES.get(self._advance(), ch)
        if self._peek() != "'":
            raise self._error("unterminated character literal")
        self._advance()
        return Token("char", ch, ord(ch), line, column)


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    return list(Lexer(source, filename).tokens())
