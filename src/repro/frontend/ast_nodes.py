"""MiniC abstract syntax tree.

Nodes are plain dataclass-like records; type information is attached
during code generation (MiniC is simple enough that a separate
semantic-analysis pass is unnecessary — codegen checks as it goes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


class Node:
    """Base AST node with source position."""

    def __init__(self, line: int = 0, column: int = 0):
        self.line = line
        self.column = column

    def __repr__(self) -> str:
        attrs = {k: v for k, v in self.__dict__.items()
                 if k not in ("line", "column")}
        inner = ", ".join(f"{k}={v!r}" for k, v in attrs.items())
        return f"{type(self).__name__}({inner})"


# -- type expressions -----------------------------------------------------------


class TypeExpr(Node):
    """A source-level type: base name + color + pointer depth + array.

    ``base`` is one of "void", "char", "int", "long", "float",
    "double" or ("struct", name).  ``color`` is the Privagic secure
    type color or None.  ``pointer_depth`` counts ``*``; an inner
    color applies to the pointee (``int color(blue)*`` is
    pointer-to-blue-int, paper Fig 3b).
    """

    def __init__(self, base, color: Optional[str] = None,
                 pointer_depth: int = 0,
                 array_size: Optional[int] = None, **pos):
        super().__init__(**pos)
        self.base = base
        self.color = color
        self.pointer_depth = pointer_depth
        self.array_size = array_size

    def pointer_to(self) -> "TypeExpr":
        return TypeExpr(self.base, self.color, self.pointer_depth + 1,
                        self.array_size, line=self.line, column=self.column)


class FuncPtrTypeExpr(Node):
    """A function-pointer type: ``ret (*)(params)``."""

    def __init__(self, ret: TypeExpr, params: Sequence[TypeExpr], **pos):
        super().__init__(**pos)
        self.ret = ret
        self.params = list(params)
        self.pointer_depth = 1
        self.color = None
        self.array_size = None


# -- declarations -----------------------------------------------------------------


class StructDecl(Node):
    def __init__(self, name: str, fields: List[Tuple[TypeExpr, str]],
                 **pos):
        super().__init__(**pos)
        self.name = name
        self.fields = fields


class UnionDecl(Node):
    """Unions are parsed so Privagic can *reject* multi-color unions
    (paper §4: a value may have at most one color)."""

    def __init__(self, name: str, fields: List[Tuple[TypeExpr, str]],
                 **pos):
        super().__init__(**pos)
        self.name = name
        self.fields = fields


class GlobalDecl(Node):
    def __init__(self, type: TypeExpr, name: str,
                 init: Optional["Expr"] = None, **pos):
        super().__init__(**pos)
        self.type = type
        self.name = name
        self.init = init


class Param(Node):
    def __init__(self, type: TypeExpr, name: str, **pos):
        super().__init__(**pos)
        self.type = type
        self.name = name


class FunctionDecl(Node):
    """A function definition or extern declaration.

    ``annotations`` holds the Privagic annotations present in the
    source: subset of {"extern", "within", "ignore", "entry"}.
    """

    def __init__(self, ret: TypeExpr, name: str, params: List[Param],
                 body: Optional["Block"], annotations: Sequence[str] = (),
                 vararg: bool = False, **pos):
        super().__init__(**pos)
        self.ret = ret
        self.name = name
        self.params = params
        self.body = body
        self.annotations = set(annotations)
        self.vararg = vararg


class TranslationUnit(Node):
    def __init__(self, decls: List[Node], **pos):
        super().__init__(**pos)
        self.decls = decls


# -- statements ---------------------------------------------------------------------


class Stmt(Node):
    pass


class Block(Stmt):
    def __init__(self, statements: List[Stmt], **pos):
        super().__init__(**pos)
        self.statements = statements


class VarDecl(Stmt):
    def __init__(self, type: TypeExpr, name: str,
                 init: Optional["Expr"] = None, **pos):
        super().__init__(**pos)
        self.type = type
        self.name = name
        self.init = init


class ExprStmt(Stmt):
    def __init__(self, expr: "Expr", **pos):
        super().__init__(**pos)
        self.expr = expr


class If(Stmt):
    def __init__(self, cond: "Expr", then: Stmt,
                 orelse: Optional[Stmt] = None, **pos):
        super().__init__(**pos)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class While(Stmt):
    def __init__(self, cond: "Expr", body: Stmt, **pos):
        super().__init__(**pos)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    def __init__(self, body: Stmt, cond: "Expr", **pos):
        super().__init__(**pos)
        self.body = body
        self.cond = cond


class For(Stmt):
    def __init__(self, init: Optional[Stmt], cond: Optional["Expr"],
                 step: Optional["Expr"], body: Stmt, **pos):
        super().__init__(**pos)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    def __init__(self, value: Optional["Expr"] = None, **pos):
        super().__init__(**pos)
        self.value = value


class Break(Stmt):
    pass


class Continue(Stmt):
    pass


# -- expressions ------------------------------------------------------------------------


class Expr(Node):
    pass


class IntLiteral(Expr):
    def __init__(self, value: int, **pos):
        super().__init__(**pos)
        self.value = value


class FloatLiteral(Expr):
    def __init__(self, value: float, **pos):
        super().__init__(**pos)
        self.value = value


class StringLiteral(Expr):
    def __init__(self, value: str, **pos):
        super().__init__(**pos)
        self.value = value


class Identifier(Expr):
    def __init__(self, name: str, **pos):
        super().__init__(**pos)
        self.name = name


class Binary(Expr):
    def __init__(self, op: str, lhs: Expr, rhs: Expr, **pos):
        super().__init__(**pos)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Unary(Expr):
    """Prefix unary: ``-``, ``!``, ``~``, ``*`` (deref), ``&``
    (address-of), ``++``, ``--``."""

    def __init__(self, op: str, operand: Expr, **pos):
        super().__init__(**pos)
        self.op = op
        self.operand = operand


class Postfix(Expr):
    """Postfix ``++`` / ``--``."""

    def __init__(self, op: str, operand: Expr, **pos):
        super().__init__(**pos)
        self.op = op
        self.operand = operand


class Assign(Expr):
    """``target = value`` or compound (``+=`` etc., op holds "+" etc.)."""

    def __init__(self, target: Expr, value: Expr,
                 op: Optional[str] = None, **pos):
        super().__init__(**pos)
        self.target = target
        self.value = value
        self.op = op


class Conditional(Expr):
    def __init__(self, cond: Expr, then: Expr, orelse: Expr, **pos):
        super().__init__(**pos)
        self.cond = cond
        self.then = then
        self.orelse = orelse


class CallExpr(Expr):
    def __init__(self, callee: Expr, args: List[Expr], **pos):
        super().__init__(**pos)
        self.callee = callee
        self.args = args


class Index(Expr):
    def __init__(self, base: Expr, index: Expr, **pos):
        super().__init__(**pos)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    def __init__(self, base: Expr, field: str, arrow: bool, **pos):
        super().__init__(**pos)
        self.base = base
        self.field = field
        self.arrow = arrow


class CastExpr(Expr):
    def __init__(self, type: TypeExpr, operand: Expr, **pos):
        super().__init__(**pos)
        self.type = type
        self.operand = operand


class SizeofExpr(Expr):
    """``sizeof(T)`` or ``sizeof(*expr)``; resolved to slot counts (the
    interpreter ABI)."""

    def __init__(self, type: Optional[TypeExpr] = None,
                 operand: Optional[Expr] = None, **pos):
        super().__init__(**pos)
        self.type = type
        self.operand = operand
