"""MiniC compiler driver — the MiniC instance of the secure-value
lowering contract (:mod:`repro.secval.lowering`)."""

from __future__ import annotations

from repro.frontend.codegen import CodeGenerator
from repro.frontend.parser import parse
from repro.ir import Module
from repro.secval.lowering import run_frontend_pipeline


def lower_source(source: str, module: Module,
                 filename: str = "<source>") -> None:
    """Lower MiniC source text into an existing IR module (the
    cross-language primitive of :func:`repro.secval.compile_cross`)."""
    unit = parse(source, filename)
    CodeGenerator(module.name, module=module).generate(unit)


def compile_source(source: str, module_name: str = "minic",
                   verify: bool = True, passes=None) -> Module:
    """Compile MiniC source text into an IR module.

    This is the classical toolchain of paper Figure 5: it produces the
    "LLVM bitcode" Privagic takes as input, with secure-type colors
    carried as type annotations.  The generated module is run through
    the shared frontend pass pipeline (structural verification by
    default; ``passes`` overrides it, ``verify=False`` skips it).
    """
    module = Module(module_name)
    lower_source(source, module, filename=module_name)
    return run_frontend_pipeline(module, verify=verify, passes=passes)
