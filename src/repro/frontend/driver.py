"""MiniC compiler driver."""

from __future__ import annotations

from typing import Optional

from repro.frontend.codegen import CodeGenerator
from repro.frontend.parser import parse
from repro.ir import Module, verify_module


def compile_source(source: str, module_name: str = "minic",
                   verify: bool = True) -> Module:
    """Compile MiniC source text into an IR module.

    This is the classical toolchain of paper Figure 5: it produces the
    "LLVM bitcode" Privagic takes as input, with secure-type colors
    carried as type annotations.
    """
    unit = parse(source, module_name)
    module = CodeGenerator(module_name).generate(unit)
    if verify:
        verify_module(module)
    return module
