"""MiniC compiler driver."""

from __future__ import annotations

from repro.frontend.codegen import CodeGenerator
from repro.frontend.parser import parse
from repro.ir import Module


def compile_source(source: str, module_name: str = "minic",
                   verify: bool = True, passes=None) -> Module:
    """Compile MiniC source text into an IR module.

    This is the classical toolchain of paper Figure 5: it produces the
    "LLVM bitcode" Privagic takes as input, with secure-type colors
    carried as type annotations.  The generated module is run through
    the frontend pass pipeline (structural verification by default;
    ``passes`` overrides it, ``verify=False`` skips it).
    """
    unit = parse(source, module_name)
    module = CodeGenerator(module_name).generate(unit)
    from repro.pipeline import FRONTEND_PIPELINE, PassManager
    pipeline = passes if passes is not None else (
        FRONTEND_PIPELINE if verify else ())
    if pipeline:
        PassManager(pipeline).run(module)
    return module
