"""MiniC code generation: AST → repro IR.

The lowering mirrors clang's: every local variable becomes an
``alloca`` (later promoted by ``mem2reg`` unless its address is taken
or it carries an explicit color), reads load, writes store, struct and
array accesses become GEPs, and the ``color`` qualifier is carried on
the IR types — the Privagic analyses only ever see the IR.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import FrontendError, SecureTypeError
from repro.frontend import ast_nodes as ast
from repro.ir import (
    ArrayType,
    BasicBlock,
    Constant,
    Function,
    FunctionType,
    GlobalVariable,
    IRBuilder,
    IRType,
    Module,
    PointerType,
    StructField,
    StructType,
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    VOID,
)
from repro.ir.types import FloatType, IntType
from repro.secval.lowering import auto_declare_builtin

_BASE_TYPES: Dict[str, IRType] = {
    "void": VOID,
    "char": I8,
    "int": I32,
    "long": I64,
    "float": F32,
    "double": F64,
}


def _loc_of(node):
    """``(line, column)`` of an AST node, or None for synthesized
    nodes (position 0)."""
    line = getattr(node, "line", 0)
    return (line, getattr(node, "column", 0)) if line else None


class _Scope:
    """Lexical scope mapping names to lvalue pointers."""

    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.vars: Dict[str, object] = {}

    def lookup(self, name: str):
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.vars:
                return scope.vars[name]
            scope = scope.parent
        return None

    def define(self, name: str, value) -> None:
        self.vars[name] = value


class CodeGenerator:
    """Generates one IR module from one translation unit."""

    def __init__(self, module_name: str = "minic",
                 module: Optional[Module] = None):
        # Lower into ``module`` when given (cross-language composition
        # via repro.secval.compile_cross), else into a fresh module.
        self.module = module if module is not None else Module(module_name)
        self._string_counter = 0
        # per-function state
        self.builder: Optional[IRBuilder] = None
        self.function: Optional[Function] = None
        self.scope: Optional[_Scope] = None
        self._loop_stack: List[Tuple[BasicBlock, BasicBlock]] = []

    # -- entry point --------------------------------------------------------------

    def generate(self, unit: ast.TranslationUnit) -> Module:
        structs = [d for d in unit.decls
                   if isinstance(d, (ast.StructDecl, ast.UnionDecl))]
        functions = [d for d in unit.decls
                     if isinstance(d, ast.FunctionDecl)]
        globals_ = [d for d in unit.decls if isinstance(d, ast.GlobalDecl)]

        # Forward-declare all struct names so fields may reference them.
        for decl in structs:
            self.module.add_struct(StructType(decl.name))
        for decl in structs:
            self._define_record(decl)
        for decl in globals_:
            self._define_global(decl)
        for decl in functions:
            self._declare_function(decl)
        for decl in functions:
            if decl.body is not None:
                self._define_function(decl)
        return self.module

    # -- types ----------------------------------------------------------------------

    def resolve_type(self, expr) -> IRType:
        if isinstance(expr, ast.FuncPtrTypeExpr):
            ret = self.resolve_type(expr.ret)
            params = [self.resolve_type(p) for p in expr.params]
            return PointerType(FunctionType(ret, params))
        base = expr.base
        if isinstance(base, tuple):
            kind, name = base
            if name not in self.module.structs:
                raise FrontendError(f"unknown {kind} {name!r}",
                                    expr.line, expr.column)
            ir_type: IRType = self.module.structs[name]
            if expr.color is not None:
                # Color the whole record: color every field (used for
                # single-color data structures, paper §9.3).
                ir_type = self._colored_struct(ir_type, expr.color, expr)
        else:
            try:
                ir_type = _BASE_TYPES[base]
            except KeyError:
                raise FrontendError(f"unknown type {base!r}",
                                    expr.line, expr.column)
            if expr.color is not None:
                ir_type = ir_type.with_color(expr.color)
        if expr.pointer_depth:
            if ir_type is VOID:
                ir_type = I8  # void* is i8*
            for _ in range(expr.pointer_depth):
                ir_type = PointerType(ir_type)
        if expr.array_size is not None:
            ir_type = ArrayType(ir_type, expr.array_size)
        return ir_type

    def _colored_struct(self, struct: StructType, color: str,
                        node=None) -> StructType:
        name = f"{struct.name}.{color}"
        if name in self.module.structs:
            return self.module.structs[name]
        colored = StructType(name)
        self.module.add_struct(colored)
        colored.set_body([
            StructField(f.name, self._color_field_type(f.type, color,
                                                       node))
            for f in struct.fields])
        return colored

    def _color_field_type(self, type: IRType, color: str,
                          node=None) -> IRType:
        if isinstance(type, PointerType):
            return PointerType(self._color_field_type(type.pointee, color,
                                                      node))
        if isinstance(type, StructType):
            return self._colored_struct(type, color, node)
        if type.color is not None and type.color != color:
            raise SecureTypeError(
                "union", f"field already colored {type.color}, cannot "
                         f"recolor {color}", loc=_loc_of(node))
        return type.with_color(color)

    # -- records ----------------------------------------------------------------------

    def _define_record(self, decl) -> None:
        fields = [StructField(name, self.resolve_type(ftype))
                  for ftype, name in decl.fields]
        if isinstance(decl, ast.UnionDecl):
            colors = {f.type.color for f in fields
                      if f.type.color is not None}
            if len(colors) >= 2:
                # Paper §4: a memory location has at most one color; a
                # union with differently colored fields is rejected.
                raise SecureTypeError(
                    "union",
                    f"union {decl.name} mixes colors {sorted(colors)}",
                    loc=_loc_of(decl))
        self.module.structs[decl.name].set_body(fields)

    # -- globals -----------------------------------------------------------------------

    def _define_global(self, decl: ast.GlobalDecl) -> None:
        vtype = self.resolve_type(decl.type)
        init = None
        if decl.init is not None:
            init = self._constant_initializer(decl.init, vtype)
        self.module.add_global(GlobalVariable(decl.name, vtype, init))

    def _constant_initializer(self, expr: ast.Expr,
                              vtype: IRType) -> Constant:
        if isinstance(expr, ast.IntLiteral):
            return Constant(vtype, expr.value)
        if isinstance(expr, ast.FloatLiteral):
            return Constant(vtype, expr.value)
        if isinstance(expr, ast.StringLiteral):
            return Constant(vtype, expr.value)
        if isinstance(expr, ast.Unary) and expr.op == "-" and \
                isinstance(expr.operand, (ast.IntLiteral, ast.FloatLiteral)):
            return Constant(vtype, -expr.operand.value)
        raise FrontendError("global initializer must be a literal",
                            expr.line, expr.column)

    # -- functions ----------------------------------------------------------------------

    def _declare_function(self, decl: ast.FunctionDecl) -> None:
        ret = self.resolve_type(decl.ret)
        params = [self.resolve_type(p.type) for p in decl.params]
        ftype = FunctionType(ret, params, decl.vararg)
        existing = self.module.functions.get(decl.name)
        if existing is not None:
            if existing.ftype != ftype and existing.ftype.strip_color() \
                    != ftype.strip_color():
                raise FrontendError(
                    f"conflicting declarations of {decl.name}",
                    decl.line, decl.column)
            existing.attributes |= decl.annotations
            return
        fn = Function(decl.name, ftype, [p.name for p in decl.params],
                      decl.annotations)
        self.module.add_function(fn)

    def _define_function(self, decl: ast.FunctionDecl) -> None:
        fn = self.module.get_function(decl.name)
        self.function = fn
        self.scope = _Scope()
        self._loop_stack = []
        entry = fn.add_block("entry")
        self.builder = IRBuilder(entry)

        # Spill parameters into allocas (clang-style); mem2reg promotes
        # the ones whose address is never taken.
        for arg in fn.args:
            slot = self.builder.alloca(arg.type, f"{arg.name}.addr")
            self.builder.store(arg, slot)
            self.scope.define(arg.name, slot)

        self._gen_block(decl.body)

        if self.builder.block is not None and not self.builder.block.is_terminated:
            ret_type = fn.ftype.ret
            if ret_type == VOID:
                self.builder.ret()
            else:
                self.builder.ret(self._zero_of(ret_type))
        # Blocks created for dead code (e.g. after a return) may lack
        # terminators; seal them.
        for block in fn.blocks:
            if not block.is_terminated:
                temp = IRBuilder(block)
                if fn.ftype.ret == VOID:
                    temp.ret()
                else:
                    temp.ret(self._zero_of(fn.ftype.ret))
        self.function = None
        self.builder = None
        self.scope = None

    def _zero_of(self, type: IRType) -> Constant:
        if isinstance(type, FloatType):
            return Constant(type.strip_color(), 0.0)
        return Constant(type.strip_color() if not isinstance(
            type, PointerType) else type, 0)

    # -- statements ------------------------------------------------------------------------

    def _gen_block(self, block: ast.Block) -> None:
        self.scope = _Scope(self.scope)
        for stmt in block.statements:
            self._gen_statement(stmt)
        self.scope = self.scope.parent

    def _gen_statement(self, stmt: ast.Stmt) -> None:
        self.builder.set_loc(stmt)
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._gen_var_decl(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            self._gen_rvalue(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            self._gen_break(stmt)
        elif isinstance(stmt, ast.Continue):
            self._gen_continue(stmt)
        else:
            raise FrontendError(f"cannot generate {type(stmt).__name__}",
                                stmt.line, stmt.column)

    def _gen_var_decl(self, stmt: ast.VarDecl) -> None:
        vtype = self.resolve_type(stmt.type)
        slot = self.builder.alloca(vtype, stmt.name)
        self.scope.define(stmt.name, slot)
        if stmt.init is not None:
            value = self._gen_rvalue(stmt.init)
            self.builder.store(self._coerce(value, vtype, stmt), slot)

    def _gen_if(self, stmt: ast.If) -> None:
        cond = self._gen_condition(stmt.cond)
        fn = self.function
        then_block = fn.add_block("if.then")
        merge_block = fn.add_block("if.end")
        else_block = fn.add_block("if.else") if stmt.orelse else merge_block
        self.builder.branch(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        self._gen_statement(stmt.then)
        if not self.builder.block.is_terminated:
            self.builder.jump(merge_block)

        if stmt.orelse is not None:
            self.builder.position_at_end(else_block)
            self._gen_statement(stmt.orelse)
            if not self.builder.block.is_terminated:
                self.builder.jump(merge_block)

        self.builder.position_at_end(merge_block)

    def _gen_while(self, stmt: ast.While) -> None:
        fn = self.function
        cond_block = fn.add_block("while.cond")
        body_block = fn.add_block("while.body")
        end_block = fn.add_block("while.end")
        self.builder.jump(cond_block)

        self.builder.position_at_end(cond_block)
        cond = self._gen_condition(stmt.cond)
        self.builder.branch(cond, body_block, end_block)

        self.builder.position_at_end(body_block)
        self._loop_stack.append((end_block, cond_block))
        self._gen_statement(stmt.body)
        self._loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.jump(cond_block)

        self.builder.position_at_end(end_block)

    def _gen_do_while(self, stmt: ast.DoWhile) -> None:
        fn = self.function
        body_block = fn.add_block("do.body")
        cond_block = fn.add_block("do.cond")
        end_block = fn.add_block("do.end")
        self.builder.jump(body_block)

        self.builder.position_at_end(body_block)
        self._loop_stack.append((end_block, cond_block))
        self._gen_statement(stmt.body)
        self._loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.jump(cond_block)

        self.builder.position_at_end(cond_block)
        cond = self._gen_condition(stmt.cond)
        self.builder.branch(cond, body_block, end_block)

        self.builder.position_at_end(end_block)

    def _gen_for(self, stmt: ast.For) -> None:
        fn = self.function
        self.scope = _Scope(self.scope)
        if stmt.init is not None:
            self._gen_statement(stmt.init)
        cond_block = fn.add_block("for.cond")
        body_block = fn.add_block("for.body")
        step_block = fn.add_block("for.step")
        end_block = fn.add_block("for.end")
        self.builder.jump(cond_block)

        self.builder.position_at_end(cond_block)
        if stmt.cond is not None:
            cond = self._gen_condition(stmt.cond)
            self.builder.branch(cond, body_block, end_block)
        else:
            self.builder.jump(body_block)

        self.builder.position_at_end(body_block)
        self._loop_stack.append((end_block, step_block))
        self._gen_statement(stmt.body)
        self._loop_stack.pop()
        if not self.builder.block.is_terminated:
            self.builder.jump(step_block)

        self.builder.position_at_end(step_block)
        if stmt.step is not None:
            self._gen_rvalue(stmt.step)
        self.builder.jump(cond_block)

        self.builder.position_at_end(end_block)
        self.scope = self.scope.parent

    def _gen_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.builder.ret()
        else:
            value = self._gen_rvalue(stmt.value)
            value = self._coerce(value, self.function.ftype.ret, stmt)
            self.builder.ret(value)
        # Subsequent statements in this block are dead; give them a
        # fresh (unreachable) block.
        self.builder.position_at_end(self.function.add_block("dead"))

    def _gen_break(self, stmt: ast.Break) -> None:
        if not self._loop_stack:
            raise FrontendError("break outside a loop", stmt.line,
                                stmt.column)
        self.builder.jump(self._loop_stack[-1][0])
        self.builder.position_at_end(self.function.add_block("dead"))

    def _gen_continue(self, stmt: ast.Continue) -> None:
        if not self._loop_stack:
            raise FrontendError("continue outside a loop", stmt.line,
                                stmt.column)
        self.builder.jump(self._loop_stack[-1][1])
        self.builder.position_at_end(self.function.add_block("dead"))

    # -- expressions: lvalues ------------------------------------------------------------------

    def _gen_lvalue(self, expr: ast.Expr):
        self.builder.set_loc(expr)
        if isinstance(expr, ast.Identifier):
            slot = self.scope.lookup(expr.name)
            if slot is not None:
                return slot
            gv = self.module.globals.get(expr.name)
            if gv is not None:
                return gv
            raise FrontendError(f"undefined variable {expr.name!r}",
                                expr.line, expr.column)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            return self._gen_rvalue(expr.operand)
        if isinstance(expr, ast.Index):
            return self._gen_index_ptr(expr)
        if isinstance(expr, ast.Member):
            return self._gen_member_ptr(expr)
        raise FrontendError("expression is not assignable",
                            expr.line, expr.column)

    def _gen_index_ptr(self, expr: ast.Index):
        index = self._gen_rvalue(expr.index)
        base_type = self._type_of(expr.base)
        if isinstance(base_type, ArrayType):
            base_ptr = self._gen_lvalue(expr.base)
            return self.builder.gep(base_ptr,
                                    [self.builder.const_int(0), index])
        base = self._gen_rvalue(expr.base)
        if not isinstance(base.type, PointerType):
            raise FrontendError("cannot index a non-pointer",
                                expr.line, expr.column)
        return self.builder.gep(base, [index])

    def _gen_member_ptr(self, expr: ast.Member):
        if expr.arrow:
            base_ptr = self._gen_rvalue(expr.base)
        else:
            base_ptr = self._gen_lvalue(expr.base)
        pointee = base_ptr.type.pointee
        if not isinstance(pointee, StructType):
            raise FrontendError(
                f"member access on non-struct {pointee}",
                expr.line, expr.column)
        index = pointee.field_index(expr.field)
        return self.builder.struct_field_ptr(base_ptr, index)

    # -- expressions: rvalues --------------------------------------------------------------------

    def _gen_rvalue(self, expr: ast.Expr):
        self.builder.set_loc(expr)
        if isinstance(expr, ast.IntLiteral):
            return self.builder.const_int(expr.value,
                                          I64 if expr.value > 2**31 else I32)
        if isinstance(expr, ast.FloatLiteral):
            return self.builder.const_float(expr.value)
        if isinstance(expr, ast.StringLiteral):
            return self._gen_string(expr.value)
        if isinstance(expr, ast.Identifier):
            return self._gen_identifier(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Postfix):
            return self._gen_postfix(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr)
        if isinstance(expr, ast.Conditional):
            return self._gen_conditional(expr)
        if isinstance(expr, ast.CallExpr):
            return self._gen_call(expr)
        if isinstance(expr, (ast.Index, ast.Member)):
            ptr = self._gen_lvalue(expr)
            if isinstance(ptr.type.pointee, ArrayType):
                # Arrays decay to element pointers.
                return self.builder.gep(
                    ptr, [self.builder.const_int(0),
                          self.builder.const_int(0)])
            return self.builder.load(ptr)
        if isinstance(expr, ast.CastExpr):
            return self._gen_cast(expr)
        if isinstance(expr, ast.SizeofExpr):
            return self._gen_sizeof(expr)
        raise FrontendError(f"cannot generate {type(expr).__name__}",
                            expr.line, expr.column)

    def _gen_string(self, text: str):
        # Skip names an earlier unit already claimed (cross-language
        # lowering shares one module across generators).
        name = f".str{self._string_counter}"
        self._string_counter += 1
        while name in self.module.globals:
            name = f".str{self._string_counter}"
            self._string_counter += 1
        arr_type = ArrayType(I8, len(text) + 1)
        gv = self.module.add_global(
            GlobalVariable(name, arr_type, Constant(arr_type, text)))
        zero = self.builder.const_int(0)
        return self.builder.gep(gv, [zero, zero])

    def _gen_identifier(self, expr: ast.Identifier):
        slot = self.scope.lookup(expr.name)
        if slot is None:
            gv = self.module.globals.get(expr.name)
            if gv is not None:
                slot = gv
            else:
                fn = self.module.functions.get(expr.name) or \
                    self._auto_declare(expr.name)
                if fn is not None:
                    return fn
                raise FrontendError(f"undefined variable {expr.name!r}",
                                    expr.line, expr.column)
        if isinstance(slot.type.pointee, ArrayType):
            zero = self.builder.const_int(0)
            return self.builder.gep(slot, [zero, zero])
        return self.builder.load(slot)

    def _gen_unary(self, expr: ast.Unary):
        op = expr.op
        if op == "&":
            return self._gen_lvalue(expr.operand)
        if op == "*":
            ptr = self._gen_rvalue(expr.operand)
            if not isinstance(ptr.type, PointerType):
                raise FrontendError("cannot dereference a non-pointer",
                                    expr.line, expr.column)
            return self.builder.load(ptr)
        if op in ("++", "--"):
            ptr = self._gen_lvalue(expr.operand)
            old = self.builder.load(ptr)
            delta = self.builder.const_int(1, old.type if isinstance(
                old.type, IntType) else I32)
            new = self.builder.binop("add" if op == "++" else "sub",
                                     old, delta)
            self.builder.store(new, ptr)
            return new
        operand = self._gen_rvalue(expr.operand)
        if op == "-":
            if isinstance(operand.type, FloatType):
                return self.builder.binop(
                    "fsub", self.builder.const_float(0.0, operand.type),
                    operand)
            return self.builder.sub(
                Constant(operand.type.strip_color(), 0), operand)
        if op == "!":
            as_bool = self._to_bool(operand)
            return self.builder.cmp("eq", as_bool,
                                    self.builder.const_bool(False))
        if op == "~":
            return self.builder.binop(
                "xor", operand, Constant(operand.type.strip_color(), -1))
        raise FrontendError(f"unsupported unary {op!r}",
                            expr.line, expr.column)

    def _gen_postfix(self, expr: ast.Postfix):
        ptr = self._gen_lvalue(expr.operand)
        old = self.builder.load(ptr)
        delta = Constant(old.type.strip_color()
                         if isinstance(old.type, IntType) else I32, 1)
        new = self.builder.binop("add" if expr.op == "++" else "sub",
                                 old, delta)
        self.builder.store(new, ptr)
        return old

    _CMP_MAP = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                ">": "sgt", ">=": "sge"}
    _ARITH_MAP = {"+": "add", "-": "sub", "*": "mul", "/": "sdiv",
                  "%": "srem", "&": "and", "|": "or", "^": "xor",
                  "<<": "shl", ">>": "ashr"}

    def _gen_binary(self, expr: ast.Binary):
        op = expr.op
        if op in ("&&", "||"):
            return self._gen_short_circuit(expr)
        lhs = self._gen_rvalue(expr.lhs)
        rhs = self._gen_rvalue(expr.rhs)
        if op in self._CMP_MAP:
            lhs, rhs = self._unify(lhs, rhs, expr)
            predicate = self._CMP_MAP[op]
            if isinstance(lhs.type, FloatType):
                predicate = "f" + predicate.lstrip("s")
            return self.builder.cmp(predicate, lhs, rhs)
        # Pointer arithmetic: p + n / p - n become GEPs.
        if isinstance(lhs.type, PointerType) and op in ("+", "-"):
            if op == "-" and isinstance(rhs.type, PointerType):
                a = self.builder.cast("ptrtoint", lhs, I64)
                b = self.builder.cast("ptrtoint", rhs, I64)
                return self.builder.sub(a, b)
            offset = rhs
            if op == "-":
                offset = self.builder.sub(
                    Constant(rhs.type.strip_color(), 0), rhs)
            return self.builder.gep(lhs, [offset])
        if op not in self._ARITH_MAP:
            raise FrontendError(f"unsupported operator {op!r}",
                                expr.line, expr.column)
        lhs, rhs = self._unify(lhs, rhs, expr)
        ir_op = self._ARITH_MAP[op]
        if isinstance(lhs.type, FloatType):
            float_map = {"add": "fadd", "sub": "fsub", "mul": "fmul",
                         "sdiv": "fdiv"}
            if ir_op not in float_map:
                raise FrontendError(f"operator {op!r} on floats",
                                    expr.line, expr.column)
            ir_op = float_map[ir_op]
        return self.builder.binop(ir_op, lhs, rhs)

    def _gen_short_circuit(self, expr: ast.Binary):
        fn = self.function
        rhs_block = fn.add_block("sc.rhs")
        merge_block = fn.add_block("sc.end")
        lhs = self._to_bool(self._gen_rvalue(expr.lhs))
        lhs_block = self.builder.block
        if expr.op == "&&":
            self.builder.branch(lhs, rhs_block, merge_block)
        else:
            self.builder.branch(lhs, merge_block, rhs_block)

        self.builder.position_at_end(rhs_block)
        rhs = self._to_bool(self._gen_rvalue(expr.rhs))
        rhs_end = self.builder.block
        self.builder.jump(merge_block)

        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(I1)
        phi.add_incoming(self.builder.const_bool(expr.op == "||"),
                         lhs_block)
        phi.add_incoming(rhs, rhs_end)
        return phi

    def _gen_assign(self, expr: ast.Assign):
        ptr = self._gen_lvalue(expr.target)
        if expr.op is not None:
            synthetic = ast.Binary(expr.op, expr.target, expr.value,
                                   line=expr.line, column=expr.column)
            value = self._gen_binary(synthetic)
        else:
            value = self._gen_rvalue(expr.value)
        value = self._coerce(value, ptr.type.pointee, expr)
        self.builder.store(value, ptr)
        return value

    def _gen_conditional(self, expr: ast.Conditional):
        fn = self.function
        then_block = fn.add_block("cond.then")
        else_block = fn.add_block("cond.else")
        merge_block = fn.add_block("cond.end")
        cond = self._gen_condition(expr.cond)
        self.builder.branch(cond, then_block, else_block)

        self.builder.position_at_end(then_block)
        then_value = self._gen_rvalue(expr.then)
        then_end = self.builder.block
        self.builder.jump(merge_block)

        self.builder.position_at_end(else_block)
        else_value = self._gen_rvalue(expr.orelse)
        else_value = self._coerce(else_value, then_value.type, expr)
        else_end = self.builder.block
        self.builder.jump(merge_block)

        self.builder.position_at_end(merge_block)
        phi = self.builder.phi(then_value.type)
        phi.add_incoming(then_value, then_end)
        phi.add_incoming(else_value, else_end)
        return phi

    def _gen_call(self, expr: ast.CallExpr):
        args = [self._gen_rvalue(a) for a in expr.args]
        callee = None
        if isinstance(expr.callee, ast.Identifier):
            name = expr.callee.name
            callee = self.module.functions.get(name) or \
                self._auto_declare(name)
            if callee is None:
                # Maybe a function-pointer variable.
                slot = self.scope.lookup(name) or \
                    self.module.globals.get(name)
                if slot is not None:
                    callee = self.builder.load(slot)
        if callee is None:
            callee = self._gen_rvalue(expr.callee)
        ftype = callee.type.pointee if isinstance(
            callee.type, PointerType) else callee.type
        if not isinstance(ftype, FunctionType):
            raise FrontendError("calling a non-function",
                                expr.line, expr.column)
        fixed = len(ftype.params)
        if len(args) < fixed or (len(args) > fixed and not ftype.vararg):
            raise FrontendError(
                f"call expects {fixed} arguments, got {len(args)}",
                expr.line, expr.column)
        coerced = [self._coerce(a, t, expr)
                   for a, t in zip(args, ftype.params)]
        coerced.extend(args[fixed:])
        return self.builder.call(callee, coerced)

    def _auto_declare(self, name: str) -> Optional[Function]:
        # The shared mini-libc of the secure-value contract: every
        # frontend auto-declares the same signatures (paper §6.3).
        return auto_declare_builtin(self.module, name)

    def _gen_cast(self, expr: ast.CastExpr):
        value = self._gen_rvalue(expr.operand)
        to_type = self.resolve_type(expr.type)
        return self._coerce(value, to_type, expr, explicit=True)

    def _gen_sizeof(self, expr: ast.SizeofExpr):
        if expr.type is not None:
            size = self.resolve_type(expr.type).size_slots()
        else:
            operand_type = self._type_of(expr.operand)
            size = operand_type.size_slots()
        return self.builder.const_i64(size)

    # -- helpers ------------------------------------------------------------------------------------

    def _gen_condition(self, expr: ast.Expr):
        return self._to_bool(self._gen_rvalue(expr))

    def _to_bool(self, value):
        if isinstance(value.type, IntType) and value.type.bits == 1:
            return value
        if isinstance(value.type, FloatType):
            return self.builder.cmp("fne", value,
                                    self.builder.const_float(0.0))
        zero = Constant(value.type.strip_color() if not isinstance(
            value.type, PointerType) else value.type, 0)
        if isinstance(value.type, PointerType):
            zero = Constant(I64, 0)
            value = self.builder.cast("ptrtoint", value, I64)
        return self.builder.cmp("ne", value, zero)

    def _unify(self, lhs, rhs, expr):
        """Apply the usual arithmetic conversions to a pair of values."""
        lt, rt = lhs.type, rhs.type
        if isinstance(lt, PointerType) and isinstance(rt, PointerType):
            return lhs, rhs
        if isinstance(lt, PointerType):
            return lhs, self._coerce(rhs, I64, expr)
        if isinstance(rt, PointerType):
            return self._coerce(lhs, I64, expr), rhs
        if isinstance(lt, FloatType) or isinstance(rt, FloatType):
            target = F64
            return (self._coerce(lhs, target, expr),
                    self._coerce(rhs, target, expr))
        bits = max(lt.bits, rt.bits)
        target = IntType(bits)
        return (self._coerce(lhs, target, expr),
                self._coerce(rhs, target, expr))

    def _coerce(self, value, to_type: IRType, node,
                explicit: bool = False):
        """Convert ``value`` to ``to_type``, inserting casts as needed."""
        from_type = value.type
        if from_type == to_type:
            return value
        # Scalars may differ only in color qualifiers (register values
        # carry no color); pointers may NOT — a pointee-color change
        # must materialize as a bitcast so the secure type system can
        # judge it (rule 4 of §4 forbids recoloring casts).
        if not isinstance(to_type, PointerType) and \
                from_type.strip_color() == to_type.strip_color():
            return value
        # int <-> int
        if isinstance(from_type, IntType) and isinstance(to_type, IntType):
            if isinstance(value, Constant):
                return Constant(to_type.strip_color(), value.value)
            if from_type.bits == to_type.bits:
                return value
            kind = "trunc" if from_type.bits > to_type.bits else "sext"
            return self.builder.cast(kind, value, to_type.strip_color())
        # int <-> float
        if isinstance(from_type, IntType) and isinstance(to_type, FloatType):
            if isinstance(value, Constant):
                return Constant(to_type.strip_color(), float(value.value))
            return self.builder.cast("sitofp", value, to_type.strip_color())
        if isinstance(from_type, FloatType) and isinstance(to_type, IntType):
            return self.builder.cast("fptosi", value, to_type.strip_color())
        if isinstance(from_type, FloatType) and isinstance(to_type,
                                                           FloatType):
            return value  # single float representation at runtime
        # pointer <-> pointer
        if isinstance(from_type, PointerType) and isinstance(to_type,
                                                             PointerType):
            return self.builder.bitcast(value, to_type)
        # null pointer literal
        if isinstance(to_type, PointerType) and isinstance(value, Constant) \
                and value.value == 0:
            return Constant(to_type, 0)
        # pointer <-> integer (explicit casts, thread_create args, ...)
        if isinstance(from_type, PointerType) and isinstance(to_type,
                                                             IntType):
            return self.builder.cast("ptrtoint", value, to_type.strip_color())
        if isinstance(from_type, IntType) and isinstance(to_type,
                                                         PointerType):
            return self.builder.cast("inttoptr", value, to_type)
        raise FrontendError(
            f"cannot convert {from_type} to {to_type}",
            getattr(node, "line", 0), getattr(node, "column", 0))

    def _type_of(self, expr: ast.Expr) -> IRType:
        """Static type of an expression, for sizeof/index decisions.

        Computed without emitting code for the common shapes; falls
        back to emitting for complex operands of ``sizeof`` (C also
        evaluates there in VLA cases, so this is acceptable).
        """
        if isinstance(expr, ast.Identifier):
            slot = self.scope.lookup(expr.name)
            if slot is not None:
                return slot.type.pointee
            gv = self.module.globals.get(expr.name)
            if gv is not None:
                return gv.value_type
            fn = self.module.functions.get(expr.name)
            if fn is not None:
                return fn.type
            raise FrontendError(f"undefined variable {expr.name!r}",
                                expr.line, expr.column)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            inner = self._type_of(expr.operand)
            if isinstance(inner, PointerType):
                return inner.pointee
            raise FrontendError("dereferencing a non-pointer",
                                expr.line, expr.column)
        if isinstance(expr, ast.Member):
            base = self._type_of(expr.base)
            if expr.arrow:
                if not isinstance(base, PointerType):
                    raise FrontendError("-> on non-pointer",
                                        expr.line, expr.column)
                base = base.pointee
            if not isinstance(base, StructType):
                raise FrontendError("member of non-struct",
                                    expr.line, expr.column)
            return base.fields[base.field_index(expr.field)].type
        if isinstance(expr, ast.Index):
            base = self._type_of(expr.base)
            if isinstance(base, ArrayType):
                return base.element
            if isinstance(base, PointerType):
                return base.pointee
            raise FrontendError("indexing a non-array",
                                expr.line, expr.column)
        if isinstance(expr, ast.IntLiteral):
            return I32
        if isinstance(expr, ast.FloatLiteral):
            return F64
        if isinstance(expr, ast.StringLiteral):
            return PointerType(I8)
        # Fall back: emit the expression and look at its type.
        return self._gen_rvalue(expr).type
