"""repro.frontend — the MiniC compiler (clang substitute).

MiniC is a small C dialect sufficient for the paper's programs:
structs, pointers, arrays, the usual statements and expressions, plus
the Privagic surface syntax:

* ``color(name)`` type qualifier (paper Fig 1) — e.g.
  ``double color(red) balance;``
* ``within`` / ``ignore`` / ``entry`` function annotations
  (paper §6.2–§6.4);
* ``extern`` declarations for external functions.

The compiler produces :class:`repro.ir.Module` objects through
:func:`compile_source`, exactly as clang produces LLVM bitcode for the
real Privagic (paper §5): the ``color`` qualifier is carried as a type
annotation in the IR, and the Privagic analyses never look at the
source language again.
"""

from repro.frontend.lexer import Lexer, Token, tokenize
from repro.frontend.parser import Parser, parse
from repro.frontend.codegen import CodeGenerator
from repro.frontend.driver import compile_source

__all__ = [
    "Lexer", "Token", "tokenize",
    "Parser", "parse",
    "CodeGenerator",
    "compile_source",
]
