"""IRBuilder — convenient construction of IR, mirroring LLVM's
``IRBuilder``.

The builder keeps an insertion point (a basic block) and offers one
method per instruction kind, auto-naming result registers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import IRError
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Branch,
    Call,
    Cast,
    Cmp,
    GEP,
    Jump,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Unreachable,
)
from repro.ir.module import BasicBlock, Function
from repro.ir.types import IntType, IRType, I1, I32, I64, F64
from repro.ir.values import Constant, Value


class IRBuilder:
    """Builds instructions at an insertion point."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block
        #: Current source position ``(line, column)``; stamped onto
        #: every inserted instruction so diagnostics can point back at
        #: the MiniC source.
        self.loc = None

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    def set_loc(self, node) -> None:
        """Track the source position of ``node`` (anything with
        ``line``/``column`` attributes, e.g. an AST node or a token);
        positions of 0 (synthesized nodes) are ignored."""
        line = getattr(node, "line", 0)
        if line:
            self.loc = (line, getattr(node, "column", 0))

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise IRError("builder has no insertion point")
        return self.block.parent

    def _insert(self, instr):
        if self.block is None:
            raise IRError("builder has no insertion point")
        if instr.name == "" and not instr.is_void:
            instr.name = self.function.next_value_name()
        if instr.loc is None:
            instr.loc = self.loc
        return self.block.append(instr)

    # -- constants -------------------------------------------------------------

    @staticmethod
    def const_int(value: int, type: IRType = I32) -> Constant:
        return Constant(type, int(value))

    @staticmethod
    def const_i64(value: int) -> Constant:
        return Constant(I64, int(value))

    @staticmethod
    def const_bool(value: bool) -> Constant:
        return Constant(I1, 1 if value else 0)

    @staticmethod
    def const_float(value: float, type: IRType = F64) -> Constant:
        return Constant(type, float(value))

    # -- memory ----------------------------------------------------------------

    def alloca(self, type: IRType, name: str = "") -> Alloca:
        return self._insert(Alloca(type, name))

    def load(self, ptr: Value, name: str = "") -> Load:
        return self._insert(Load(ptr, name))

    def store(self, value: Value, ptr: Value) -> Store:
        return self._insert(Store(value, ptr))

    def gep(self, ptr: Value, indices: Sequence[Value],
            name: str = "") -> GEP:
        return self._insert(GEP(ptr, indices, name))

    def struct_field_ptr(self, ptr: Value, field_index: int,
                         name: str = "") -> GEP:
        """Address field ``field_index`` of the struct ``ptr`` points to."""
        zero = self.const_int(0)
        return self.gep(ptr, [zero, self.const_int(field_index)], name)

    # -- arithmetic --------------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value,
              name: str = "") -> BinOp:
        return self._insert(BinOp(op, lhs, rhs, name))

    def add(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("add", lhs, rhs, name)

    def sub(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("sub", lhs, rhs, name)

    def mul(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("mul", lhs, rhs, name)

    def sdiv(self, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self.binop("sdiv", lhs, rhs, name)

    def cmp(self, predicate: str, lhs: Value, rhs: Value,
            name: str = "") -> Cmp:
        return self._insert(Cmp(predicate, lhs, rhs, name))

    def select(self, cond: Value, a: Value, b: Value,
               name: str = "") -> Select:
        return self._insert(Select(cond, a, b, name))

    def cast(self, kind: str, value: Value, to_type: IRType,
             name: str = "") -> Cast:
        return self._insert(Cast(kind, value, to_type, name))

    def bitcast(self, value: Value, to_type: IRType,
                name: str = "") -> Cast:
        return self.cast("bitcast", value, to_type, name)

    # -- control flow -------------------------------------------------------------

    def call(self, callee: Value, args: Sequence[Value] = (),
             name: str = "") -> Call:
        return self._insert(Call(callee, list(args), name))

    def branch(self, cond: Value, then_block: BasicBlock,
               else_block: BasicBlock) -> Branch:
        return self._insert(Branch(cond, then_block, else_block))

    def jump(self, target: BasicBlock) -> Jump:
        return self._insert(Jump(target))

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._insert(Ret(value))

    def unreachable(self) -> Unreachable:
        return self._insert(Unreachable())

    def phi(self, type: IRType, name: str = "") -> Phi:
        """Insert a phi at the start of the current block."""
        if self.block is None:
            raise IRError("builder has no insertion point")
        node = Phi(type, name or self.function.next_value_name("phi"))
        node.loc = self.loc
        self.block.insert(self.block.first_non_phi_index(), node)
        node.parent = self.block
        return node
