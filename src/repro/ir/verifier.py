"""Structural verifier for the IR.

Checks the invariants every pass and analysis assumes:

* every block (reachable or not) ends with exactly one terminator;
* branch targets and phi incoming blocks belong to the function (no
  dangling references to erased blocks);
* instruction results are defined before use (SSA dominance);
* phi nodes have one incoming per predecessor and sit at block start;
* operand/user links are consistent;
* stores/loads go through pointer-typed operands.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.errors import IRError
from repro.ir.instructions import Instruction, Load, Phi, Store
from repro.ir.module import BasicBlock, Function, Module
from repro.ir.printer import print_instruction
from repro.ir.types import PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, UndefValue, Value


def verify_module(module: Module, cache=None) -> None:
    """Raise :class:`IRError` on the first malformed function."""
    for fn in module.functions.values():
        if not fn.is_declaration:
            verify_function(fn, cache=cache)


def verify_function(fn: Function, cache=None) -> None:
    """Verify one function.  ``cache`` optionally supplies the
    dominator tree (a fresh throwaway cache is used otherwise, so the
    verifier never trusts analyses a buggy pass failed to
    invalidate)."""
    if not fn.blocks:
        return
    if cache is None:
        from repro.pipeline.analyses import AnalysisCache
        cache = AnalysisCache()
    reachable = cache.reachable(fn)
    members = set(fn.blocks)
    _check_terminators(fn, members)
    _check_phis(fn, reachable, members)
    _check_links(fn)
    _check_dominance(fn, reachable, cache)


def _fail(fn: Function, message: str, instr: Instruction = None) -> None:
    at = f" in {print_instruction(instr)}" if instr is not None else ""
    raise IRError(f"verifier: @{fn.name}: {message}{at}")


def _check_terminators(fn: Function, members: Set[BasicBlock]) -> None:
    for block in fn.blocks:
        if block.terminator is None:
            _fail(fn, f"block {block.name} has no terminator")
        for instr in block.instructions[:-1]:
            if instr.is_terminator:
                _fail(fn, f"terminator in the middle of block {block.name}",
                      instr)
        for target in block.successors:
            if target.parent is not fn or target not in members:
                _fail(fn, f"block {block.name} branches to a block not "
                          f"in the function (dangling reference to "
                          f"{target.name!r}?)")


def _check_phis(fn: Function, reachable: Set[BasicBlock],
                members: Set[BasicBlock]) -> None:
    for block in fn.blocks:
        if block not in reachable:
            continue
        preds = set(block.predecessors)
        seen_non_phi = False
        for instr in block.instructions:
            if isinstance(instr, Phi):
                if seen_non_phi:
                    _fail(fn, f"phi after non-phi in block {block.name}",
                          instr)
                incoming = set(instr.incoming_blocks)
                for b in incoming:
                    if b not in members:
                        _fail(fn, f"phi incoming from a block not in the "
                                  f"function ({b.name!r})", instr)
                if incoming != preds:
                    _fail(fn, f"phi incomings {sorted(b.name for b in incoming)} "
                              f"do not match predecessors "
                              f"{sorted(b.name for b in preds)}", instr)
            else:
                seen_non_phi = True


def _check_links(fn: Function) -> None:
    for block in fn.blocks:
        for instr in block.instructions:
            if instr.parent is not block:
                _fail(fn, "instruction parent link broken", instr)
            for op in instr.operands:
                if instr not in op.users:
                    _fail(fn, f"use-def link missing for operand "
                              f"{op.short()}", instr)
            if isinstance(instr, Load) and not isinstance(
                    instr.ptr.type, PointerType):
                _fail(fn, "load from non-pointer", instr)
            if isinstance(instr, Store) and not isinstance(
                    instr.ptr.type, PointerType):
                _fail(fn, "store to non-pointer", instr)


def _check_dominance(fn: Function, reachable: Set[BasicBlock],
                     cache) -> None:
    dt = cache.dominators(fn)
    positions = {}
    for block in fn.blocks:
        for i, instr in enumerate(block.instructions):
            positions[instr] = (block, i)

    for block in fn.blocks:
        if block not in reachable:
            continue
        for i, instr in enumerate(block.instructions):
            if isinstance(instr, Phi):
                for value, pred in instr.incomings:
                    _check_operand_dominates(fn, dt, positions, value,
                                             pred, len(pred.instructions),
                                             instr)
                continue
            for op in instr.operands:
                _check_operand_dominates(fn, dt, positions, op, block, i,
                                         instr)


def _check_operand_dominates(fn, dt, positions, value: Value,
                             use_block: BasicBlock, use_index: int,
                             user: Instruction) -> None:
    if isinstance(value, (Constant, GlobalVariable, Argument,
                          UndefValue, Function)):
        return
    if not isinstance(value, Instruction):
        return
    pos = positions.get(value)
    if pos is None:
        _fail(fn, f"operand {value.short()} not in function", user)
    def_block, def_index = pos
    if def_block is use_block:
        if def_index >= use_index:
            _fail(fn, f"operand {value.short()} used before definition",
                  user)
    elif not dt.dominates(def_block, use_block):
        _fail(fn, f"definition of {value.short()} does not dominate use",
              user)
