"""IR values: the operands and results of instructions.

Values form a use-def graph: every value records its *users* (the
instructions that consume it), which gives the use-def chains the
analyses rely on (paper references [1]) and supports
``replace_all_uses_with`` for the rewriting passes.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.errors import IRError
from repro.ir.types import IRType, PointerType, VoidType


class Value:
    """Base class of everything that can be an instruction operand."""

    def __init__(self, type: IRType, name: str = ""):
        self.type = type
        self.name = name
        #: Instructions using this value as an operand.
        self.users: Set["Value"] = set()

    # -- use-def maintenance -------------------------------------------------

    def replace_all_uses_with(self, replacement: "Value") -> None:
        """Rewrite every user of ``self`` to use ``replacement``."""
        if replacement is self:
            return
        for user in list(self.users):
            user._replace_operand(self, replacement)

    def _replace_operand(self, old: "Value", new: "Value") -> None:
        raise IRError(f"{type(self).__name__} has no operands")

    # -- convenience ---------------------------------------------------------

    @property
    def is_void(self) -> bool:
        return isinstance(self.type, VoidType)

    def short(self) -> str:
        """Short printable reference (e.g. ``%x``, ``@g``, ``42``)."""
        return f"%{self.name}" if self.name else "%<unnamed>"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.short()}: {self.type}>"


class Constant(Value):
    """A literal constant: int, float, bool, string or null pointer.

    ``value`` holds the Python payload.  Null pointers use ``0``;
    string constants use a ``str`` payload with an ``ArrayType(I8, n)``
    type, mirroring LLVM's constant character arrays.
    """

    def __init__(self, type: IRType, value):
        super().__init__(type)
        self.value = value

    def short(self) -> str:
        if isinstance(self.value, str):
            return f'c"{self.value}"'
        if isinstance(self.value, bool):
            return "1" if self.value else "0"
        return str(self.value)

    def __eq__(self, other) -> bool:
        return (isinstance(other, Constant)
                and self.type == other.type
                and self.value == other.value)

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class UndefValue(Value):
    """An undefined value of a given type (LLVM ``undef``)."""

    def short(self) -> str:
        return "undef"


class GlobalVariable(Value):
    """A module-level variable.

    As in LLVM, the global *is* a pointer to its storage; the type of
    the stored value is ``value_type``.  The secure-type color of the
    variable is the color of ``value_type`` (paper Fig 6 lines 1-3).
    """

    def __init__(self, name: str, value_type: IRType,
                 initializer: Optional[Constant] = None):
        super().__init__(PointerType(value_type), name)
        self.value_type = value_type
        self.initializer = initializer

    @property
    def color(self) -> Optional[str]:
        return self.value_type.color

    def short(self) -> str:
        return f"@{self.name}"


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, name: str, type: IRType, index: int):
        super().__init__(type, name)
        self.index = index
        self.parent = None  # set by Function

    def short(self) -> str:
        return f"%{self.name}"


def ensure_same_type(values: Iterable[Value], context: str) -> IRType:
    """Check that all ``values`` share one type (ignoring colors) and
    return it."""
    first: Optional[IRType] = None
    for v in values:
        stripped = v.type.strip_color()
        if first is None:
            first = stripped
        elif stripped != first:
            raise IRError(
                f"{context}: mismatched operand types {first} vs {stripped}")
    if first is None:
        raise IRError(f"{context}: no operands")
    return first
